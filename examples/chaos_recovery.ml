(* Deterministic fault injection end to end: the canonical link flap
   (the last host's access link down from 2ms to 5ms) on the testbed
   fabric, pristine run vs. faulted run. Every flow must still
   complete; the trace shows the down/up transitions, the packets the
   dead link discarded, and the RTO recoveries that covered them.

     dune exec examples/chaos_recovery.exe *)

open Ppt_harness
module F = Ppt_faults.Fault_spec
module Trace = Ppt_obs.Trace
module Summary = Ppt_obs.Summary

let () =
  let flap =
    match F.of_string "down@2ms-5ms:link:14" with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf
    "testbed fabric (15 hosts, 10G), 60 web-search flows on PPT@.\
     fault spec: %S@.@."
    (F.to_string flap);
  Format.printf "%-10s %10s %12s %11s %10s %12s@." "run" "completed"
    "fault-drops" "link-evts" "rto-fires" "avg-fct(ms)";
  List.iter
    (fun (label, faults) ->
       let cfg = Config.testbed ~n_flows:60 ~load:0.7 ~seed:11 () in
       let cfg =
         match faults with
         | None -> cfg
         | Some spec -> Config.with_faults spec cfg
       in
       let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
       let r =
         Trace.with_sink (Trace.Ring.sink ring) (fun () ->
             Runner.run cfg Schemes.ppt)
       in
       let s = Summary.of_list (Trace.Ring.to_list ring) in
       let tag name =
         match List.assoc_opt name s.Summary.by_tag with
         | Some n -> n
         | None -> 0
       in
       Format.printf "%-10s %6d/%-3d %12d %11d %10d %12.3f@." label
         r.Runner.completed r.Runner.requested r.Runner.fault_drops
         (tag "link_down" + tag "link_up")
         (tag "rto_fire") r.Runner.summary.Ppt_stats.Fct.overall_avg;
       if r.Runner.completed <> r.Runner.requested then
         failwith (label ^ ": flows lost — liveness violated"))
    [ ("pristine", None); ("link-flap", Some flap) ];
  Format.printf
    "@.The flap costs retransmissions and tail latency, never \
     completions:@.every fault-dropped packet is covered by a \
     surviving retransmission@.(the invariant test/test_faults.ml \
     checks under random fault specs).@."
