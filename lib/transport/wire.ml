(* Protocol payloads carried inside packets, shared by every transport
   so receivers and senders agree on a single ACK format. *)

open Ppt_engine
open Ppt_netsim

type Packet.meta +=
  | Data_meta of {
      tx : Units.time;          (* when the data packet left the sender *)
      first_rtt : bool;         (* sent in the flow's first RTT (Aeolus) *)
    }
  | Ack_meta of {
      cum : int;                (* segments received in order from 0 *)
      sacks : int list;         (* specific segments this ack confirms *)
      ece : bool;               (* congestion-experienced echo *)
      data_tx : Units.time;     (* echo of the data packet's tx time *)
      (* echoed inband telemetry travels in the ack packet's own [tel]
         snapshot buffer (copied from the data packet by the receiver),
         not in the meta *)
    }
  | Grant_meta of {
      g_cum : int;              (* segments received in order (progress) *)
      g_upto : int;             (* sender may transmit up to this segment *)
      g_prio : int;             (* priority for granted (scheduled) data *)
    }
  | Pull_meta of { p_cum : int }
  | Nack_meta of { nack_seq : int }

let data_tx_time (p : Packet.t) =
  match p.meta with Data_meta { tx; _ } -> Some tx | _ -> None

let is_first_rtt (p : Packet.t) =
  match p.meta with Data_meta { first_rtt; _ } -> first_rtt | _ -> false

let ack_meta (p : Packet.t) =
  match p.meta with
  | Ack_meta m -> Some (m.cum, m.sacks, m.ece, m.data_tx)
  | _ -> None
