(* ExpressPass [11]: credit-scheduled, delay-bounded transport.

   The receiver controls everything: data may only be sent against a
   credit, and credits are paced at the receiver's line rate, shared
   round-robin over the active inbound flows. The sender holds its
   packets until credits arrive — the "passive, 1st RTT wasted"
   behaviour Table 1 notes — announcing itself with one credit
   request at flow start.

   Credits carry the receiver's cumulative progress so the sender can
   repair holes (credit-driven retransmission), with an RTO backstop
   for lost control packets. *)

open Ppt_engine
open Ppt_netsim

type sender = {
  ctx : Context.t;
  flow : Flow.t;
  mutable snd_nxt : int;
  mutable cum : int;
  mutable rto_timer : Sim.timer option;
  mutable shut : bool;
}

let send_data s seq ~retransmission =
  let pay = Flow.seg_payload s.flow seq in
  let meta =
    Wire.Data_meta { tx = Sim.now s.ctx.Context.sim; first_rtt = false }
  in
  let pkt =
    Packet.make ~seq ~payload:pay ~prio:1 ~meta ~flow:s.flow.Flow.id
      ~src:s.flow.Flow.src ~dst:s.flow.Flow.dst Packet.Data
  in
  Context.count_op s.ctx s.flow.Flow.src;
  s.flow.Flow.hcp_payload <- s.flow.Flow.hcp_payload + pay;
  if retransmission then s.flow.Flow.retrans <- s.flow.Flow.retrans + 1;
  Net.send s.ctx.Context.net pkt

(* One credit = permission for one packet: new data first, then the
   receiver's first hole once fresh data is exhausted. *)
let sender_on_credit s ~credit_cum =
  if not s.shut then begin
    s.cum <- max s.cum credit_cum;
    if s.snd_nxt < s.flow.Flow.nseg then begin
      send_data s s.snd_nxt ~retransmission:false;
      s.snd_nxt <- s.snd_nxt + 1
    end else if s.cum < s.flow.Flow.nseg then
      send_data s s.cum ~retransmission:true
  end

let rec arm_sender_rto s =
  if not s.shut then
    s.rto_timer <-
      Some (Sim.schedule s.ctx.Context.sim ~after:s.ctx.Context.rto_min
              (fun () ->
                 s.rto_timer <- None;
                 if not s.shut then begin
                   if s.snd_nxt = 0 then begin
                     (* the credit request must have been lost *)
                     let request =
                       Packet.make ~prio:0 ~flow:s.flow.Flow.id
                         ~src:s.flow.Flow.src ~dst:s.flow.Flow.dst
                         Packet.Ctrl
                     in
                     Net.send s.ctx.Context.net request
                   end else if s.cum < s.snd_nxt then
                     send_data s s.cum ~retransmission:true;
                   arm_sender_rto s
                 end))

let sender_shutdown s =
  s.shut <- true;
  match s.rto_timer with
  | Some tm -> Sim.cancel tm; s.rto_timer <- None
  | None -> ()

(* ---- receiver-side credit pacer (per host) ---- *)

type msg = {
  m_flow : Flow.t;
  m_bitmap : Bytes.t;
  mutable m_received : int;
  mutable m_cum : int;
  mutable m_credits_sent : int;
  mutable m_done : bool;
  mutable on_msg_done : unit -> unit;
}

type host_state = {
  hs_ctx : Context.t;
  mutable active : msg list;      (* round-robin credit targets *)
  mutable pacing : bool;
  mutable pace_fire : unit -> unit;   (* preallocated pacer callback *)
}

let send_credit hs (m : msg) =
  let meta = Wire.Pull_meta { p_cum = m.m_cum } in
  let pkt =
    Packet.make ~prio:0 ~meta ~flow:m.m_flow.Flow.id
      ~src:m.m_flow.Flow.dst ~dst:m.m_flow.Flow.src Packet.Pull
  in
  m.m_credits_sent <- m.m_credits_sent + 1;
  Net.send hs.hs_ctx.Context.net pkt

(* Bounded outstanding credits: a message may have at most a window of
   unanswered credits. Data arrivals (including RTO retransmissions,
   which are not credit-gated) unlock further credits, so a burst of
   credit or data loss can never wedge the flow permanently. *)
let credit_window = 64

let wants_credit (m : msg) =
  (not m.m_done) && m.m_credits_sent < m.m_received + credit_window

let pace hs () =
  match List.filter wants_credit hs.active with
  | [] -> hs.pacing <- false
  | eligible ->
    (* rotate: credit the head, move it to the back *)
    let m = List.hd eligible in
    send_credit hs m;
    hs.active <-
      List.filter (fun x -> x != m) hs.active @ [ m ];
    let slot =
      Units.tx_time ~rate:hs.hs_ctx.Context.edge_rate ~bytes:Packet.mtu
    in
    ignore (Sim.schedule hs.hs_ctx.Context.sim ~after:slot hs.pace_fire)

let kick hs =
  if not hs.pacing then begin
    hs.pacing <- true;
    ignore (Sim.schedule hs.hs_ctx.Context.sim ~after:0 hs.pace_fire)
  end

let receiver_on_data hs (m : msg) (p : Packet.t) =
  Context.count_op hs.hs_ctx m.m_flow.Flow.dst;
  if (not m.m_done) && not p.trimmed then begin
    let seq = p.seq in
    if seq >= 0 && seq < m.m_flow.Flow.nseg
    && Bytes.get m.m_bitmap seq = '\000' then begin
      Bytes.set m.m_bitmap seq '\001';
      m.m_received <- m.m_received + 1;
      while m.m_cum < m.m_flow.Flow.nseg
            && Bytes.get m.m_bitmap m.m_cum = '\001' do
        m.m_cum <- m.m_cum + 1
      done
    end;
    if m.m_received = m.m_flow.Flow.nseg then begin
      m.m_done <- true;
      hs.active <- List.filter (fun x -> x != m) hs.active;
      Context.flow_finished hs.hs_ctx m.m_flow;
      m.on_msg_done ()
    end else
      (* the arrival may have re-opened the credit window *)
      kick hs
  end

let make () ctx =
  let hosts : (int, host_state) Hashtbl.t = Hashtbl.create 64 in
  let host_state host =
    match Hashtbl.find_opt hosts host with
    | Some hs -> hs
    | None ->
      let hs =
        { hs_ctx = ctx; active = []; pacing = false; pace_fire = ignore }
      in
      hs.pace_fire <- (fun () -> pace hs ());
      Hashtbl.add hosts host hs;
      hs
  in
  { Endpoint.t_name = "expresspass";
    t_start = (fun flow ->
        let s =
          { ctx; flow; snd_nxt = 0; cum = 0; rto_timer = None;
            shut = false }
        in
        let hs = host_state flow.Flow.dst in
        let m =
          { m_flow = flow; m_bitmap = Bytes.make flow.Flow.nseg '\000';
            m_received = 0; m_cum = 0; m_credits_sent = 0;
            m_done = false; on_msg_done = ignore }
        in
        let net = ctx.Context.net in
        m.on_msg_done <- (fun () ->
            sender_shutdown s;
            Net.unregister net ~host:flow.Flow.src ~flow:flow.Flow.id;
            Net.unregister net ~host:flow.Flow.dst ~flow:flow.Flow.id);
        Net.register net ~host:flow.Flow.src ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Pull ->
              (match p.Packet.meta with
               | Wire.Pull_meta { p_cum } ->
                 sender_on_credit s ~credit_cum:p_cum
               | _ -> ())
            | _ -> ());
        Net.register net ~host:flow.Flow.dst ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Data -> receiver_on_data hs m p
            | Packet.Ctrl ->
              (* credit request: the flow becomes credit-eligible *)
              if not (List.memq m hs.active) && not m.m_done then begin
                hs.active <- hs.active @ [ m ];
                kick hs
              end
            | _ -> ());
        (* announce the flow; data waits for credits (1st RTT unused) *)
        let request =
          Packet.make ~prio:0 ~flow:flow.Flow.id ~src:flow.Flow.src
            ~dst:flow.Flow.dst Packet.Ctrl
        in
        Net.send net request;
        arm_sender_rto s) }
