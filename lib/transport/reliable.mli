(** Window-based reliable sender core.

    Sequence/SACK bookkeeping, duplicate-ACK fast retransmit with
    NewReno-style recovery, retransmission timeouts with backoff, a
    send-buffer availability window and the congestion-window gate.
    Congestion-control *policy* is injected through the mutable hook
    fields, so DCTCP, TCP, Swift, HPCC and PPT's HCP share this
    machinery; a second low-priority loop (PPT's LCP, RC3's low loops)
    transmits tail segments through {!send_lcp_segment}. *)

open Ppt_engine
open Ppt_netsim

(** One scratch record per sender, refilled in place for every ack so
    the ack path allocates nothing. Borrowed: hooks may read it during
    the synchronous call but must not retain it. *)
type ack_info = {
  mutable ai_cum : int;             (** in-order segments confirmed *)
  mutable ai_sacks : int list;
  mutable ai_ece : bool;            (** congestion-experienced echo *)
  mutable ai_data_tx : Units.time;  (** echoed data-packet send time *)
  mutable ai_tel : Packet.t;
  (** The ack packet carrying the echoed inband telemetry (read it with
      [Packet.tel_count] / [Packet.tel_qlen] …). Borrowed: valid only
      during the synchronous hook call — the fabric releases the packet
      when the delivery handler returns. *)
  mutable ai_newly_acked : int;     (** fresh primary-loop bytes *)
  mutable ai_cum_advanced : bool;
}

(** Per-segment states (as stored in the scoreboard). *)

val st_unsent : char
val st_h_inflight : char
val st_sacked : char
val st_lost : char
val st_l_inflight : char

type params = {
  initial_cwnd : int;
  ecn_capable : bool;
  lcp_ecn_capable : bool;
  cwnd_cap : float;
  sendbuf_bytes : int;
  tagger : bytes_sent:int -> loop:Packet.loop -> int;
}

val default_params :
  ?initial_cwnd:int -> ?ecn_capable:bool -> ?lcp_ecn_capable:bool ->
  ?cwnd_cap:float -> ?sendbuf_bytes:int ->
  ?tagger:(bytes_sent:int -> loop:Packet.loop -> int) -> unit -> params
(** IW 10 segments, ECN on, unlimited send buffer, priority 0. *)

type t = {
  ctx : Context.t;
  flow : Flow.t;
  p : params;
  mss : int;
  seg : Bytes.t;
  mutable cwnd : float;
  mutable snd_nxt : int;
  mutable cum_ack : int;
  mutable sacked_cnt : int;
  mutable inflight : int;
  mutable l_inflight_segs : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recovery_end : int;
  retx : int Queue.t;
  mutable rto_backoff : int;
  mutable rto_timer : Sim.timer option;
  mutable rto_fire : unit -> unit;
  (** Preallocated RTO callback; installed by {!create}. *)
  mutable win_end : int;
  mutable win_acked : int;
  mutable win_marked : int;
  mutable bytes_sent : int;
  mutable shut : bool;
  scratch_ai : ack_info;
  (** Reused by [on_ack]; see {!ack_info}. *)
  mutable hook_on_ack : t -> ack_info -> unit;
  (** per-ACK congestion-control hook (growth, delay/INT reaction) *)
  mutable hook_on_window : t -> f:float -> unit;
  (** once per observation window, with the marked-byte fraction *)
  mutable hook_on_loss : t -> unit;
  (** entering fast-retransmit recovery *)
  mutable hook_on_timeout : t -> unit;
  mutable hook_on_lcp_ack : t -> ack_info -> unit;
  (** a low-priority ACK arrived (after scoreboard bookkeeping) *)
  mutable hook_more_data : t -> unit;
  (** the send-buffer horizon advanced *)
}

val create : Context.t -> Flow.t -> params -> t
val start : t -> unit

val cwnd : t -> float
val set_cwnd : t -> float -> unit
(** Clamped to [mss, cwnd_cap]. *)

val mss : t -> int
val snd_nxt : t -> int
val cum_ack : t -> int
val inflight : t -> int
val l_inflight_segs : t -> int
(** Low-priority-loop segments transmitted and not yet acknowledged. *)

val bytes_sent : t -> int
val flow : t -> Flow.t
val ctx : t -> Context.t
val all_sacked : t -> bool
val seg_state : t -> int -> char
val avail_hi : t -> int
(** Highest segment currently in the send buffer. *)

val on_ack : t -> Packet.t -> unit
val try_send : t -> unit

val lcp_pick_tail : t -> below:int -> int option
(** Highest untransmitted segment strictly below [below], scanning down
    to [snd_nxt] (None once the loops cross). *)

val send_lcp_segment : ?prio:int -> t -> int -> unit
(** Transmit one segment on the low-priority loop. *)

val shutdown : t -> unit
(** Stop all transmission and cancel timers. *)
