(* Window-based reliable sender core.

   Implements everything a TCP-style datacenter sender shares:
   sequence/SACK bookkeeping, cumulative-ACK advance, duplicate-ACK
   fast retransmit with NewReno-style recovery, retransmission
   timeouts with exponential backoff, a send-buffer availability
   window, and the congestion-window gate. The congestion-control
   *policy* is injected through hook closures so DCTCP, Swift, HPCC,
   PIAS and PPT's HCP all reuse this machinery.

   PPT specifics supported here (§5):
   - a second, low-priority loop may transmit tail segments through
     [send_lcp_segment]; such segments do not consume primary-loop
     window and are tracked so the primary loop never double-counts
     them in flight;
   - a low-priority ACK updates the SACK scoreboard and advances
     [snd_nxt] past data the LCP already delivered in order (the
     "crossed paths" tweak of §5.2), then is handed to [hook_on_lcp_ack]
     for the EWD logic. *)

open Ppt_engine
open Ppt_netsim

let log_src =
  Logs.Src.create "ppt.reliable" ~doc:"window-based reliable sender"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* One scratch record per sender, refilled for every ack (hooks run
   synchronously and none retains it) — so ack processing allocates
   nothing. All fields are therefore mutable; treat the record as
   borrowed for the duration of the hook call. *)
type ack_info = {
  mutable ai_cum : int;
  mutable ai_sacks : int list;
  mutable ai_ece : bool;
  mutable ai_data_tx : Units.time;
  mutable ai_tel : Packet.t;
  (* the ack packet carrying echoed telemetry — borrowed, valid only
     during the synchronous hook call *)
  mutable ai_newly_acked : int;  (* payload bytes newly confirmed *)
  mutable ai_cum_advanced : bool;
}

(* Per-segment states. *)
let st_unsent = '\000'
let st_h_inflight = '\001'   (* sent by the primary loop, unacked *)
let st_sacked = '\002'       (* confirmed received *)
let st_lost = '\003'         (* deemed lost, queued for retransmit *)
let st_l_inflight = '\004'   (* sent by a low-priority loop, unacked *)

type params = {
  initial_cwnd : int;                   (* bytes *)
  ecn_capable : bool;
  lcp_ecn_capable : bool;               (* ECN on low-priority-loop data *)
  cwnd_cap : float;                     (* bytes *)
  sendbuf_bytes : int;                  (* send-buffer capacity *)
  tagger : bytes_sent:int -> loop:Packet.loop -> int;
}

let default_params ?(initial_cwnd = 10 * Packet.max_payload)
    ?(ecn_capable = true) ?(lcp_ecn_capable = true) ?(cwnd_cap = infinity)
    ?(sendbuf_bytes = max_int) ?(tagger = fun ~bytes_sent:_ ~loop:_ -> 0)
    () =
  { initial_cwnd; ecn_capable; lcp_ecn_capable; cwnd_cap; sendbuf_bytes;
    tagger }

type t = {
  ctx : Context.t;
  flow : Flow.t;
  p : params;
  mss : int;
  seg : Bytes.t;
  mutable cwnd : float;
  mutable snd_nxt : int;
  mutable cum_ack : int;
  mutable sacked_cnt : int;
  mutable inflight : int;              (* primary-loop bytes in flight *)
  mutable l_inflight_segs : int;       (* low-priority segments unacked *)
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recovery_end : int;
  retx : int Queue.t;
  mutable rto_backoff : int;
  mutable rto_timer : Sim.timer option;
  mutable rto_fire : unit -> unit;
  (* the one RTO callback for this sender, preallocated so arming the
     (endlessly rescheduled) timer never closes over state again *)
  (* per-RTT observation window (DCTCP-style) *)
  mutable win_end : int;
  mutable win_acked : int;
  mutable win_marked : int;
  mutable bytes_sent : int;            (* payload bytes, both loops *)
  mutable shut : bool;
  scratch_ai : ack_info;               (* reused by [on_ack] *)
  (* congestion-control and PPT hooks *)
  mutable hook_on_ack : t -> ack_info -> unit;
  mutable hook_on_window : t -> f:float -> unit;
  mutable hook_on_loss : t -> unit;
  mutable hook_on_timeout : t -> unit;
  mutable hook_on_lcp_ack : t -> ack_info -> unit;
  mutable hook_more_data : t -> unit;
}

let cwnd t = t.cwnd

(* Every congestion-control policy funnels window changes through
   here, so this one site gives traces the full cwnd trajectory. *)
let set_cwnd t w =
  t.cwnd <- Float.min t.p.cwnd_cap (Float.max (float_of_int t.mss) w);
  if !Ppt_obs.Trace.enabled then
    Ppt_obs.Trace.emit (Sim.now t.ctx.Context.sim)
      (Ppt_obs.Event.Cwnd_update
         { flow = t.flow.Flow.id; cwnd = int_of_float t.cwnd })

let default_on_loss t = set_cwnd t (t.cwnd /. 2.)

let default_on_timeout t = set_cwnd t (float_of_int t.mss)
let mss t = t.mss
let snd_nxt t = t.snd_nxt
let cum_ack t = t.cum_ack
let inflight t = t.inflight
let l_inflight_segs t = t.l_inflight_segs
let bytes_sent t = t.bytes_sent
let flow t = t.flow
let ctx t = t.ctx
let all_sacked t = t.sacked_cnt = t.flow.Flow.nseg

let seg_state t seq = Bytes.get t.seg seq

(* Highest segment index currently present in the send buffer: bytes
   below [cum_ack] have been freed, so the application has copied in up
   to [cum_ack * mss + capacity] bytes. *)
let avail_hi t =
  if t.p.sendbuf_bytes = max_int then t.flow.Flow.nseg - 1
  else begin
    let bufseg = max 1 (t.p.sendbuf_bytes / t.mss) in
    min (t.flow.Flow.nseg - 1) (t.cum_ack + bufseg - 1)
  end

let cancel_rto t =
  match t.rto_timer with
  | Some timer -> Sim.cancel timer; t.rto_timer <- None
  | None -> ()

let shutdown t =
  t.shut <- true;
  cancel_rto t

let rto_interval t =
  t.ctx.Context.rto_min * t.rto_backoff

(* --- transmission ------------------------------------------------- *)

let emit t ~loop ~prio_override ~seq =
  let pay = Flow.seg_payload t.flow seq in
  let prio =
    match prio_override with
    | Some p -> p
    | None -> t.p.tagger ~bytes_sent:t.bytes_sent ~loop
  in
  let meta = Wire.Data_meta { tx = Sim.now t.ctx.Context.sim;
                              first_rtt = false } in
  let ecn_capable =
    match loop with
    | Packet.H -> t.p.ecn_capable
    | Packet.L -> t.p.lcp_ecn_capable
  in
  let pkt =
    Packet.make ~seq ~payload:pay ~prio ~loop ~ecn_capable ~meta
      ~flow:t.flow.Flow.id ~src:t.flow.Flow.src ~dst:t.flow.Flow.dst
      Packet.Data
  in
  Context.count_op t.ctx t.flow.Flow.src;
  t.bytes_sent <- t.bytes_sent + pay;
  Net.send t.ctx.Context.net pkt;
  pay

let rec arm_rto t =
  if (match t.rto_timer with None -> true | Some _ -> false)
     && t.inflight > 0 && not t.shut then
    t.rto_timer <-
      Some (Sim.schedule t.ctx.Context.sim ~after:(rto_interval t)
              t.rto_fire)

and reset_rto t =
  cancel_rto t;
  t.rto_backoff <- 1;
  arm_rto t

and on_rto t =
  t.rto_timer <- None;
  if not (t.shut || all_sacked t) then begin
    Log.debug (fun m ->
        m "flow %d: RTO at %a (backoff x%d, cum=%d/%d)" t.flow.Flow.id
          Units.pp_time (Sim.now t.ctx.Context.sim) t.rto_backoff
          t.cum_ack t.flow.Flow.nseg);
    Context.count_op t.ctx t.flow.Flow.src;
    if !Ppt_obs.Trace.enabled then
      Ppt_obs.Trace.emit (Sim.now t.ctx.Context.sim)
        (Ppt_obs.Event.Rto_fire
           { flow = t.flow.Flow.id; backoff = t.rto_backoff });
    (* every in-flight primary segment is presumed lost *)
    for seq = 0 to t.flow.Flow.nseg - 1 do
      if Bytes.get t.seg seq = st_h_inflight then begin
        Bytes.set t.seg seq st_lost;
        Queue.push seq t.retx
      end
    done;
    t.inflight <- 0;
    t.dup_acks <- 0;
    t.in_recovery <- false;
    t.hook_on_timeout t;
    t.rto_backoff <- min 64 (t.rto_backoff * 2);
    try_send t;
    arm_rto t
  end

and send_segment t ~loop ?prio_override seq =
  let st = Bytes.get t.seg seq in
  assert (st <> st_sacked);
  let retransmission = st = st_lost in
  begin match loop with
    | Packet.H ->
      if st <> st_h_inflight then begin
        let pay = Flow.seg_payload t.flow seq in
        t.inflight <- t.inflight + pay
      end;
      if st = st_l_inflight then
        t.l_inflight_segs <- max 0 (t.l_inflight_segs - 1);
      Bytes.set t.seg seq st_h_inflight
    | Packet.L ->
      if st = st_unsent then begin
        Bytes.set t.seg seq st_l_inflight;
        t.l_inflight_segs <- t.l_inflight_segs + 1
      end
  end;
  let pay = emit t ~loop ~prio_override ~seq in
  begin match loop with
    | Packet.H ->
      t.flow.Flow.hcp_payload <- t.flow.Flow.hcp_payload + pay
    | Packet.L ->
      t.flow.Flow.lcp_payload <- t.flow.Flow.lcp_payload + pay
  end;
  if retransmission then begin
    t.flow.Flow.retrans <- t.flow.Flow.retrans + 1;
    if !Ppt_obs.Trace.enabled then
      Ppt_obs.Trace.emit (Sim.now t.ctx.Context.sim)
        (Ppt_obs.Event.Retransmit
           { flow = t.flow.Flow.id; seq;
             loop = (match loop with Packet.H -> 'H' | Packet.L -> 'L') })
  end;
  arm_rto t

(* Next primary-loop segment: queued retransmissions first, then new
   data up to the send-buffer horizon, skipping delivered segments. *)
and next_seg t =
  let rec from_retx () =
    match Queue.peek_opt t.retx with
    | Some seq when Bytes.get t.seg seq = st_lost -> Some (`Retx seq)
    | Some _ -> ignore (Queue.pop t.retx); from_retx ()
    | None -> None
  in
  match from_retx () with
  | Some _ as r -> r
  | None ->
    let hi = avail_hi t in
    let rec adv () =
      if t.snd_nxt > hi then None
      else if Bytes.get t.seg t.snd_nxt = st_sacked then begin
        t.snd_nxt <- t.snd_nxt + 1; adv ()
      end else Some (`New t.snd_nxt)
    in
    adv ()

and try_send t =
  if not (t.shut || all_sacked t) then
    match next_seg t with
    | None -> ()
    | Some candidate ->
      let seq = match candidate with `Retx s | `New s -> s in
      if float_of_int t.inflight < t.cwnd then begin
        begin match candidate with
          | `Retx s -> ignore (Queue.pop t.retx); assert (s = seq)
          | `New s -> t.snd_nxt <- max t.snd_nxt (s + 1)
        end;
        send_segment t ~loop:Packet.H ?prio_override:None seq;
        if t.win_end = 0 then t.win_end <- t.snd_nxt;
        try_send t
      end

let create ctx flow p =
  let t =
    { ctx; flow; p; mss = Packet.max_payload;
      seg = Bytes.make flow.Flow.nseg st_unsent;
      cwnd = float_of_int p.initial_cwnd;
      snd_nxt = 0; cum_ack = 0; sacked_cnt = 0; inflight = 0;
      l_inflight_segs = 0;
      dup_acks = 0; in_recovery = false; recovery_end = 0;
      retx = Queue.create (); rto_backoff = 1; rto_timer = None;
      rto_fire = ignore;
      win_end = 0; win_acked = 0; win_marked = 0; bytes_sent = 0;
      shut = false;
      scratch_ai =
        { ai_cum = 0; ai_sacks = []; ai_ece = false; ai_data_tx = 0;
          ai_tel = Packet.dummy; ai_newly_acked = 0;
          ai_cum_advanced = false };
      hook_on_ack = (fun _ _ -> ());
      hook_on_window = (fun _ ~f:_ -> ());
      hook_on_loss = default_on_loss;
      hook_on_timeout = default_on_timeout;
      hook_on_lcp_ack = (fun _ _ -> ());
      hook_more_data = (fun _ -> ()) }
  in
  t.rto_fire <- (fun () -> on_rto t);
  t

let start t =
  if not t.shut then begin
    try_send t;
    t.win_end <- max t.win_end t.snd_nxt
  end

(* --- low-priority (opportunistic) transmission --------------------- *)

(* Highest not-yet-transmitted segment at or below the send-buffer
   horizon, scanning down from [from_seq] (exclusive upper bound given
   by the caller's own pointer). *)
let lcp_pick_tail t ~below =
  let hi = min (avail_hi t) (below - 1) in
  let rec scan seq =
    if seq < t.snd_nxt then None
    else if Bytes.get t.seg seq = st_unsent then Some seq
    else scan (seq - 1)
  in
  if hi < 0 then None else scan hi

let send_lcp_segment ?prio t seq =
  if not (t.shut || Bytes.get t.seg seq = st_sacked) then
    send_segment t ~loop:Packet.L ?prio_override:prio seq

(* --- acknowledgement processing ------------------------------------ *)

let mark_sacked t seq =
  if seq < 0 || seq >= t.flow.Flow.nseg then 0
  else begin
    let st = Bytes.get t.seg seq in
    if st = st_sacked then 0
    else begin
      let pay = Flow.seg_payload t.flow seq in
      Bytes.set t.seg seq st_sacked;
      t.sacked_cnt <- t.sacked_cnt + 1;
      if st = st_h_inflight then begin
        t.inflight <- max 0 (t.inflight - pay);
        pay
      end else begin
        (* delivered by the low-priority loop (or while presumed lost):
           it never gates the primary window, so it does not feed
           primary-loop congestion accounting *)
        if st = st_l_inflight then
          t.l_inflight_segs <- max 0 (t.l_inflight_segs - 1);
        0
      end
    end
  end

let advance_cum t cum =
  let advanced = cum > t.cum_ack in
  if advanced then begin
    (* anything below the new cumulative point is delivered *)
    for seq = t.cum_ack to cum - 1 do ignore (mark_sacked t seq) done;
    t.cum_ack <- cum;
    (* §5.2: the LCP loop may deliver in-order data past snd_nxt; let
       TCP continue as usual by advancing the head of the send queue. *)
    if t.cum_ack > t.snd_nxt then t.snd_nxt <- t.cum_ack;
    t.hook_more_data t
  end;
  advanced

let enter_recovery t =
  Log.debug (fun m ->
      m "flow %d: fast-retransmit recovery at seg %d" t.flow.Flow.id
        t.cum_ack);
  t.in_recovery <- true;
  t.recovery_end <- t.snd_nxt;
  t.hook_on_loss t;
  (* retransmit the hole at the cumulative point *)
  if t.cum_ack < t.flow.Flow.nseg
  && Bytes.get t.seg t.cum_ack = st_h_inflight then begin
    let pay = Flow.seg_payload t.flow t.cum_ack in
    Bytes.set t.seg t.cum_ack st_lost;
    t.inflight <- max 0 (t.inflight - pay);
    Queue.push t.cum_ack t.retx
  end

let on_ack t (p : Packet.t) =
  if not t.shut then
    match p.meta with
    | Wire.Ack_meta { cum; sacks; ece; data_tx } ->
      Context.count_op t.ctx t.flow.Flow.src;
      let newly =
        List.fold_left (fun acc s -> acc + mark_sacked t s) 0 sacks
      in
      let advanced = advance_cum t cum in
      let ai = t.scratch_ai in
      ai.ai_cum <- cum;
      ai.ai_sacks <- sacks;
      ai.ai_ece <- ece;
      ai.ai_data_tx <- data_tx;
      ai.ai_tel <- p;
      ai.ai_newly_acked <- newly;
      ai.ai_cum_advanced <- advanced;
      (match p.loop with
       | Packet.L ->
         (* EWD and loop bookkeeping live in the PPT core. *)
         t.hook_on_lcp_ack t ai;
         try_send t
       | Packet.H ->
         if advanced then begin
           t.dup_acks <- 0;
           reset_rto t;
           if t.in_recovery then begin
             if t.cum_ack >= t.recovery_end then t.in_recovery <- false
             else if t.cum_ack < t.flow.Flow.nseg
                  && Bytes.get t.seg t.cum_ack = st_h_inflight then begin
               (* partial ack: the next hole is also lost *)
               let pay = Flow.seg_payload t.flow t.cum_ack in
               Bytes.set t.seg t.cum_ack st_lost;
               t.inflight <- max 0 (t.inflight - pay);
               Queue.push t.cum_ack t.retx
             end
           end
         end else if newly > 0 && cum = t.cum_ack
                  && t.cum_ack < t.flow.Flow.nseg then begin
           (* out-of-order delivery above a hole *)
           t.dup_acks <- t.dup_acks + 1;
           if t.dup_acks = 3 && not t.in_recovery then enter_recovery t
         end;
         (* DCTCP-style per-window observation *)
         t.win_acked <- t.win_acked + newly;
         if ece then t.win_marked <- t.win_marked + newly;
         t.hook_on_ack t ai;
         if t.cum_ack >= t.win_end && t.win_acked > 0 then begin
           let f =
             float_of_int t.win_marked /. float_of_int t.win_acked
           in
           t.hook_on_window t ~f;
           t.win_end <- max t.snd_nxt (t.cum_ack + 1);
           t.win_acked <- 0;
           t.win_marked <- 0
         end;
         try_send t);
      (* the hooks have returned: drop the borrowed references so the
         scratch record cannot keep the (pooled, about-to-be-released)
         ack packet or its sack list reachable *)
      ai.ai_tel <- Packet.dummy;
      ai.ai_sacks <- [];
      if all_sacked t then cancel_rto t
    | _ -> ()
