(* HPCC: High Precision Congestion Control [25].

   Switches stamp inband telemetry (queue length, cumulative
   transmitted bytes, timestamp, line rate) on every data packet; the
   receiver echoes it in ACKs. The sender estimates each hop's
   utilization

     u_j = qlen_j / (B_j * T)  +  txRate_j / B_j

   takes U = max_j u_j, and sets the window multiplicatively against
   the target utilization eta with an additive term for fairness:

     W = W_ref / (U / eta) + W_ai

   W_ref is refreshed from W once per RTT. Requires the fabric to run
   with INT collection enabled ([Net.create ~collect_int:true]). *)

open Ppt_engine
open Ppt_netsim

type params = {
  iw_segs : int;
  eta : float;
  wai_segs : float;      (* additive increase in segments *)
  max_stages : int;      (* per-ack updates between W_ref refreshes *)
}

let default_params =
  { iw_segs = 10; eta = 0.95; wai_segs = 0.5; max_stages = 5 }

type hop_memory = {
  mutable prev_tx_bytes : int;
  mutable prev_ts : Units.time;
  mutable valid : bool;
}

let attach ?(params = default_params) ctx (s : Reliable.t) =
  let mssf = float_of_int (Reliable.mss s) in
  let wai = params.wai_segs *. mssf in
  let t_ns = float_of_int ctx.Context.base_rtt in
  let hops : (int, hop_memory) Hashtbl.t = Hashtbl.create 8 in
  let w_ref = ref (Reliable.cwnd s) in
  let last_ref_update = ref 0 in
  let hop_mem i =
    match Hashtbl.find_opt hops i with
    | Some m -> m
    | None ->
      let m = { prev_tx_bytes = 0; prev_ts = 0; valid = false } in
      Hashtbl.add hops i m;
      m
  in
  (* Returns [None] until the hop has two telemetry samples: without a
     previous (tx_bytes, ts) pair the rate term is unknown and a naive
     U ~ 0 would explode the window on the very first ACK. *)
  let hop_utilization i (tel : Packet.t) =
    let m = hop_mem i in
    let tx_bytes = Packet.tel_tx_bytes tel i in
    let ts = Packet.tel_ts tel i in
    let rate_bits = float_of_int (Packet.tel_rate tel i) in
    let qterm =
      (* qlen / (B * T): queueing bytes against one BDP of the hop *)
      float_of_int (Packet.tel_qlen tel i * 8)
      /. (rate_bits *. (t_ns /. 1e9))
    in
    let txterm =
      if m.valid && ts > m.prev_ts then begin
        let dbytes = tx_bytes - m.prev_tx_bytes in
        let dt_s = float_of_int (ts - m.prev_ts) /. 1e9 in
        Some (float_of_int (dbytes * 8) /. dt_s /. rate_bits)
      end else None
    in
    let had_sample = m.valid in
    m.prev_tx_bytes <- tx_bytes;
    m.prev_ts <- ts;
    m.valid <- true;
    match txterm with
    | Some tx -> Some (qterm +. tx)
    | None -> if had_sample then Some qterm else None
  in
  s.Reliable.hook_on_ack <- (fun s ai ->
      let tel = ai.Reliable.ai_tel in
      let n_hops = Packet.tel_count tel in
      if n_hops > 0 then begin
        (* every hop's memory is updated even while U is still unknown
           (warm-up), exactly as the per-hop estimator requires *)
        let u = ref (Some 0.) in
        for i = 0 to n_hops - 1 do
          (match !u, hop_utilization i tel with
           | Some acc, Some hu -> u := Some (Float.max acc hu)
           | _, _ -> u := None)
        done;
        match !u with
        | None -> ()   (* warm-up: telemetry not yet rate-capable *)
        | Some u ->
          let u = Float.max u 0.05 in
          let w = (!w_ref /. (u /. params.eta)) +. wai in
          (* bound the per-update ramp, as HPCC's maxStage does *)
          let w = Float.min w (2. *. !w_ref) in
          Reliable.set_cwnd s w;
          let now = Sim.now ctx.Context.sim in
          if now - !last_ref_update > ctx.Context.base_rtt then begin
            w_ref := Reliable.cwnd s;
            last_ref_update := now
          end
      end);
  s.Reliable.hook_on_loss <- (fun s ->
      Reliable.set_cwnd s (Reliable.cwnd s /. 2.);
      w_ref := Reliable.cwnd s);
  s.Reliable.hook_on_timeout <- (fun s ->
      Reliable.set_cwnd s mssf;
      w_ref := Reliable.cwnd s)

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = "hpcc";
    t_start = (fun flow ->
        let rel_params =
          Reliable.default_params ~initial_cwnd:(params.iw_segs * mss)
            ~ecn_capable:false ()
        in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              attach ~params ctx snd;
              fun () -> ())
          flow) }
