(* A flow: one application message from a source host to a destination
   host, segmented into MTU-sized packets. Counters are shared between
   the sender and receiver endpoints of whatever transport carries it. *)

open Ppt_engine
open Ppt_netsim

type t = {
  id : int;
  src : int;
  dst : int;
  size : int;                       (* bytes *)
  nseg : int;
  start : Units.time;
  mutable retrans : int;
  mutable hcp_payload : int;        (* payload bytes put on the wire *)
  mutable lcp_payload : int;        (* ... by a low-priority loop *)
  mutable hcp_delivered : int;      (* fresh payload accepted at the rx *)
  mutable lcp_delivered : int;
  mutable finished : Units.time option;
}

let create ~id ~src ~dst ~size ~start =
  if size <= 0 then invalid_arg "Flow.create: size must be positive";
  if src = dst then invalid_arg "Flow.create: src = dst";
  { id; src; dst; size; nseg = Packet.segments_of_bytes size; start;
    retrans = 0; hcp_payload = 0; lcp_payload = 0;
    hcp_delivered = 0; lcp_delivered = 0; finished = None }

let of_spec (s : Ppt_workload.Trace.spec) =
  create ~id:s.id ~src:s.src ~dst:s.dst ~size:s.size ~start:s.start

(* Same result as [Packet.segment_payload], but against the stored
   [nseg] — this runs several times per segment on the ack path, and
   recomputing the segment count would put an integer division there. *)
let seg_payload t seq =
  assert (seq >= 0 && seq < t.nseg);
  if seq = t.nseg - 1 then t.size - ((t.nseg - 1) * Packet.max_payload)
  else Packet.max_payload

let is_finished t = t.finished <> None

let pp ppf t =
  Fmt.pf ppf "flow %d: %d->%d %dB (%d segs) start=%a" t.id t.src t.dst
    t.size t.nseg Units.pp_time t.start
