(* DCTCP congestion control [5], the paper's HCP and primary baseline.

   The sender estimates the fraction of ECN-marked bytes with
       alpha <- (1 - g) * alpha + g * F        (Eq. 1 of the paper)
   once per window of data and, in a window that saw any mark, cuts
       cwnd <- cwnd * (1 - alpha / 2).
   Growth is standard slow start / congestion avoidance.

   [attach] installs the policy on a {!Reliable.t} sender and returns a
   view exposing the run-time state PPT's LCP needs: alpha, the maximum
   congestion-avoidance window (W_max), startup-phase detection and a
   per-RTT callback slot (the dctcp_get_info analogue of §5.1). *)

type view = {
  alpha : unit -> float;
  wmax : unit -> float;
  in_ca : unit -> bool;     (* past the slow-start (startup) phase *)
  rtt_hook : (unit -> unit) -> unit;
  (* register a callback invoked once per observation window, after the
     alpha update *)
}

let default_g = 1. /. 16.

let attach ?(g = default_g) (s : Reliable.t) =
  let alpha = ref 1.0 in
  let ssthresh = ref infinity in
  let wmax = ref 0. in
  let cwr = ref false in
  let on_rtt = ref (fun () -> ()) in
  let mssf = float_of_int (Reliable.mss s) in
  let in_ca () = !ssthresh < infinity in
  s.Reliable.hook_on_ack <- (fun s ai ->
      if ai.Reliable.ai_newly_acked > 0 then begin
        let newly = float_of_int ai.Reliable.ai_newly_acked in
        let cwnd = Reliable.cwnd s in
        if cwnd < !ssthresh then Reliable.set_cwnd s (cwnd +. newly)
        else Reliable.set_cwnd s (cwnd +. (mssf *. newly /. cwnd))
      end;
      (* React to the first congestion echo of each window immediately
         (Linux CWR behaviour): one alpha-proportional cut per window. *)
      if ai.Reliable.ai_ece && not !cwr then begin
        cwr := true;
        let cut = Reliable.cwnd s *. (1. -. (!alpha /. 2.)) in
        Reliable.set_cwnd s cut;
        ssthresh := Reliable.cwnd s
      end);
  s.Reliable.hook_on_window <- (fun s ~f ->
      alpha := ((1. -. g) *. !alpha) +. (g *. f);
      cwr := false;
      (* W_max only considers congestion-avoidance windows (§3.1,
         footnote 3). *)
      if in_ca () then wmax := Float.max !wmax (Reliable.cwnd s);
      !on_rtt ());
  s.Reliable.hook_on_loss <- (fun s ->
      let cut = Reliable.cwnd s /. 2. in
      Reliable.set_cwnd s cut;
      ssthresh := Reliable.cwnd s);
  s.Reliable.hook_on_timeout <- (fun s ->
      ssthresh := Float.max (2. *. mssf) (Reliable.cwnd s /. 2.);
      Reliable.set_cwnd s mssf);
  { alpha = (fun () -> !alpha);
    wmax = (fun () -> !wmax);
    in_ca;
    rtt_hook = (fun f -> on_rtt := f) }

(* Plain DCTCP as a complete transport. *)
let make ?(iw_segs = 10) ?(on_flow_wmax = fun _ _ -> ()) () ctx =
  let mss = Ppt_netsim.Packet.max_payload in
  let params =
    Reliable.default_params ~initial_cwnd:(iw_segs * mss)
      ~ecn_capable:true ()
  in
  { Endpoint.t_name = "dctcp";
    t_start = (fun flow ->
        Endpoint.launch_window_flow ctx ~params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              let view = attach snd in
              fun () ->
                on_flow_wmax flow.Flow.id (Float.max (view.wmax ())
                                             (Reliable.cwnd snd)))
          flow) }
