(* RC3: Recursively Cautious Congestion Control [30].

   The primary loop is a normal TCP-style loop (DCTCP here, as in the
   paper's evaluation setup, §6.1) sending from the head of the flow.
   In parallel, at flow start, RC3 immediately transmits *all* the
   remaining data from the tail at low in-network priorities: the last
   ~40 packets at the first low priority, the next 40^2 at the second,
   the next 40^3 at the third, everything else at the lowest. The low
   loops are open-loop: no pacing window, no ECN reaction, no attempt
   to protect the primary loop — exactly the behaviour PPT's §3
   "Remarks" contrasts against. Transmission stops when the low loop
   crosses paths with the primary loop.

   Low-priority packets leave at NIC line rate. The recommended 2GB
   send buffer makes essentially the whole flow eligible. *)

open Ppt_engine
open Ppt_netsim

type params = {
  iw_segs : int;
  sendbuf_bytes : int;
  level_counts : int array;  (* packets per low priority level, from tail *)
}

let default_params =
  { iw_segs = 10;
    sendbuf_bytes = Units.mb 2000;       (* the recommended 2GB *)
    level_counts = [| 40; 1600; 64000 |] }

(* Priority of the [n]-th low-priority packet counted from the tail. *)
let lp_prio params n =
  let rec level i acc =
    if i >= Array.length params.level_counts then
      Array.length params.level_counts
    else if n < acc + params.level_counts.(i) then i
    else level (i + 1) (acc + params.level_counts.(i))
  in
  Prio_queue.lp_band_start + level 0 0

type lcp_state = {
  snd : Reliable.t;
  params : params;
  ctx : Context.t;
  mutable tail_ptr : int;
  mutable sent_count : int;
  mutable timer : Sim.timer option;
  mutable pump_fire : unit -> unit;   (* preallocated pacer callback *)
  mutable stopped : bool;
}

let stop_lcp st =
  st.stopped <- true;
  match st.timer with
  | Some tm -> Sim.cancel tm; st.timer <- None
  | None -> ()

(* Blast the tail at line rate: one low-priority segment per NIC
   serialization slot until the loops cross or the buffer is empty. *)
let lcp_pump st () =
  st.timer <- None;
  if not st.stopped then
    match Reliable.lcp_pick_tail st.snd ~below:st.tail_ptr with
    | None -> ()   (* crossed with the primary loop: RC3's stop rule *)
    | Some seq ->
      st.tail_ptr <- seq;
      let prio = lp_prio st.params st.sent_count in
      st.sent_count <- st.sent_count + 1;
      Reliable.send_lcp_segment ~prio st.snd seq;
      let pay = Flow.seg_payload (Reliable.flow st.snd) seq in
      let slot =
        Units.tx_time ~rate:st.ctx.Context.edge_rate
          ~bytes:(pay + Packet.header_bytes)
      in
      st.timer <-
        Some (Sim.schedule st.ctx.Context.sim ~after:slot st.pump_fire)

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = "rc3";
    t_start = (fun flow ->
        let rel_params =
          Reliable.default_params ~initial_cwnd:(params.iw_segs * mss)
            ~ecn_capable:true ~lcp_ecn_capable:false
            ~sendbuf_bytes:params.sendbuf_bytes ()
        in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              ignore (Dctcp.attach snd);
              let st =
                { snd; params; ctx; tail_ptr = flow.Flow.nseg;
                  sent_count = 0; timer = None; pump_fire = ignore;
                  stopped = false }
              in
              st.pump_fire <- (fun () -> lcp_pump st ());
              (* the low loops start together with the primary loop *)
              ignore (Sim.schedule ctx.Context.sim ~after:0 (lcp_pump st));
              fun () -> stop_lcp st)
          flow) }
