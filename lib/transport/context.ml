(* Per-run environment shared by all transports: the simulator, the
   fabric, derived path constants, the FCT sink, and per-host datapath
   operation counters (the Fig. 19 CPU-overhead proxy). *)

open Ppt_engine
open Ppt_netsim
open Ppt_stats

type t = {
  sim : Sim.t;
  net : Net.t;
  base_rtt : Units.time;
  edge_rate : Units.rate;
  bdp : int;                        (* bytes, of the edge path *)
  rto_min : Units.time;
  fct : Fct.t;
  rng : Rng.t;
  ops : int array;                  (* per-node datapath operations *)
  mutable started : int;
  mutable completed : int;
  mutable on_complete : int -> unit;  (* flow id *)
}

let create ~sim ~net ~base_rtt ~edge_rate ~rto_min ~rng () =
  (* A fresh context means a fresh run: restart the packet uid sequence
     so rerunning an experiment in one process is byte-identical to the
     first run (uids feed the per-packet spraying hash). *)
  Packet.reset_uids ();
  { sim; net; base_rtt; edge_rate;
    bdp = Units.bdp ~rate:edge_rate ~rtt:base_rtt;
    rto_min; fct = Fct.create (); rng;
    ops = Array.make (Net.n_nodes net) 0;
    started = 0; completed = 0; on_complete = ignore }

let of_topology ?(rto_min = Units.ms 10) ~rng (topo : Topology.built) =
  create ~sim:(Net.sim topo.net) ~net:topo.net ~base_rtt:topo.base_rtt
    ~edge_rate:topo.edge_rate ~rto_min ~rng ()

let now t = Sim.now t.sim

let count_op t host = t.ops.(host) <- t.ops.(host) + 1

let flow_started t (flow : Flow.t) =
  t.started <- t.started + 1;
  if !Ppt_obs.Trace.enabled then
    Ppt_obs.Trace.emit (now t)
      (Ppt_obs.Event.Flow_start
         { flow = flow.Flow.id; size = flow.Flow.size })

let flow_finished t (flow : Flow.t) =
  match flow.finished with
  | Some _ -> ()    (* already recorded *)
  | None ->
    let finish = now t in
    flow.finished <- Some finish;
    if !Ppt_obs.Trace.enabled then
      Ppt_obs.Trace.emit finish
        (Ppt_obs.Event.Flow_done
           { flow = flow.Flow.id; size = flow.Flow.size;
             fct = finish - flow.Flow.start });
    Fct.add t.fct
      { Fct.flow = flow.id; size = flow.size; start = flow.start;
        finish; retrans = flow.retrans; hcp_payload = flow.hcp_payload;
        lcp_payload = flow.lcp_payload;
        hcp_delivered = flow.hcp_delivered;
        lcp_delivered = flow.lcp_delivered };
    t.completed <- t.completed + 1;
    t.on_complete flow.id
