(** Protocol payloads carried inside packets, shared by every
    transport so receivers and senders agree on a single ACK format.
    Attached through the extensible {!Ppt_netsim.Packet.meta} variant,
    keeping the network layer protocol-agnostic. *)

open Ppt_engine
open Ppt_netsim

type Packet.meta +=
  | Data_meta of {
      tx : Units.time;     (** when the data packet left the sender *)
      first_rtt : bool;    (** sent in the flow's first RTT (Aeolus) *)
    }
  | Ack_meta of {
      cum : int;           (** segments received in order from 0 *)
      sacks : int list;    (** specific segments this ack confirms *)
      ece : bool;          (** congestion-experienced echo *)
      data_tx : Units.time;  (** echo of the data packet's tx time *)
    }
      (** Echoed inband telemetry travels in the ack packet's own
          [tel] snapshot buffer (see {!Ppt_netsim.Packet.tel_copy}),
          not in the meta. *)
  | Grant_meta of {
      g_cum : int;   (** segments received in order (progress) *)
      g_upto : int;  (** sender may transmit up to this segment *)
      g_prio : int;  (** priority for granted (scheduled) data *)
    }
  | Pull_meta of { p_cum : int }
  | Nack_meta of { nack_seq : int }

val data_tx_time : Packet.t -> Units.time option
(** The [Data_meta] send timestamp; [None] for any other meta. *)

val is_first_rtt : Packet.t -> bool
(** [true] only for [Data_meta] packets flagged as first-RTT. *)

val ack_meta :
  Packet.t -> (int * int list * bool * Units.time) option
(** Destructure an [Ack_meta] as [(cum, sacks, ece, data_tx)]. *)
