(** Per-run environment shared by all transports. *)

open Ppt_engine
open Ppt_netsim
open Ppt_stats

type t = {
  sim : Sim.t;
  net : Net.t;
  base_rtt : Units.time;
  edge_rate : Units.rate;
  bdp : int;                        (** bytes, of the edge path *)
  rto_min : Units.time;
  fct : Fct.t;                      (** completed-flow statistics sink *)
  rng : Rng.t;
  ops : int array;                  (** per-node datapath-operation counters *)
  mutable started : int;
  mutable completed : int;
  mutable on_complete : int -> unit;
}

val create :
  sim:Sim.t -> net:Net.t -> base_rtt:Units.time ->
  edge_rate:Units.rate -> rto_min:Units.time -> rng:Rng.t -> unit -> t

val of_topology :
  ?rto_min:Units.time -> rng:Rng.t -> Topology.built -> t
(** Derive a context from a built topology; [rto_min] defaults to 10ms. *)

val now : t -> Units.time

val count_op : t -> int -> unit
(** Count one datapath operation at a host (the Fig. 19 CPU proxy). *)

val flow_started : t -> Flow.t -> unit
(** Count a launched flow and emit a [Flow_start] trace event. *)

val flow_finished : t -> Flow.t -> unit
(** Record a completed flow exactly once and fire [on_complete]. *)
