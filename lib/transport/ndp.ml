(* NDP [15]: receiver-driven transport with packet trimming.

   Senders blast a full initial window (one BDP) at line rate. When a
   switch queue overflows, the queue discipline trims the payload and
   forwards the header at top priority ([Prio_queue.config.trim] must
   be on for NDP runs). The receiver:
   - NACKs every trimmed header so the sender queues the segment for
     retransmission;
   - clocks the remainder of the transfer with PULL packets paced at
     its link rate, shared round-robin across all inbound flows.

   A pull carries the receiver's cumulative progress so the sender can
   fall back to timeout retransmission if control packets die. *)

open Ppt_engine
open Ppt_netsim

type params = {
  iw_bytes : int option;   (* None: one BDP *)
  data_prio : int;
}

let default_params = { iw_bytes = None; data_prio = 1 }

(* ---- sender -------------------------------------------------------- *)

type sender = {
  ctx : Context.t;
  flow : Flow.t;
  data_prio : int;
  mutable snd_nxt : int;
  retx : int Queue.t;
  mutable cum : int;
  mutable rto_timer : Sim.timer option;
  mutable shut : bool;
}

let send_data s seq ~retransmission =
  let pay = Flow.seg_payload s.flow seq in
  let meta =
    Wire.Data_meta { tx = Sim.now s.ctx.Context.sim; first_rtt = false }
  in
  let pkt =
    Packet.make ~seq ~payload:pay ~prio:s.data_prio ~meta
      ~flow:s.flow.Flow.id ~src:s.flow.Flow.src ~dst:s.flow.Flow.dst
      Packet.Data
  in
  Context.count_op s.ctx s.flow.Flow.src;
  s.flow.Flow.hcp_payload <- s.flow.Flow.hcp_payload + pay;
  if retransmission then
    s.flow.Flow.retrans <- s.flow.Flow.retrans + 1;
  Net.send s.ctx.Context.net pkt

(* One pull = one packet's worth of credit. *)
let sender_on_pull s =
  if not s.shut then begin
    match Queue.take_opt s.retx with
    | Some seq -> send_data s seq ~retransmission:true
    | None ->
      if s.snd_nxt < s.flow.Flow.nseg then begin
        send_data s s.snd_nxt ~retransmission:false;
        s.snd_nxt <- s.snd_nxt + 1
      end
  end

let rec arm_sender_rto s =
  if not s.shut then
    s.rto_timer <-
      Some (Sim.schedule s.ctx.Context.sim ~after:s.ctx.Context.rto_min
              (fun () -> sender_rto s))

and sender_rto s =
  s.rto_timer <- None;
  if not s.shut then begin
    (* resend the first segment the receiver is missing *)
    if s.cum < s.flow.Flow.nseg && s.cum < s.snd_nxt then
      send_data s s.cum ~retransmission:true;
    arm_sender_rto s
  end

let sender_shutdown s =
  s.shut <- true;
  match s.rto_timer with
  | Some tm -> Sim.cancel tm; s.rto_timer <- None
  | None -> ()

(* ---- receiver: per-host pull pacer --------------------------------- *)

type msg = {
  m_flow : Flow.t;
  m_bitmap : Bytes.t;
  mutable m_received : int;
  mutable m_cum : int;
  mutable m_done : bool;
  mutable on_msg_done : unit -> unit;
}

type host_state = {
  hs_ctx : Context.t;
  pulls : msg Queue.t;        (* round-robin pull tokens *)
  mutable pacing : bool;
  mutable pace_fire : unit -> unit;   (* preallocated pacer callback *)
}

let send_pull hs (m : msg) =
  let meta = Wire.Pull_meta { p_cum = m.m_cum } in
  let pkt =
    Packet.make ~prio:0 ~meta ~flow:m.m_flow.Flow.id
      ~src:m.m_flow.Flow.dst ~dst:m.m_flow.Flow.src Packet.Pull
  in
  Net.send hs.hs_ctx.Context.net pkt

(* Emit one pull per MTU serialization slot of the receiver's edge
   link; this clocks aggregate inbound traffic at line rate. *)
let rec pace hs () =
  match Queue.take_opt hs.pulls with
  | None -> hs.pacing <- false
  | Some m ->
    if m.m_done then pace hs ()
    else begin
      send_pull hs m;
      let slot =
        Units.tx_time ~rate:hs.hs_ctx.Context.edge_rate ~bytes:Packet.mtu
      in
      ignore (Sim.schedule hs.hs_ctx.Context.sim ~after:slot hs.pace_fire)
    end

let enqueue_pull hs (m : msg) =
  if not m.m_done then begin
    Queue.push m hs.pulls;
    if not hs.pacing then begin
      hs.pacing <- true;
      ignore (Sim.schedule hs.hs_ctx.Context.sim ~after:0 hs.pace_fire)
    end
  end

let send_nack hs (m : msg) seq =
  let meta = Wire.Nack_meta { nack_seq = seq } in
  let pkt =
    Packet.make ~prio:0 ~meta ~flow:m.m_flow.Flow.id
      ~src:m.m_flow.Flow.dst ~dst:m.m_flow.Flow.src Packet.Nack
  in
  Net.send hs.hs_ctx.Context.net pkt

let receiver_on_data hs (m : msg) (p : Packet.t) =
  Context.count_op hs.hs_ctx m.m_flow.Flow.dst;
  if m.m_done then ()
  else if p.trimmed then begin
    (* header survived: fast loss notification + keep the clock going *)
    send_nack hs m p.seq;
    enqueue_pull hs m
  end else begin
    let seq = p.seq in
    if seq >= 0 && seq < m.m_flow.Flow.nseg
    && Bytes.get m.m_bitmap seq = '\000' then begin
      Bytes.set m.m_bitmap seq '\001';
      m.m_received <- m.m_received + 1;
      while m.m_cum < m.m_flow.Flow.nseg
            && Bytes.get m.m_bitmap m.m_cum = '\001' do
        m.m_cum <- m.m_cum + 1
      done
    end;
    if m.m_received = m.m_flow.Flow.nseg then begin
      m.m_done <- true;
      Context.flow_finished hs.hs_ctx m.m_flow;
      m.on_msg_done ()
    end else
      enqueue_pull hs m
  end

(* ---- wiring -------------------------------------------------------- *)

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  let iw_bytes =
    match params.iw_bytes with Some b -> b | None -> ctx.Context.bdp
  in
  let iw_segs = max 1 (iw_bytes / mss) in
  let hosts : (int, host_state) Hashtbl.t = Hashtbl.create 64 in
  let host_state host =
    match Hashtbl.find_opt hosts host with
    | Some hs -> hs
    | None ->
      let hs =
        { hs_ctx = ctx; pulls = Queue.create (); pacing = false;
          pace_fire = ignore }
      in
      hs.pace_fire <- (fun () -> pace hs ());
      Hashtbl.add hosts host hs;
      hs
  in
  { Endpoint.t_name = "ndp";
    t_start = (fun flow ->
        let s =
          { ctx; flow; data_prio = params.data_prio; snd_nxt = 0;
            retx = Queue.create (); cum = 0; rto_timer = None;
            shut = false }
        in
        let hs = host_state flow.Flow.dst in
        let m =
          { m_flow = flow; m_bitmap = Bytes.make flow.Flow.nseg '\000';
            m_received = 0; m_cum = 0; m_done = false;
            on_msg_done = ignore }
        in
        let net = ctx.Context.net in
        m.on_msg_done <- (fun () ->
            sender_shutdown s;
            Net.unregister net ~host:flow.Flow.src ~flow:flow.Flow.id;
            Net.unregister net ~host:flow.Flow.dst ~flow:flow.Flow.id);
        Net.register net ~host:flow.Flow.src ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Pull ->
              (match p.Packet.meta with
               | Wire.Pull_meta { p_cum } -> s.cum <- max s.cum p_cum
               | _ -> ());
              sender_on_pull s
            | Packet.Nack ->
              (match p.Packet.meta with
               | Wire.Nack_meta { nack_seq } -> Queue.push nack_seq s.retx
               | _ -> ())
            | _ -> ());
        Net.register net ~host:flow.Flow.dst ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Data -> receiver_on_data hs m p
            | _ -> ());
        (* first window at line rate *)
        let burst = min iw_segs flow.Flow.nseg in
        for seq = 0 to burst - 1 do
          send_data s seq ~retransmission:false
        done;
        s.snd_nxt <- burst;
        arm_sender_rto s) }
