(* Generic receiver endpoint for window-based transports (DCTCP, PIAS,
   Swift, HPCC, RC3 and PPT's HCP/LCP loops).

   It tracks which segments have arrived, acknowledges every data
   packet (cumulative ACK + the specific segment as a SACK, echoing the
   CE bit, the sender timestamp and any inband telemetry), and fires a
   completion callback when the whole flow has been received.

   Low-priority-loop (LCP) data is acknowledged separately: one
   low-priority ACK per [lcp_batch] opportunistic packets. With
   [lcp_batch = 2] this implements PPT's exponential window decrease —
   the sender's opportunistic rate naturally halves every RTT (§3.2). *)

open Ppt_netsim

type config = {
  ack_prio : int;                       (* priority of primary-loop acks *)
  lcp_batch : int;                      (* LCP data packets per LCP ack *)
  lcp_ack_prio : [ `Echo | `Fixed of int ];
}

let default_config = { ack_prio = 0; lcp_batch = 1; lcp_ack_prio = `Echo }

type t = {
  ctx : Context.t;
  flow : Flow.t;
  cfg : config;
  bitmap : Bytes.t;
  mutable received : int;
  mutable cum : int;                    (* in-order segments from 0 *)
  mutable lcp_pending : int;            (* LCP data since last LCP ack *)
  mutable lcp_sacks : int list;
  mutable lcp_ece : bool;
  mutable lcp_last_prio : int;
  mutable done_fired : bool;
  mutable on_done : unit -> unit;
}

let create ctx flow cfg =
  { ctx; flow; cfg;
    bitmap = Bytes.make flow.Flow.nseg '\000';
    received = 0; cum = 0;
    lcp_pending = 0; lcp_sacks = []; lcp_ece = false; lcp_last_prio = 7;
    done_fired = false; on_done = ignore }

let complete t = t.received = t.flow.Flow.nseg
let received t = t.received
let cum t = t.cum

let mark t seq =
  if seq < 0 || seq >= t.flow.Flow.nseg then false
  else if Bytes.get t.bitmap seq = '\001' then false
  else begin
    Bytes.set t.bitmap seq '\001';
    t.received <- t.received + 1;
    while t.cum < t.flow.Flow.nseg && Bytes.get t.bitmap t.cum = '\001' do
      t.cum <- t.cum + 1
    done;
    true
  end

(* [tel_from] echoes the data packet's inband telemetry: it is copied
   into the ack packet's own snapshot buffer (the data packet is
   released by the fabric as soon as [on_data] returns). *)
let send_ack t ?tel_from ~sacks ~ece ~data_tx ~loop ~prio () =
  let meta = Wire.Ack_meta { cum = t.cum; sacks; ece; data_tx } in
  let pkt =
    Packet.make ~prio ~loop ~meta ~flow:t.flow.Flow.id
      ~src:t.flow.Flow.dst ~dst:t.flow.Flow.src Packet.Ack
  in
  (match tel_from with
   | Some data -> Packet.tel_copy ~src:data ~dst:pkt
   | None -> ());
  Net.send t.ctx.Context.net pkt

let fire_done t =
  if (not t.done_fired) && complete t then begin
    t.done_fired <- true;
    Context.flow_finished t.ctx t.flow;
    t.on_done ()
  end

let flush_lcp t =
  if t.lcp_pending > 0 then begin
    let prio =
      match t.cfg.lcp_ack_prio with
      | `Echo -> t.lcp_last_prio
      | `Fixed p -> p
    in
    send_ack t ~sacks:t.lcp_sacks ~ece:t.lcp_ece ~data_tx:0
      ~loop:Packet.L ~prio ();
    t.lcp_pending <- 0;
    t.lcp_sacks <- [];
    t.lcp_ece <- false
  end

(* Trimmed data carries no payload: it only tells receiver-driven
   transports that the segment was cut. Window-based receivers ignore
   it here (their loss recovery is SACK/RTO based). *)
let on_data t (p : Packet.t) =
  Context.count_op t.ctx t.flow.Flow.dst;
  if not p.trimmed then begin
    let newly = mark t p.seq in
    if newly then begin
      match p.loop with
      | Packet.H ->
        t.flow.Flow.hcp_delivered <- t.flow.Flow.hcp_delivered + p.payload
      | Packet.L ->
        t.flow.Flow.lcp_delivered <- t.flow.Flow.lcp_delivered + p.payload
    end;
    match p.loop with
    | Packet.H ->
      (* inline [Wire.data_tx_time] minus its option: this runs for
         every delivered data packet *)
      let data_tx =
        match p.meta with Wire.Data_meta { tx; _ } -> tx | _ -> 0
      in
      send_ack t ~tel_from:p ~sacks:[ p.seq ] ~ece:p.ecn_ce ~data_tx
        ~loop:Packet.H ~prio:t.cfg.ack_prio ();
      fire_done t
    | Packet.L ->
      t.lcp_pending <- t.lcp_pending + 1;
      t.lcp_sacks <- p.seq :: t.lcp_sacks;
      t.lcp_ece <- t.lcp_ece || p.ecn_ce;
      t.lcp_last_prio <- p.prio;
      if t.lcp_pending >= t.cfg.lcp_batch then flush_lcp t;
      (* Completion must not wait for a batch partner that will never
         arrive: if this LCP packet finished the flow, ack and finish
         immediately. *)
      if complete t then begin flush_lcp t; fire_done t end
  end
