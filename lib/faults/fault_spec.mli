(** Declarative, windowed fault specifications.

    A spec is a list of clauses; each applies one fault kind to a set
    of ports for the half-open window [[from_t, until_t)]. Because
    every clause is a window, every injected fault is also reverted —
    a well-formed spec cannot leave the fabric down forever, so
    liveness failures under a spec point at transport recovery bugs.

    Concrete grammar (times take ns/us/ms/s suffixes; see HACKING.md):

    {v
    SPEC   := CLAUSE (';' CLAUSE)*
    CLAUSE := KIND '@' TIME '-' TIME ':' SEL
    KIND   := 'down' | 'pause' | 'loss=P' | 'ber=B'
            | 'rate=F' | 'delay+=T'
    SEL    := 'host:N' | 'tohost:N' | 'link:N' | 'node:N:P'
            | 'core' | 'edge' | 'all'
    v}

    e.g. ["down@2ms-5ms:link:3; ber=1e-5@0ms-50ms:core"]. *)

open Ppt_engine

type selector =
  | Host of int       (** host [n]'s NIC egress (host -> fabric) *)
  | To_host of int    (** last-hop switch egress towards host [n] *)
  | Link of int       (** both directions of host [n]'s edge link *)
  | Port of { node : int; port : int }  (** one explicit egress *)
  | Core              (** every switch-to-switch port *)
  | Edge              (** every host NIC and last-hop port *)
  | All

type kind =
  | Down                       (** link down; ['pause'] is an alias *)
  | Loss of float              (** uniform per-packet loss, [0,1] *)
  | Ber of float               (** per-bit error rate, (0,1e-2] *)
  | Rate of float              (** rate scaled by factor in (0,1] *)
  | Extra_delay of Units.time  (** added one-way latency *)

type clause = {
  kind : kind;
  from_t : Units.time;
  until_t : Units.time;
  sel : selector;
}

type t = clause list

val of_string : string -> (t, string) result
(** Parse and validate a spec. The empty string is [Ok []] (no
    faults). *)

val to_string : t -> string
(** Canonical rendering; [of_string (to_string s)] round-trips. *)

val validate : t -> (t, string) result
(** Range-check every clause (also done by {!of_string}). *)

val clause_to_string : clause -> string
val selector_to_string : selector -> string
val kind_to_string : kind -> string
val time_to_string : Units.time -> string

val scenarios :
  receiver:int -> spike:Units.time -> core:bool ->
  (string * string) list
(** The canonical chaos scenario set (name, spec string): a mid-flow
    link flap, 1e-5 BER, a transient delay spike of [spike], and a
    paused receiver. [core] targets spine links where the topology has
    them, host [receiver]'s edge link otherwise. *)
