(* Turns a validated {!Fault_spec.t} into scheduled mutations of
   [Net.port] fault state.

   Policy lives here; mechanism lives in [Net] (a port's [up],
   [cur_rate], [extra_delay] and [fault_filter] fields plus [kick]).
   Every clause schedules an apply at its window start and a revert at
   its window end; at each transition the port's effective state is
   recomputed from scratch over the clauses still active on it, so
   overlapping windows compose and always revert cleanly.

   Determinism: all random draws (loss, BER) come from one private
   stream derived from the run seed, never from the workload's
   generator — adding or removing a fault spec cannot perturb flow
   arrival times or sizes, and the same seed always yields the same
   faults. *)

open Ppt_engine
open Ppt_netsim

module Trace = Ppt_obs.Trace
module Ev = Ppt_obs.Event

type port_state = {
  port : Net.port;
  mutable active : Fault_spec.clause list;
  mutable was_down : bool;
  mutable was_degraded : bool;
}

(* --- selector resolution ------------------------------------------- *)

let check_host hosts h what =
  if h < 0 || h >= Array.length hosts then
    invalid_arg
      (Printf.sprintf "fault selector %s:%d: no such host" what h)

let all_ports net f =
  let acc = ref [] in
  for nid = Net.n_nodes net - 1 downto 0 do
    let node = Net.node net nid in
    Array.iter
      (fun (p : Net.port) -> if f node p then acc := p :: !acc)
      node.Net.ports
  done;
  !acc

let resolve net ~hosts ~to_host_port (sel : Fault_spec.selector) =
  let peer_is_host (p : Net.port) =
    (Net.node net p.Net.peer).Net.is_host
  in
  match sel with
  | Fault_spec.Host h ->
    check_host hosts h "host";
    [ Net.port net hosts.(h) 0 ]
  | Fault_spec.To_host h ->
    check_host hosts h "tohost";
    let node, pix = to_host_port h in
    [ Net.port net node pix ]
  | Fault_spec.Link h ->
    check_host hosts h "link";
    let node, pix = to_host_port h in
    [ Net.port net hosts.(h) 0; Net.port net node pix ]
  | Fault_spec.Port { node; port } ->
    if node < 0 || node >= Net.n_nodes net then
      invalid_arg
        (Printf.sprintf "fault selector node:%d:%d: no such node" node
           port);
    let n = Net.node net node in
    if port < 0 || port >= Array.length n.Net.ports then
      invalid_arg
        (Printf.sprintf "fault selector node:%d:%d: no such port" node
           port);
    [ Net.port net node port ]
  | Fault_spec.Core ->
    all_ports net (fun n p ->
        (not n.Net.is_host) && not (peer_is_host p))
  | Fault_spec.Edge ->
    all_ports net (fun n p -> n.Net.is_host || peer_is_host p)
  | Fault_spec.All -> all_ports net (fun _ _ -> true)

(* --- effective-state recomputation --------------------------------- *)

let make_filter rng ~loss ~ber =
  if loss <= 0. && ber <= 0. then None
  else
    Some
      (fun (p : Packet.t) ->
        if loss > 0. && Rng.float rng < loss then Some 'L'
        else if
          ber > 0.
          && Rng.float rng
             < 1. -. ((1. -. ber) ** float_of_int (8 * p.Packet.wire))
        then Some 'C'
        else None)

let recompute net rng ps =
  let port = ps.port in
  let down = ref false in
  let rate_f = ref 1.0 in
  let extra = ref 0 in
  let keep = ref 1.0 in
  let ber = ref 0.0 in
  List.iter
    (fun (c : Fault_spec.clause) ->
      match c.Fault_spec.kind with
      | Fault_spec.Down -> down := true
      | Fault_spec.Loss p -> keep := !keep *. (1. -. p)
      | Fault_spec.Ber b -> ber := !ber +. b
      | Fault_spec.Rate f -> rate_f := !rate_f *. f
      | Fault_spec.Extra_delay d -> extra := !extra + d)
    ps.active;
  let down = !down in
  let loss = 1. -. !keep in
  port.Net.up <- not down;
  port.Net.cur_rate <-
    (if !rate_f >= 1. then port.Net.rate
     else
       max 1 (int_of_float (float_of_int port.Net.rate *. !rate_f)));
  port.Net.extra_delay <- !extra;
  port.Net.fault_filter <- make_filter rng ~loss ~ber:!ber;
  let degraded = !rate_f < 1. || !extra > 0 in
  let ts = Sim.now (Net.sim net) in
  let node = port.Net.owner and pix = port.Net.pix in
  if down then begin
    if (not ps.was_down) && !Trace.enabled then
      Trace.emit ts (Ev.Link_down { node; port = pix })
  end
  else begin
    if degraded then begin
      if !Trace.enabled then
        Trace.emit ts
          (Ev.Link_degrade
             { node; port = pix;
               rate_ppm = int_of_float (!rate_f *. 1_000_000.);
               extra_delay = !extra })
    end
    else if (ps.was_down || ps.was_degraded) && !Trace.enabled then
      Trace.emit ts (Ev.Link_up { node; port = pix });
    (* restart the transmit loop after a down window, whether or not
       anyone is tracing *)
    if ps.was_down then Net.kick net port
  end;
  ps.was_down <- down;
  ps.was_degraded <- degraded

let rec remove_once c = function
  | [] -> []
  | x :: rest -> if x == c then rest else x :: remove_once c rest

(* Derive the injector's private stream from the run seed; the salt
   only decorrelates it from [Rng.create seed] itself. *)
let rng_of_seed seed = Rng.create ((seed * 1_000_003) lxor 0xFA017)

let install ~net ~hosts ~to_host_port ~seed spec =
  (match Fault_spec.validate spec with
   | Ok _ -> ()
   | Error e -> invalid_arg ("fault spec: " ^ e));
  let sim = Net.sim net in
  let rng = rng_of_seed seed in
  let table : (int * int, port_state) Hashtbl.t = Hashtbl.create 16 in
  let state_of (p : Net.port) =
    let key = (p.Net.owner, p.Net.pix) in
    match Hashtbl.find_opt table key with
    | Some ps -> ps
    | None ->
      let ps =
        { port = p; active = []; was_down = false;
          was_degraded = false }
      in
      Hashtbl.add table key ps;
      ps
  in
  List.iter
    (fun (c : Fault_spec.clause) ->
      let ports = resolve net ~hosts ~to_host_port c.Fault_spec.sel in
      if ports = [] then
        invalid_arg
          (Printf.sprintf
             "fault selector %s matches no ports on this topology"
             (Fault_spec.selector_to_string c.Fault_spec.sel));
      List.iter
        (fun p ->
          let ps = state_of p in
          ignore
            (Sim.schedule_at sim c.Fault_spec.from_t (fun () ->
                 ps.active <- c :: ps.active;
                 recompute net rng ps));
          ignore
            (Sim.schedule_at sim c.Fault_spec.until_t (fun () ->
                 ps.active <- remove_once c ps.active;
                 recompute net rng ps)))
        ports)
    spec
