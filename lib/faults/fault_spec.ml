(* Declarative fault specifications.

   A spec is a list of windowed clauses, each applying one fault kind
   to a set of ports for [from_t, until_t). Windows make down/up
   pairing automatic: every fault a spec injects is also reverted, so
   a well-formed spec can never leave the fabric wedged by
   construction — liveness violations found under a spec are transport
   bugs, not spec bugs.

   The concrete grammar (also documented in HACKING.md):

     SPEC   := CLAUSE (';' CLAUSE)*
     CLAUSE := KIND '@' TIME '-' TIME ':' SEL
     KIND   := 'down' | 'pause'
             | 'loss=' FLOAT | 'ber=' FLOAT
             | 'rate=' FLOAT | 'delay+=' TIME
     TIME   := NUMBER ('ns' | 'us' | 'ms' | 's')
     SEL    := 'host:' N | 'tohost:' N | 'link:' N
             | 'node:' N ':' P | 'core' | 'edge' | 'all'

   e.g. "down@2ms-6ms:link:3; ber=1e-5@0ms-50ms:core". 'pause' is an
   alias for 'down' that reads better on host selectors (a paused host
   stops draining its NIC). TIME literals must not use exponent
   notation ('-' separates the window bounds). *)

open Ppt_engine

type selector =
  | Host of int
  | To_host of int
  | Link of int
  | Port of { node : int; port : int }
  | Core
  | Edge
  | All

type kind =
  | Down
  | Loss of float
  | Ber of float
  | Rate of float
  | Extra_delay of Units.time

type clause = {
  kind : kind;
  from_t : Units.time;
  until_t : Units.time;
  sel : selector;
}

type t = clause list

(* --- printing ------------------------------------------------------ *)

let time_to_string (t : Units.time) =
  if t > 0 && t mod 1_000_000_000 = 0 then
    string_of_int (t / 1_000_000_000) ^ "s"
  else if t > 0 && t mod 1_000_000 = 0 then
    string_of_int (t / 1_000_000) ^ "ms"
  else if t > 0 && t mod 1_000 = 0 then
    string_of_int (t / 1_000) ^ "us"
  else string_of_int t ^ "ns"

let selector_to_string = function
  | Host h -> Printf.sprintf "host:%d" h
  | To_host h -> Printf.sprintf "tohost:%d" h
  | Link h -> Printf.sprintf "link:%d" h
  | Port { node; port } -> Printf.sprintf "node:%d:%d" node port
  | Core -> "core"
  | Edge -> "edge"
  | All -> "all"

(* Shortest rendering that parses back to exactly the same float, so
   [of_string (to_string s)] round-trips bit-for-bit. *)
let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let kind_to_string = function
  | Down -> "down"
  | Loss p -> Printf.sprintf "loss=%s" (float_to_string p)
  | Ber b -> Printf.sprintf "ber=%s" (float_to_string b)
  | Rate f -> Printf.sprintf "rate=%s" (float_to_string f)
  | Extra_delay d -> Printf.sprintf "delay+=%s" (time_to_string d)

let clause_to_string c =
  Printf.sprintf "%s@%s-%s:%s" (kind_to_string c.kind)
    (time_to_string c.from_t) (time_to_string c.until_t)
    (selector_to_string c.sel)

let to_string spec = String.concat "; " (List.map clause_to_string spec)

(* --- validation ---------------------------------------------------- *)

let validate_clause c =
  if c.from_t < 0 then Error "fault window starts before t=0"
  else if c.until_t <= c.from_t then
    Error
      (Printf.sprintf "empty fault window %s-%s"
         (time_to_string c.from_t) (time_to_string c.until_t))
  else
    match c.kind with
    | Down -> Ok c
    | Loss p when p < 0. || p > 1. ->
      Error (Printf.sprintf "loss probability %g outside [0,1]" p)
    | Ber b when b < 0. || b > 1e-2 ->
      Error (Printf.sprintf "ber %g outside [0,1e-2]" b)
    | Rate f when f <= 0. || f > 1. ->
      Error (Printf.sprintf "rate factor %g outside (0,1]" f)
    | Extra_delay d when d < 0 -> Error "negative delay"
    | _ -> Ok c

let validate spec =
  let rec go = function
    | [] -> Ok spec
    | c :: rest ->
      (match validate_clause c with
       | Ok _ -> go rest
       | Error e -> Error e)
  in
  go spec

(* --- parsing ------------------------------------------------------- *)

let is_letter ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')

let parse_time s =
  let s = String.trim s in
  let n = String.length s in
  let rec unit_start i =
    if i > 0 && is_letter s.[i - 1] then unit_start (i - 1) else i
  in
  let u = unit_start n in
  if u = 0 || u = n then Error (Printf.sprintf "bad time %S" s)
  else
    let mult =
      match String.sub s u (n - u) with
      | "ns" -> Some 1.
      | "us" -> Some 1e3
      | "ms" -> Some 1e6
      | "s" -> Some 1e9
      | _ -> None
    in
    match (mult, float_of_string_opt (String.sub s 0 u)) with
    | Some m, Some v when v >= 0. ->
      Ok (int_of_float (Float.round (v *. m)))
    | _ -> Error (Printf.sprintf "bad time %S" s)

let parse_float name s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" name s)

let parse_int name s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 0 -> Ok v
  | _ -> Error (Printf.sprintf "bad %s %S" name s)

let parse_kind s =
  let s = String.trim s in
  let after prefix =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  match s with
  | "down" | "pause" -> Ok Down
  | _ ->
    (match after "loss=" with
     | Some v -> Result.map (fun p -> Loss p) (parse_float "loss" v)
     | None ->
       (match after "ber=" with
        | Some v -> Result.map (fun b -> Ber b) (parse_float "ber" v)
        | None ->
          (match after "rate=" with
           | Some v ->
             Result.map (fun f -> Rate f) (parse_float "rate" v)
           | None ->
             (match after "delay+=" with
              | Some v ->
                Result.map (fun d -> Extra_delay d) (parse_time v)
              | None ->
                Error (Printf.sprintf "unknown fault kind %S" s)))))

let parse_selector s =
  let s = String.trim s in
  match String.split_on_char ':' s with
  | [ "core" ] -> Ok Core
  | [ "edge" ] -> Ok Edge
  | [ "all" ] -> Ok All
  | [ "host"; n ] -> Result.map (fun h -> Host h) (parse_int "host" n)
  | [ "tohost"; n ] ->
    Result.map (fun h -> To_host h) (parse_int "host" n)
  | [ "link"; n ] -> Result.map (fun h -> Link h) (parse_int "host" n)
  | [ "node"; n; p ] ->
    Result.bind (parse_int "node" n) (fun node ->
        Result.map (fun port -> Port { node; port })
          (parse_int "port" p))
  | _ -> Error (Printf.sprintf "unknown selector %S" s)

let parse_clause s =
  let ( let* ) = Result.bind in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "clause %S has no '@WINDOW'" s)
  | Some at ->
    let kind_s = String.sub s 0 at in
    let rest = String.sub s (at + 1) (String.length s - at - 1) in
    (match String.index_opt rest ':' with
     | None -> Error (Printf.sprintf "clause %S has no ':SELECTOR'" s)
     | Some colon ->
       let window = String.sub rest 0 colon in
       let sel_s =
         String.sub rest (colon + 1) (String.length rest - colon - 1)
       in
       let* from_s, until_s =
         match String.index_opt window '-' with
         | Some dash ->
           Ok
             ( String.sub window 0 dash,
               String.sub window (dash + 1)
                 (String.length window - dash - 1) )
         | None ->
           Error (Printf.sprintf "window %S is not FROM-UNTIL" window)
       in
       let* kind = parse_kind kind_s in
       let* from_t = parse_time from_s in
       let* until_t = parse_time until_s in
       let* sel = parse_selector sel_s in
       validate_clause { kind; from_t; until_t; sel })

let of_string s =
  let pieces =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match parse_clause p with
       | Ok c -> go (c :: acc) rest
       | Error e -> Error e)
  in
  go [] pieces

(* --- canonical chaos scenarios ------------------------------------- *)

(* The issue's scenario set, parameterized by experiment geometry:
   [receiver] is the host whose link flaps / that pauses, [spike] the
   added one-way delay of the latency scenario (~9x the base hop delay
   reads as a 10x spike), [core] targets spine links when the topology
   has any (leaf-spine) and the receiver's edge link otherwise. *)
let scenarios ~receiver ~spike ~core =
  let tgt =
    if core then "core" else Printf.sprintf "link:%d" receiver
  in
  [ ("flap", Printf.sprintf "down@2ms-5ms:%s" tgt);
    ("ber", Printf.sprintf "ber=1e-5@0ms-1000ms:%s" tgt);
    ( "delay-spike",
      Printf.sprintf "delay+=%s@2ms-5ms:%s" (time_to_string spike) tgt
    );
    ("pause-rx", Printf.sprintf "pause@2ms-5ms:host:%d" receiver) ]
