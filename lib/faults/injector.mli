(** Schedules a {!Fault_spec.t} against a built fabric.

    Each clause applies at its window start and reverts at its window
    end; overlapping clauses on the same port compose (rates multiply,
    delays and BERs add, loss probabilities combine independently) and
    the port returns to its pristine state once the last window
    closes. Transitions emit [Link_down]/[Link_up]/[Link_degrade]
    trace events; packets killed by loss or corruption surface as
    [Fault_drop] events and [Net.total_fault_drops].

    All random draws use a private stream derived from [seed], so a
    fault spec never perturbs workload generation and identical seeds
    give identical fault behaviour. *)

open Ppt_netsim

val install :
  net:Net.t ->
  hosts:int array ->
  to_host_port:(int -> int * int) ->
  seed:int ->
  Fault_spec.t ->
  unit
(** Call after the topology is built and before the clock starts.
    [hosts] and [to_host_port] come from [Topology.built]. Raises
    [Invalid_argument] on an invalid spec, an out-of-range host/node,
    or a selector matching no ports (e.g. [core] on a star). *)
