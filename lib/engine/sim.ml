(* Discrete-event simulation core: a clock plus a calendar-queue
   scheduler.

   Events are plain [unit -> unit] callbacks. Equal-time events fire in
   scheduling order (every timer carries an insertion sequence number
   used as a tie-break), which keeps runs deterministic: the pop order
   is the total order on [(time, tie)] regardless of which internal
   tier a timer happens to sit in.

   The scheduler is tiered for the timer mix a packet-level simulation
   produces — millions of short-horizon timers (serialization ticks,
   propagation, paced sends, ACK turnarounds) plus a sparse population
   of far-future retransmission timeouts:

   - [cur] is a small binary heap holding the events of the bucket
     currently being drained (all keys < [cur_hi]); it is what [run]
     actually pops, and what same/near-time reschedules during a
     callback fall into.
   - a timing wheel of [n_buckets] unsorted buckets, each covering
     [bucket_width] ns, holds events in [cur_hi, wheel_end); insertion
     is O(1) and allocation-free (beyond the timer itself). The window
     slides one bucket at a time as the clock advances, or hops
     directly to the next event when the wheel runs empty.
   - an overflow binary heap holds everything at or past [wheel_end]
     (RTOs, experiment-horizon probes); events migrate into the wheel
     as the window reaches them.

   Timers can be cancelled; a cancelled timer stays queued but its
   callback is skipped when popped. Cancelled-and-still-queued timers
   are counted, and once they outnumber live ones (past a floor) the
   whole structure is compacted in place so churny retransmit timers
   cannot bloat the queue and get re-sifted forever. *)

let st_pending = 0
let st_fired = 1
let st_cancelled = 2

(* A timer carries its callback argument inline ([fire arg] at pop)
   instead of forcing callers to close over it: packet arrivals are
   scheduled once per transmitted packet, and the inline argument
   turns a closure + timer pair into a single timer allocation. The
   argument is stored untyped; [schedule1] is the only constructor
   that pairs a non-unit callback with its argument, so the
   [Obj.magic] cannot be observed at a wrong type. *)
type timer = {
  mutable state : int;
  key : Units.time;      (* absolute fire time *)
  tie : int;             (* insertion sequence number *)
  fire : Obj.t -> unit;
  arg : Obj.t;
  cancels : int ref;     (* owning sim's cancelled-and-queued counter *)
}

(* Bucket geometry: 256 buckets of 1.024us cover ~262us, comfortably
   past the per-hop timer horizon of a 10-400G fabric while keeping
   buckets small enough that the [cur] heap stays tiny. *)
let log_bucket = 10
let bucket_width = 1 lsl log_bucket
let n_buckets = 256
let bucket_mask = n_buckets - 1
let wheel_span = n_buckets * bucket_width

(* Compact only past this many dead timers, so small runs never pay. *)
let compact_min = 1024

let dummy_timer =
  { state = st_fired; key = 0; tie = 0; fire = ignore; arg = Obj.repr ();
    cancels = ref 0 }

type t = {
  mutable now : Units.time;
  cur : timer Heap.t;
  overflow : timer Heap.t;
  bkt : timer array array;
  bkt_len : int array;
  mutable wheel_count : int;
  mutable cur_hi : int;     (* every event with key < cur_hi is in [cur] *)
  mutable wheel_end : int;  (* wheel covers [cur_hi, wheel_end) *)
  cancels : int ref;
  mutable compaction_runs : int;
  mutable tie : int;
  mutable running : bool;
  mutable processed : int;
}

let create () =
  { now = 0;
    cur = Heap.create ~dummy:dummy_timer;
    overflow = Heap.create ~dummy:dummy_timer;
    (* bucket storage is allocated on first use: most buckets of a
       short run are never touched, and every [create] would otherwise
       pay for 256 slot arrays up front *)
    bkt = Array.make n_buckets [||];
    bkt_len = Array.make n_buckets 0;
    wheel_count = 0;
    cur_hi = 0;
    wheel_end = wheel_span;
    cancels = ref 0;
    compaction_runs = 0;
    tie = 0; running = false; processed = 0 }

let now t = t.now
let events_processed t = t.processed

let scheduled t =
  Heap.length t.cur + t.wheel_count + Heap.length t.overflow

let pending t = scheduled t - !(t.cancels)
let cancelled_pending t = !(t.cancels)
let compactions t = t.compaction_runs

let bucket_push t tm =
  let b = (tm.key lsr log_bucket) land bucket_mask in
  let arr = t.bkt.(b) in
  let len = t.bkt_len.(b) in
  let arr =
    if len < Array.length arr then arr
    else begin
      let bigger = Array.make (max 8 (2 * len)) dummy_timer in
      Array.blit arr 0 bigger 0 len;
      t.bkt.(b) <- bigger;
      bigger
    end
  in
  arr.(len) <- tm;
  t.bkt_len.(b) <- len + 1;
  t.wheel_count <- t.wheel_count + 1

let insert t tm =
  if tm.key < t.cur_hi then Heap.push t.cur ~key:tm.key ~tie:tm.tie tm
  else if tm.key < t.wheel_end then bucket_push t tm
  else Heap.push t.overflow ~key:tm.key ~tie:tm.tie tm

let live tm = tm.state = st_pending

(* Drop every cancelled timer still queued. Survivors keep their
   (key, tie) ordering, so pop order is unaffected. *)
let compact t =
  Heap.filter_in_place t.cur ~f:live;
  Heap.filter_in_place t.overflow ~f:live;
  for b = 0 to n_buckets - 1 do
    let arr = t.bkt.(b) and len = t.bkt_len.(b) in
    let j = ref 0 in
    for i = 0 to len - 1 do
      if live arr.(i) then begin arr.(!j) <- arr.(i); incr j end
    done;
    for i = !j to len - 1 do arr.(i) <- dummy_timer done;
    t.wheel_count <- t.wheel_count - (len - !j);
    t.bkt_len.(b) <- !j
  done;
  t.cancels := 0;
  t.compaction_runs <- t.compaction_runs + 1

let schedule1_at : 'a. t -> Units.time -> ('a -> unit) -> 'a -> timer =
  fun t at fire arg ->
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %d is in the past (now=%d)" at t.now);
  if !(t.cancels) >= compact_min && 2 * !(t.cancels) > scheduled t then
    compact t;
  t.tie <- t.tie + 1;
  let tm =
    { state = st_pending; key = at; tie = t.tie;
      fire = (Obj.magic fire : Obj.t -> unit); arg = Obj.repr arg;
      cancels = t.cancels }
  in
  insert t tm;
  tm

(* A [unit -> unit] callback goes through the same untyped slot with
   the unit value as its stored argument. *)
let schedule_at t at (fire : unit -> unit) = schedule1_at t at fire ()

let schedule t ~after fire =
  assert (after >= 0);
  schedule_at t (t.now + after) fire

let schedule1 t ~after fire arg =
  assert (after >= 0);
  schedule1_at t (t.now + after) fire arg

let cancel tm =
  if tm.state = st_pending then begin
    tm.state <- st_cancelled;
    incr tm.cancels
  end

let stop t = t.running <- false

(* Pull overflow events that now fall inside the (just extended)
   wheel window. *)
let rec migrate_overflow t =
  if (not (Heap.is_empty t.overflow))
  && Heap.top_key t.overflow < t.wheel_end then begin
    bucket_push t (Heap.pop_exn t.overflow);
    migrate_overflow t
  end

(* Make [cur] hold the globally minimal event (if any exist): slide the
   wheel window bucket by bucket, dumping the first nonempty bucket
   into [cur]; if the wheel is empty, hop straight to the earliest
   overflow event's window. *)
let rec refill t =
  if Heap.is_empty t.cur then begin
    if t.wheel_count > 0 then begin
      let b = (t.cur_hi lsr log_bucket) land bucket_mask in
      let len = t.bkt_len.(b) in
      if len > 0 then begin
        let arr = t.bkt.(b) in
        for i = 0 to len - 1 do
          let tm = arr.(i) in
          Heap.push t.cur ~key:tm.key ~tie:tm.tie tm;
          arr.(i) <- dummy_timer
        done;
        t.bkt_len.(b) <- 0;
        t.wheel_count <- t.wheel_count - len
      end;
      (* bucket [b] now represents [wheel_end, wheel_end + width) *)
      t.cur_hi <- t.cur_hi + bucket_width;
      t.wheel_end <- t.wheel_end + bucket_width;
      if not (Heap.is_empty t.overflow) then migrate_overflow t;
      refill t
    end
    else begin
      match Heap.min_key t.overflow with
      | None -> ()
      | Some k ->
        t.cur_hi <- (k lsr log_bucket) lsl log_bucket;
        t.wheel_end <- t.cur_hi + wheel_span;
        migrate_overflow t;
        refill t
    end
  end

let run ?until ?(max_events = max_int) t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.running && t.processed < max_events then begin
      if Heap.is_empty t.cur then refill t;
      if not (Heap.is_empty t.cur) then begin
        let at = Heap.top_key t.cur in
        if at > horizon then
          (* Leave the clock at the horizon; the event stays queued for
             a later [run] call. *)
          t.now <- horizon
        else begin
          let tm = Heap.pop_exn t.cur in
          if tm.state = st_pending then begin
            t.now <- at;
            tm.state <- st_fired;
            t.processed <- t.processed + 1;
            tm.fire tm.arg
          end else
            (* a dead timer leaves the queue *)
            decr t.cancels;
          loop ()
        end
      end
    end
  in
  loop ();
  t.running <- false
