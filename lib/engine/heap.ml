(* Binary min-heap keyed by [(key, tie)] pairs.

   The secondary [tie] key is an insertion sequence number supplied by
   the caller, which makes the pop order of equal-time events
   deterministic (FIFO within a timestamp). *)

type 'a t = {
  mutable keys : int array;
  mutable ties : int array;
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~dummy =
  { keys = Array.make 64 0; ties = Array.make 64 0;
    data = Array.make 64 dummy; size = 0; dummy }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0
  and ties = Array.make (2 * n) 0
  and data = Array.make (2 * n) t.dummy in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.ties 0 ties 0 n;
  Array.blit t.data 0 data 0 n;
  t.keys <- keys; t.ties <- ties; t.data <- data

let less t i j =
  t.keys.(i) < t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && t.ties.(i) < t.ties.(j))

let swap t i j =
  let k = t.keys.(i) in t.keys.(i) <- t.keys.(j); t.keys.(j) <- k;
  let s = t.ties.(i) in t.ties.(i) <- t.ties.(j); t.ties.(j) <- s;
  let d = t.data.(i) in t.data.(i) <- t.data.(j); t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin swap t i parent; sift_up t parent end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = i in
  let smallest = if l < t.size && less t l smallest then l else smallest in
  let smallest = if r < t.size && less t r smallest then r else smallest in
  if smallest <> i then begin swap t i smallest; sift_down t smallest end

let push t ~key ~tie v =
  if t.size = Array.length t.keys then grow t;
  let i = t.size in
  t.keys.(i) <- key; t.ties.(i) <- tie; t.data.(i) <- v;
  t.size <- t.size + 1;
  sift_up t i

let min_key t = if t.size = 0 then None else Some t.keys.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.ties.(0) <- t.ties.(t.size);
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- t.dummy;
      sift_down t 0
    end else t.data.(0) <- t.dummy;
    Some (key, v)
  end

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

(* Keep only the elements satisfying [f], then rebuild the heap
   property bottom-up. Relative (key, tie) order of survivors is
   untouched, so pop order stays deterministic. *)
let filter_in_place t ~f =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if f t.data.(i) then begin
      t.keys.(!j) <- t.keys.(i);
      t.ties.(!j) <- t.ties.(i);
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  for i = !j to t.size - 1 do t.data.(i) <- t.dummy done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do sift_down t i done
