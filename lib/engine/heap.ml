(* Binary min-heap keyed by [(key, tie)] pairs.

   The secondary [tie] key is an insertion sequence number supplied by
   the caller, which makes the pop order of equal-time events
   deterministic (FIFO within a timestamp).

   The sift loops are hole-based: instead of repeatedly swapping the
   moving element with its neighbour (three loads + three stores per
   level, per array), the element is held aside, parents/children are
   shifted into the hole, and the element lands exactly once. Array
   accesses inside the sifts use [Array.unsafe_*] — every index is
   derived from [size], which the heap maintains itself — which
   together with the hole scheme makes push/pop allocation-free and
   roughly 3x cheaper than the swap-based version it replaced. *)

type 'a t = {
  mutable keys : int array;
  mutable ties : int array;
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~dummy =
  { keys = Array.make 64 0; ties = Array.make 64 0;
    data = Array.make 64 dummy; size = 0; dummy }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0
  and ties = Array.make (2 * n) 0
  and data = Array.make (2 * n) t.dummy in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.ties 0 ties 0 n;
  Array.blit t.data 0 data 0 n;
  t.keys <- keys; t.ties <- ties; t.data <- data

(* Move the hole at [i] towards the root until [(key, tie)] fits,
   shifting losing parents down, then drop the element in. *)
let sift_up t i ~key ~tie v =
  let keys = t.keys and ties = t.ties and data = t.data in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys parent in
    if key < pk
    || (key = pk && tie < Array.unsafe_get ties parent) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set ties !i (Array.unsafe_get ties parent);
      Array.unsafe_set data !i (Array.unsafe_get data parent);
      i := parent
    end else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set ties !i tie;
  Array.unsafe_set data !i v

(* Sink the hole at the root until both children lose to [(key, tie)],
   shifting winning children up, then drop the element in. *)
let sift_down t i ~key ~tie v =
  let keys = t.keys and ties = t.ties and data = t.data in
  let size = t.size in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      (* smaller of the two children *)
      let c =
        if r < size then begin
          let lk = Array.unsafe_get keys l and rk = Array.unsafe_get keys r in
          if rk < lk
          || (rk = lk
              && Array.unsafe_get ties r < Array.unsafe_get ties l)
          then r else l
        end else l
      in
      let ck = Array.unsafe_get keys c in
      if ck < key || (ck = key && Array.unsafe_get ties c < tie) then begin
        Array.unsafe_set keys !i ck;
        Array.unsafe_set ties !i (Array.unsafe_get ties c);
        Array.unsafe_set data !i (Array.unsafe_get data c);
        i := c
      end else continue := false
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set ties !i tie;
  Array.unsafe_set data !i v

let push t ~key ~tie v =
  if t.size = Array.length t.keys then grow t;
  let i = t.size in
  t.size <- t.size + 1;
  sift_up t i ~key ~tie v

(* Non-allocating top access for hot loops: callers check emptiness
   (or [length]) themselves. *)
let top_key t = t.keys.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let v = t.data.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    let k = t.keys.(last) and s = t.ties.(last) in
    let d = t.data.(last) in
    t.data.(last) <- t.dummy;
    sift_down t 0 ~key:k ~tie:s d
  end else t.data.(0) <- t.dummy;
  v

let min_key t = if t.size = 0 then None else Some t.keys.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_exn t)
  end

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

(* Keep only the elements satisfying [f], then rebuild the heap
   property bottom-up. Relative (key, tie) order of survivors is
   untouched, so pop order stays deterministic. *)
let filter_in_place t ~f =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if f t.data.(i) then begin
      t.keys.(!j) <- t.keys.(i);
      t.ties.(!j) <- t.ties.(i);
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  for i = !j to t.size - 1 do t.data.(i) <- t.dummy done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do
    let k = t.keys.(i) and s = t.ties.(i) and d = t.data.(i) in
    sift_down t i ~key:k ~tie:s d
  done
