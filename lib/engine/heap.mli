(** Binary min-heap with a deterministic FIFO tie-break on equal keys. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills vacated slots so popped values can be collected. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> tie:int -> 'a -> unit
(** Insert a value; among equal [key]s, lower [tie] pops first. *)

val min_key : 'a t -> int option
val pop : 'a t -> (int * 'a) option
val clear : 'a t -> unit

val top_key : 'a t -> int
(** Key of the minimum element. Unspecified (but does not raise) on an
    empty heap — check {!is_empty} first. Allocation-free, for hot
    loops that would otherwise pay an option per peek. *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum element without allocating; read its
    key with {!top_key} beforehand. @raise Invalid_argument on an
    empty heap. *)

val filter_in_place : 'a t -> f:('a -> bool) -> unit
(** Drop every element not satisfying [f] and re-heapify, in O(n).
    Pop order of the survivors is unchanged. *)
