(** Binary min-heap with a deterministic FIFO tie-break on equal keys. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills vacated slots so popped values can be collected. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> tie:int -> 'a -> unit
(** Insert a value; among equal [key]s, lower [tie] pops first. *)

val min_key : 'a t -> int option
val pop : 'a t -> (int * 'a) option
val clear : 'a t -> unit

val filter_in_place : 'a t -> f:('a -> bool) -> unit
(** Drop every element not satisfying [f] and re-heapify, in O(n).
    Pop order of the survivors is unchanged. *)
