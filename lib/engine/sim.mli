(** Discrete-event simulator: clock, event heap, cancellable timers.

    Determinism: equal-time events fire in the order they were
    scheduled, and all randomness comes from explicitly seeded
    {!Rng} streams, so a run is a pure function of its seed. *)

type t
type timer

val create : unit -> t

val now : t -> Units.time
val events_processed : t -> int

val pending : t -> int
(** Scheduled timers that are still live (not cancelled). *)

val cancelled_pending : t -> int
(** Cancelled timers still occupying queue slots; drops to zero when a
    compaction pass reclaims them. *)

val compactions : t -> int
(** Number of dead-timer compaction passes run so far. *)

val schedule_at : t -> Units.time -> (unit -> unit) -> timer
(** Raises [Invalid_argument] if the time is in the past. *)

val schedule : t -> after:Units.time -> (unit -> unit) -> timer

val schedule1 : t -> after:Units.time -> ('a -> unit) -> 'a -> timer
(** [schedule1 t ~after f x] behaves like
    [schedule t ~after (fun () -> f x)] but stores [x] inside the
    timer, avoiding the closure allocation. Intended for per-packet
    hot paths where [f] is preallocated. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val stop : t -> unit
(** Stop the run loop after the current event. *)

val run : ?until:Units.time -> ?max_events:int -> t -> unit
(** Process events until the queue empties, [stop] is called, the clock
    would pass [until], or [max_events] have fired. An event past
    [until] is left queued (and the clock left at [until]), so a later
    [run] call resumes exactly where this one stopped. *)
