(* The catalogue of transports the experiments compare, with the
   fabric features each one needs (NDP wants trimming, HPCC wants
   inband telemetry, Aeolus wants selective dropping). *)

open Ppt_engine
open Ppt_transport
open Ppt_core

type t = {
  s_name : string;
  s_factory : Context.t -> Endpoint.transport;
  s_trim : bool;
  s_collect_int : bool;
  s_sel_drop : bool;
  s_buffer_override : int option;
  (* NDP is designed for very shallow buffers (a handful of packets per
     port); running it with its recommended buffering is part of the
     paper's comparison setup *)
}

let plain name factory =
  { s_name = name; s_factory = factory; s_trim = false;
    s_collect_int = false; s_sel_drop = false; s_buffer_override = None }

let ppt = plain "ppt" (Ppt.make ())
let dctcp = plain "dctcp" (Dctcp.make ())
let rc3 = plain "rc3" (Rc3.make ())
let pias = plain "pias" (Pias.make ())
let swift = plain "swift" (Swift.make ())
let ppt_swift = plain "ppt-swift" (Ppt_swift.make ())
let homa = plain "homa" (Homa.make ())

let aeolus =
  { (plain "aeolus" (Homa.make_aeolus ())) with s_sel_drop = true }

let ndp =
  { (plain "ndp" (Ndp.make ())) with
    s_trim = true;
    s_buffer_override = Some (12 * Ppt_netsim.Packet.mtu) }
let hpcc = { (plain "hpcc" (Hpcc.make ())) with s_collect_int = true }

let tcp = plain "tcp" (Tcp.make ())
let tcp10 = plain "tcp-10" (Tcp.make_tcp10 ())
let halfback = plain "halfback" (Halfback.make ())
let expresspass = plain "expresspass" (Expresspass.make ())

let ppt_hpcc =
  { (plain "ppt-hpcc" (Ppt_hpcc.make ())) with s_collect_int = true }

let ppt_no_lcp_ecn = plain "ppt-no-lcp-ecn" (Ppt.without_lcp_ecn ())
let ppt_no_ewd = plain "ppt-no-ewd" (Ppt.without_ewd ())
let ppt_no_sched = plain "ppt-no-sched" (Ppt.without_scheduling ())
let ppt_no_ident = plain "ppt-no-ident" (Ppt.without_identification ())

let ppt_sendbuf bytes =
  plain (Printf.sprintf "ppt-sb-%s"
           (if bytes >= Units.mb 1000 then
              Printf.sprintf "%dG" (bytes / Units.mb 1000)
            else if bytes >= Units.mb 1 then
              Printf.sprintf "%dM" (bytes / Units.mb 1)
            else Printf.sprintf "%dK" (bytes / 1000)))
    (Ppt.with_sendbuf bytes)

(* the §6.2 six-scheme comparison set *)
let headline = [ ndp; aeolus; homa; rc3; dctcp; ppt ]

(* the §6.1 testbed comparison set *)
let testbed_set = [ homa; rc3; dctcp; ppt ]

(* the chaos/fault-tolerance comparison set: one window transport per
   recovery style (tcp drop-tail, dctcp ECN, ppt two-loop) plus the
   receiver-driven pair (ndp trimming, homa grants) *)
let chaos_set = [ tcp; dctcp; ppt; ndp; homa ]

(* every transport in Table 1 that this repository implements *)
let table1_set =
  [ dctcp; tcp10; halfback; rc3; pias; hpcc; homa; aeolus; expresspass;
    ndp; ppt ]
