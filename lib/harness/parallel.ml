(* Parallel figure sweeps: the glue between the figure registry
   (Figures) and the fork-based sweep runner (lib/sweep).

   Each experiment decomposes into work units; a unit's payload is its
   rendered text fragment plus the number of simulator events it
   processed (measured inside the worker, so event counts survive the
   process boundary). Fragments are merged in canonical unit order,
   which makes the merged output byte-identical to a serial
   [Figures.render] of the same experiments — whatever [jobs] is. *)

(* GC activity of one shard, measured inside the worker process (a
   fresh fork per shard, so [g_top_heap_words] really is that shard's
   peak heap, not an artifact of earlier work). *)
type gc_info = {
  g_minor_words : float;    (* words allocated on the minor heap *)
  g_major_words : float;    (* words allocated on/promoted to the major *)
  g_top_heap_words : int;   (* worker-process peak heap, in words *)
}

type shard_info = {
  sh_key : string;       (* "<experiment>/<unit>" *)
  sh_wall : float;
  sh_attempts : int;
  sh_cached : bool;      (* restored from the resume journal *)
  sh_events : int;
  sh_failed : bool;
  sh_gc : gc_info option;   (* None for failed shards *)
}

type result = {
  output : string;       (* fragments merged in canonical order *)
  jobs : int;
  wall : float;          (* whole-sweep wall-clock seconds *)
  events : int;          (* simulator events across all shards *)
  resumed : int;
  shards : shard_info list;     (* canonical order *)
  failures : (string * string) list;  (* key, reason *)
}

(* Decompose [ids] into sweep unit specs, keys "<id>/<unit>".
   Raises [Invalid_argument] on an unknown experiment id. *)
let unit_specs ids (opts : Figures.opts) =
  List.concat_map
    (fun id ->
       match Figures.find id with
       | None -> invalid_arg ("Parallel.sweep: unknown experiment " ^ id)
       | Some e ->
         List.map
           (fun u ->
              { Ppt_sweep.Sweep.key = id ^ "/" ^ u.Figures.u_name;
                run =
                  (fun () ->
                     let s0 = Gc.quick_stat () in
                     let frag, ev =
                       Runner.with_events_counted (fun () ->
                           Figures.render_unit u)
                     in
                     let s1 = Gc.quick_stat () in
                     ( frag, ev,
                       { g_minor_words =
                           s1.Gc.minor_words -. s0.Gc.minor_words;
                         g_major_words =
                           s1.Gc.major_words -. s0.Gc.major_words;
                         g_top_heap_words = s1.Gc.top_heap_words } )) })
           (e.Figures.e_units opts))
    ids

let sweep_dir = "_sweep"

let ensure_dir d =
  try Unix.mkdir d 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Default journal location: one file per (experiment set, opts), so a
   resumed sweep can only ever meet a journal of the same sweep. The
   sweep header re-checks the full key list anyway. *)
let default_journal ids (o : Figures.opts) =
  let d =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%s|%g|%d|%b" (String.concat "," ids)
            o.Figures.flows_scale o.Figures.seed o.Figures.full))
  in
  Filename.concat sweep_dir ("sweep-" ^ String.sub d 0 12 ^ ".journal")

let sweep ?(jobs = 1) ?timeout ?retries ?journal ?(resume = false)
    ?progress ~ids opts =
  let specs = unit_specs ids opts in
  (match journal with
   | Some path ->
     let dir = Filename.dirname path in
     if dir <> "." then ensure_dir dir
   | None -> ());
  let r =
    Ppt_sweep.Sweep.run ~jobs ?timeout ?retries ?journal ~resume
      ?progress specs
  in
  let buf = Buffer.create 4096 in
  let events = ref 0 in
  let failures = ref [] in
  let shards =
    List.map
      (fun (s : _ Ppt_sweep.Sweep.shard) ->
         let ev, gc, failed =
           match s.Ppt_sweep.Sweep.s_outcome with
           | Ppt_sweep.Sweep.Done ((frag : string), ev, gc) ->
             Buffer.add_string buf frag;
             (ev, Some gc, false)
           | Ppt_sweep.Sweep.Failed msg ->
             Buffer.add_string buf
               (Printf.sprintf "(!) shard %s failed: %s\n"
                  s.Ppt_sweep.Sweep.s_key msg);
             failures := (s.Ppt_sweep.Sweep.s_key, msg) :: !failures;
             (0, None, true)
         in
         events := !events + ev;
         { sh_key = s.Ppt_sweep.Sweep.s_key;
           sh_wall = s.Ppt_sweep.Sweep.s_wall;
           sh_attempts = s.Ppt_sweep.Sweep.s_attempts;
           sh_cached = s.Ppt_sweep.Sweep.s_cached;
           sh_events = ev;
           sh_failed = failed;
           sh_gc = gc })
      r.Ppt_sweep.Sweep.shards
  in
  { output = Buffer.contents buf;
    jobs = r.Ppt_sweep.Sweep.r_jobs;
    wall = r.Ppt_sweep.Sweep.r_wall;
    events = !events;
    resumed = r.Ppt_sweep.Sweep.r_resumed;
    shards;
    failures = List.rev !failures }
