(* Experiment configuration: topology shape, switch parameters, the
   workload and the offered load.

   The named constructors mirror the paper's setups:
   - [testbed]      — the CloudLab cluster of §6.1 (15 hosts, one
                      switch, 10G NICs, ~80us RTT, Table 3 parameters);
   - [oversub]      — §6.2's 1.4:1 oversubscribed two-tier fabric
                      (9 leaves x 16 hosts at 40G, 4 spines at 100G);
   - [fast]         — the same shape at 100/400G (Fig. 22);
   - [non_oversub]  — appendix E's fully-provisioned fabric.

   [scale] shrinks the fabric (fewer leaves/hosts) so a full bench run
   completes in minutes; the shapes and oversubscription ratios are
   preserved. *)

open Ppt_engine
open Ppt_netsim
open Ppt_workload

type topo_kind =
  | Star of { n_hosts : int; rate : Units.rate; delay : Units.time }
  | Leaf_spine of {
      hosts_per_leaf : int;
      n_leaf : int;
      n_spine : int;
      edge_rate : Units.rate;
      core_rate : Units.rate;
      edge_delay : Units.time;
      core_delay : Units.time;
    }

type pattern_kind =
  | All_to_all
  | Incast of { n_senders : int }

(* Structured event tracing (lib/obs). [trace_path] writes the run's
   events in [trace_fmt] — canonical JSONL or the compact binary
   encoding (`ppt_trace decode` turns the latter back into identical
   JSONL); [None] keeps whatever sink the caller installed (e.g. an
   in-memory ring in tests). [probe_interval] additionally samples
   per-port occupancy / link utilization / DT thresholds. *)
type trace_fmt = Json | Bin

type trace_cfg = {
  trace_path : string option;
  trace_fmt : trace_fmt;
  probe_interval : Units.time option;
}

type t = {
  name : string;
  topo : topo_kind;
  buffer_bytes : int;              (* per switch port *)
  hp_thresh : int option;          (* ECN threshold, P0-P3 *)
  lp_thresh : int option;          (* ECN threshold, P4-P7 *)
  sel_drop_frac : float;           (* Aeolus threshold as buffer frac *)
  dt : bool;                       (* dynamic-threshold buffer sharing *)
  routing : Topology.routing;      (* leaf-spine load balancing *)
  rto_min : Units.time;
  workload : Cdf.t;
  workload_name : string;
  pattern : pattern_kind;
  load : float;
  n_flows : int;
  seed : int;
  trace : trace_cfg option;        (* None = tracing off *)
  faults : Ppt_faults.Fault_spec.t option;
  (* None / Some [] = pristine fabric (bit-identical to a build
     without the fault layer) *)
}

let n_hosts t =
  match t.topo with
  | Star { n_hosts; _ } -> n_hosts
  | Leaf_spine { hosts_per_leaf; n_leaf; _ } -> hosts_per_leaf * n_leaf

let with_workload ?name cdf t =
  let workload_name =
    match name with Some n -> n | None -> t.workload_name
  in
  { t with workload = cdf; workload_name }

let with_trace ?path ?(fmt = Json) ?probe_interval t =
  { t with
    trace = Some { trace_path = path; trace_fmt = fmt; probe_interval } }

let with_faults spec t = { t with faults = Some spec }

(* §6.1 testbed: Table 3. *)
let testbed ?(n_flows = 300) ?(load = 0.5) ?(seed = 1) () =
  { name = "testbed";
    topo =
      Star { n_hosts = 15; rate = Units.gbps 10; delay = Units.us 19 };
    buffer_bytes = Units.mb 1;       (* ~50MB shared by 54 ports *)
    hp_thresh = Some (Units.kb 100);
    lp_thresh = Some (Units.kb 80);
    sel_drop_frac = 0.5; dt = true; routing = Topology.Per_flow;
    rto_min = Units.ms 10;
    workload = Dists.web_search; workload_name = "web-search";
    pattern = All_to_all; load; n_flows; seed; trace = None;
    faults = None }

(* §6.2 oversubscribed fabric: 40/100G, 120KB port buffer, ECN 96/86KB. *)
let oversub ?(scale = 4) ?(n_flows = 300) ?(load = 0.5) ?(seed = 1) () =
  let n_leaf, hosts_per_leaf, n_spine =
    if scale >= 9 then (9, 16, 4) else (max 2 scale, 8, 2)
  in
  { name = "oversub-40/100G";
    topo =
      Leaf_spine
        { hosts_per_leaf; n_leaf; n_spine;
          edge_rate = Units.gbps 40; core_rate = Units.gbps 100;
          edge_delay = Units.us 1; core_delay = Units.us 1 };
    buffer_bytes = Units.kb 120;
    hp_thresh = Some (Units.kb 96);
    lp_thresh = Some (Units.kb 86);
    sel_drop_frac = 0.5; dt = true; routing = Topology.Per_flow;
    rto_min = Units.ms 1;
    workload = Dists.web_search; workload_name = "web-search";
    pattern = All_to_all; load; n_flows; seed; trace = None;
    faults = None }

(* Fig. 22: the same shape at 100/400G. *)
let fast ?(scale = 4) ?(n_flows = 300) ?(load = 0.5) ?(seed = 1) () =
  let base = oversub ~scale ~n_flows ~load ~seed () in
  let topo =
    match base.topo with
    | Leaf_spine ls ->
      Leaf_spine
        { ls with
          edge_rate = Units.gbps 100; core_rate = Units.gbps 400 }
    | Star _ -> assert false
  in
  { base with name = "oversub-100/400G"; topo;
              buffer_bytes = Units.kb 240;
              hp_thresh = Some (Units.kb 192);
              lp_thresh = Some (Units.kb 172) }

(* Appendix E: non-oversubscribed (16x10G down = 4x40G up per leaf). *)
let non_oversub ?(scale = 4) ?(n_flows = 300) ?(load = 0.5) ?(seed = 1)
    () =
  let n_leaf, hosts_per_leaf, n_spine =
    if scale >= 9 then (9, 16, 4) else (max 2 scale, 8, 2)
  in
  { name = "non-oversub-10/40G";
    topo =
      Leaf_spine
        { hosts_per_leaf; n_leaf; n_spine;
          edge_rate = Units.gbps 10; core_rate = Units.gbps 40;
          edge_delay = Units.us 1; core_delay = Units.us 1 };
    buffer_bytes = Units.kb 120;
    hp_thresh = Some (Units.kb 96);
    lp_thresh = Some (Units.kb 86);
    sel_drop_frac = 0.5; dt = true; routing = Topology.Per_flow;
    rto_min = Units.ms 1;
    workload = Dists.web_search; workload_name = "web-search";
    pattern = All_to_all; load; n_flows; seed; trace = None;
    faults = None }

(* Figs. 1/20/28/29: two senders, one receiver, 40G bottleneck.

   The 20us default per-link delay gives a base RTT near the testbed's
   80us, putting the BDP (~430KB at 40G) well above the 120KB ECN
   threshold — the regime where DCTCP's startup and window cuts leave
   the bottleneck idle (Fig. 1's 25-50% utilization band). The deep
   default buffer means ECN, not drop-tail, does the signalling.
   Figs. 28/29 override both: the paper's 120KB total buffer at a
   small RTT. *)
let dumbbell ?(n_flows = 400) ?(load = 0.5) ?(seed = 1)
    ?(delay = Units.us 20) ?(buffer_bytes = Units.mb 4)
    ?(hp_thresh = Units.kb 120) ?(lp_thresh = Units.kb 100) () =
  { name = "dumbbell-2to1-40G";
    topo = Star { n_hosts = 3; rate = Units.gbps 40; delay };
    buffer_bytes;
    hp_thresh = Some hp_thresh;
    lp_thresh = Some lp_thresh;
    sel_drop_frac = 0.5; dt = true; routing = Topology.Per_flow;
    rto_min = Units.ms 1;
    workload = Dists.web_search; workload_name = "web-search";
    pattern = Incast { n_senders = 2 }; load; n_flows; seed;
    trace = None; faults = None }
