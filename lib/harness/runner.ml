(* Builds a fabric from a {!Config.t}, generates the flow trace, drives
   one transport scheme over it and collects the statistics every
   figure reports. *)

open Ppt_engine
open Ppt_netsim
open Ppt_workload
open Ppt_stats
open Ppt_transport

type result = {
  r_scheme : string;
  r_config : Config.t;
  summary : Fct.summary;
  completed : int;
  requested : int;
  drops : int;
  marks : int;
  fault_drops : int;                 (* injected loss/corruption/down *)
  last_finish : Units.time;          (* when the last flow completed *)
  ops_per_host_sec : float;          (* datapath-operation rate proxy *)
  efficiency : float;                (* delivered / transmitted payload *)
  lp_efficiency : float;             (* same, low-priority loop only *)
  events : int;
  records : Fct.record list;         (* every completed flow *)
  trace : Trace.spec list;           (* the flows that were launched *)
  base_rtt : Units.time;
  edge_rate : Units.rate;
}

let horizon = Units.sec 120

(* Cumulative simulator events across every [run] in this process;
   benchmark harnesses read the delta around a run to report
   events/second. *)
let total_events = ref 0

(* Run [f] and also return how many simulator events it processed —
   the per-process delta of [total_events]. Parallel sweeps measure
   this inside each worker and ship the delta home with the result. *)
let with_events_counted f =
  let before = !total_events in
  let v = f () in
  (v, !total_events - before)

let qcfg_of (cfg : Config.t) (scheme : Schemes.t) ~lp_buffer_cap =
  let buffer_bytes =
    match scheme.Schemes.s_buffer_override with
    | Some b -> min b cfg.Config.buffer_bytes
    | None -> cfg.Config.buffer_bytes
  in
  { Prio_queue.buffer_bytes;
    mark_thresholds =
      Prio_queue.mark_bands ~hp:cfg.Config.hp_thresh
        ~lp:cfg.Config.lp_thresh;
    mark_basis = Prio_queue.Port_occupancy;
    trim = scheme.Schemes.s_trim;
    sel_drop_threshold =
      (if scheme.Schemes.s_sel_drop then
         Some
           (int_of_float
              (cfg.Config.sel_drop_frac *. float_of_int buffer_bytes))
       else None);
    lp_buffer_cap;
    (* commodity-switch dynamic buffer sharing: the low-priority band
       is squeezed out first when the buffer runs hot, so opportunistic
       traffic cannot displace primary-loop packets (cf. Fig. 23's
       "PPT falls back to DCTCP under heavy incast") *)
    dt_alphas =
      (if cfg.Config.dt then
         Some (Prio_queue.dt_bands ~hp:8.0 ~lp:1.0)
       else None) }

let build_topology sim (cfg : Config.t) (scheme : Schemes.t)
    ~lp_buffer_cap =
  let qcfg = qcfg_of cfg scheme ~lp_buffer_cap in
  let collect_int = scheme.Schemes.s_collect_int in
  match cfg.Config.topo with
  | Config.Star { n_hosts; rate; delay } ->
    Topology.star ~collect_int ~sim ~n_hosts ~rate ~delay ~qcfg ()
  | Config.Leaf_spine
      { hosts_per_leaf; n_leaf; n_spine; edge_rate; core_rate;
        edge_delay; core_delay } ->
    Topology.leaf_spine ~collect_int ~routing:cfg.Config.routing ~sim
      ~hosts_per_leaf ~n_leaf ~n_spine ~edge_rate ~core_rate
      ~edge_delay ~core_delay ~qcfg ()

let pattern_of (cfg : Config.t) (topo : Topology.built) =
  let hosts = topo.Topology.hosts in
  match cfg.Config.pattern with
  | Config.All_to_all -> Trace.All_to_all hosts
  | Config.Incast { n_senders } ->
    let n = Array.length hosts in
    if n_senders >= n then invalid_arg "Runner: incast needs a receiver";
    Trace.Incast
      { senders = Array.sub hosts 0 n_senders;
        receiver = hosts.(n - 1) }

(* Launch every flow of the trace at its start time and stop the
   simulation once they have all completed. [observe] may install
   samplers before the clock starts. *)
let run ?lp_buffer_cap ?trace ?(observe = fun _ _ -> ())
    (cfg : Config.t) (scheme : Schemes.t) =
  let sim = Sim.create () in
  let topo = build_topology sim cfg scheme ~lp_buffer_cap in
  (* Fault injection draws from its own seed-derived stream, so a
     spec (or its absence) never perturbs workload generation. *)
  (match cfg.Config.faults with
   | None | Some [] -> ()
   | Some spec ->
     Ppt_faults.Injector.install ~net:topo.Topology.net
       ~hosts:topo.Topology.hosts
       ~to_host_port:topo.Topology.to_host_port
       ~seed:cfg.Config.seed spec);
  let rng = Rng.create cfg.Config.seed in
  let ctx = Context.of_topology ~rto_min:cfg.Config.rto_min ~rng topo in
  let trace =
    match trace with
    | Some t -> t
    | None ->
      Trace.generate ~rng:(Rng.split rng) ~cdf:cfg.Config.workload
        ~pattern:(pattern_of cfg topo)
        ~edge_rate:topo.Topology.edge_rate ~load:cfg.Config.load
        ~n_flows:cfg.Config.n_flows ()
  in
  let transport = scheme.Schemes.s_factory ctx in
  let requested = List.length trace in
  let last_finish = ref 0 in
  ctx.Context.on_complete <- (fun _ ->
      last_finish := Sim.now sim;
      if ctx.Context.completed = requested then Sim.stop sim);
  List.iter
    (fun spec ->
       ignore (Sim.schedule_at sim spec.Trace.start (fun () ->
           let flow = Flow.of_spec spec in
           Context.flow_started ctx flow;
           transport.Endpoint.t_start flow)))
    trace;
  observe ctx topo;
  (* Structured event tracing (lib/obs): when the config asks for it,
     write the run's events as JSONL and/or schedule the port probes.
     Without a [trace_path] any sink the caller already installed
     (e.g. a test's in-memory ring) is left in place. *)
  let trace_out =
    match cfg.Config.trace with
    | None -> None
    | Some tc ->
      (match tc.Config.probe_interval with
       | Some interval ->
         Net.start_probes ctx.Context.net ~interval ~until:horizon
       | None -> ());
      (match tc.Config.trace_path with
       | None -> None
       | Some path ->
         let oc = open_out path in
         (match tc.Config.trace_fmt with
          | Config.Json ->
            Ppt_obs.Trace.install (Ppt_obs.Trace.jsonl_sink oc);
            Some (oc, ignore)
          | Config.Bin ->
            let sink, flush = Ppt_obs.Trace.binary_sink oc in
            Ppt_obs.Trace.install sink;
            Some (oc, flush)))
  in
  Fun.protect
    ~finally:(fun () ->
        match trace_out with
        | Some (oc, flush) ->
          Ppt_obs.Trace.clear ();
          flush ();
          close_out oc
        | None -> ())
    (fun () -> Sim.run ~until:horizon sim);
  total_events := !total_events + Sim.events_processed sim;
  let summary = Fct.summarize ctx.Context.fct in
  let records = Fct.records ctx.Context.fct in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
  let sent =
    sum (fun r -> r.Fct.hcp_payload) + sum (fun r -> r.Fct.lcp_payload)
  in
  let delivered =
    sum (fun r -> r.Fct.hcp_delivered)
    + sum (fun r -> r.Fct.lcp_delivered)
  in
  let lp_sent = sum (fun r -> r.Fct.lcp_payload) in
  let lp_delivered = sum (fun r -> r.Fct.lcp_delivered) in
  let ratio num den =
    if den = 0 then nan else float_of_int num /. float_of_int den
  in
  let duration_s = Units.to_sec (max 1 (Sim.now sim)) in
  let n_hosts = Array.length topo.Topology.hosts in
  let total_ops =
    Array.fold_left ( + ) 0
      (Array.sub ctx.Context.ops 0 n_hosts)
  in
  { r_scheme = scheme.Schemes.s_name;
    r_config = cfg;
    summary;
    completed = ctx.Context.completed;
    requested;
    drops = Net.total_drops ctx.Context.net;
    marks = Net.total_marks ctx.Context.net;
    fault_drops = Net.total_fault_drops ctx.Context.net;
    last_finish = !last_finish;
    ops_per_host_sec =
      float_of_int total_ops /. duration_s /. float_of_int n_hosts;
    efficiency = ratio delivered sent;
    lp_efficiency = ratio lp_delivered lp_sent;
    events = Sim.events_processed sim;
    records;
    trace;
    base_rtt = topo.Topology.base_rtt;
    edge_rate = topo.Topology.edge_rate }

(* Run with an observer that returns a value (samplers, probes). *)
let run_observed ?lp_buffer_cap (cfg : Config.t) (scheme : Schemes.t)
    ~probe =
  let captured = ref None in
  let result =
    run ?lp_buffer_cap cfg scheme ~observe:(fun ctx topo ->
        captured := Some (probe ctx topo))
  in
  match !captured with
  | Some v -> (result, v)
  | None -> assert false
