(* One generator per table and figure of the paper's evaluation.

   Every generator prints the same rows/series the paper reports, at a
   reduced default scale (see DESIGN.md). The absolute numbers belong
   to this simulator; the comparisons — who wins, by roughly what
   factor, where the crossovers are — are the reproduction target, and
   EXPERIMENTS.md records them against the paper's claims.

   Each experiment is decomposed into an ordered list of *work units*
   (typically one per simulated scheme/configuration) whose rendered
   fragments concatenate to the experiment's full output. Rendering a
   figure serially and sweeping its units across worker processes
   (lib/sweep, `ppt_sim sweep`) therefore produce byte-identical
   output: both paths render every unit into its own buffer and emit
   the fragments in canonical unit order. *)

open Ppt_engine
open Ppt_netsim
open Ppt_workload
open Ppt_stats
open Ppt_transport

type opts = {
  flows_scale : float;   (* multiplies each experiment's flow count *)
  seed : int;
  full : bool;           (* full-size (144-host) fabrics *)
}

let default_opts = { flows_scale = 1.0; seed = 1; full = false }

let scaled o n = max 20 (int_of_float (float_of_int n *. o.flows_scale))
let fabric_scale o = if o.full then 9 else 4

(* ---------- work units ---------- *)

type unit_of_work = {
  u_name : string;                       (* unique within the figure *)
  u_render : Format.formatter -> unit;   (* runs its sims, prints its rows *)
}

let unit_ u_name u_render = { u_name; u_render }

(* Render one unit into its own fresh buffer. Both the serial path and
   the parallel sweep go through this, which is what makes their
   output byte-identical. *)
let render_unit u =
  let buf = Buffer.create 1024 in
  let bppf = Format.formatter_of_buffer buf in
  u.u_render bppf;
  Format.pp_print_flush bppf ();
  Buffer.contents buf

let render_units units ppf =
  List.iter
    (fun u -> Format.pp_print_string ppf (render_unit u))
    units

(* ---------- shared plumbing ---------- *)

let fct_cols = [ "overall"; "small-avg"; "small-p99"; "large-avg" ]

let fct_row ppf (r : Runner.result) =
  let s = r.Runner.summary in
  Table.row ppf r.Runner.r_scheme
    [ s.Fct.overall_avg; s.Fct.small_avg; s.Fct.small_p99;
      s.Fct.large_avg ];
  if r.Runner.completed < r.Runner.requested then
    Format.fprintf ppf "  (!) %s: only %d/%d flows completed@\n"
      r.Runner.r_scheme r.Runner.completed r.Runner.requested

let section ppf fmt = Format.fprintf ppf ("@\n== " ^^ fmt ^^ " ==@\n")

(* One unit per scheme: run it over [cfg] and print its FCT row. *)
let scheme_row_units ?(prefix = "") cfg schemes =
  List.map
    (fun s ->
       unit_ (prefix ^ s.Schemes.s_name) (fun ppf ->
           fct_row ppf (Runner.run cfg s)))
    schemes

(* Bottleneck-utilization probe towards the last host of the fabric
   (the receiver of the 2-to-1 dumbbell). Samples every [interval];
   each sample also notes whether any flow was active, so utilization
   can be reported over demand (busy) periods — the paper's Fig. 1
   measures "when DCTCP enters a steady state", i.e. while there is
   work to send. *)
let utilization_series ctx (topo : Topology.built)
    ~interval ~from_t ~until =
  let hosts = topo.Topology.hosts in
  let receiver = hosts.(Array.length hosts - 1) in
  let node, pix = topo.Topology.to_host_port receiver in
  let port = Net.port ctx.Context.net node pix in
  let probe =
    Series.utilization_probe ~rate:port.Net.rate ~interval (fun () ->
        port.Net.tx_bytes)
  in
  (* reset the byte baseline just before the first real sample *)
  ignore (Sim.schedule_at ctx.Context.sim (from_t - interval) (fun () ->
      ignore (probe ())));
  let util = Series.create () and active = Series.create () in
  let rec tick at () =
    if at <= until then begin
      Series.record util ~at (probe ());
      Series.record active ~at
        (if ctx.Context.started > ctx.Context.completed then 1. else 0.);
      ignore
        (Sim.schedule_at ctx.Context.sim (at + interval)
           (tick (at + interval)))
    end
  in
  ignore (Sim.schedule_at ctx.Context.sim from_t (tick from_t));
  (util, active)

(* Smooth a utilization trace over [window] consecutive samples. *)
let smooth ~window vals =
  let arr = Array.of_list vals in
  let n = Array.length arr in
  List.init (max 0 (n - window + 1)) (fun i ->
      let sum = ref 0. in
      for j = i to i + window - 1 do sum := !sum +. arr.(j) done;
      !sum /. float_of_int window)

let util_stats (util, active) =
  let us = Series.values util and acts = Series.values active in
  let busy =
    List.filter_map
      (fun (u, a) -> if a > 0.5 then Some u else None)
      (List.combine us acts)
  in
  let mean xs =
    match xs with
    | [] -> nan
    | _ ->
      List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let busy_smooth = smooth ~window:10 busy in
  let frac_below thr xs =
    match xs with
    | [] -> nan
    | _ ->
      float_of_int (List.length (List.filter (fun v -> v < thr) xs))
      /. float_of_int (List.length xs)
  in
  (mean us, mean busy, List.fold_left min infinity busy_smooth,
   frac_below 0.5 busy_smooth, busy_smooth)

let pp_util_summary ppf name stats =
  let mean_all, busy_mean, busy_min, frac_half, _trace = stats in
  Table.row ppf name
    [ 100. *. mean_all; 100. *. busy_mean; 100. *. busy_min;
      100. *. frac_half ]

(* Fig. 1 / Fig. 20 setting: continuous 2-to-1 web-search traffic at
   0.5 load on a 40G bottleneck, utilization sampled every 100us and
   smoothed over 1ms. *)
let util_experiment o scheme =
  let cfg =
    { (Config.dumbbell ~n_flows:(scaled o 400) ~load:0.5 ~seed:o.seed ())
      with Config.rto_min = Units.ms 1 }
  in
  let _r, series =
    Runner.run_observed cfg scheme ~probe:(fun ctx topo ->
        utilization_series ctx topo ~interval:(Units.us 100)
          ~from_t:(Units.ms 10) ~until:(Units.ms 200))
  in
  util_stats series

let util_cols =
  [ "mean-%"; "busy-mean-%"; "busy-min-%"; "busy<50% fr" ]

(* ---------- hypothetical-DCTCP two-pass helpers ---------- *)

let hypo_schemes ?(fractions = [ 1.0 ]) cfg =
  (* pass 1: plain DCTCP records each flow's maximum window *)
  let table : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let recorder =
    Schemes.plain "dctcp-rec"
      (Dctcp.make
         ~on_flow_wmax:(fun id mw -> Hashtbl.replace table id mw)
         ())
  in
  ignore (Runner.run cfg recorder);
  List.map
    (fun fill_fraction ->
       Schemes.plain
         (if fill_fraction = 1.0 then "hypo-dctcp"
          else Printf.sprintf "hypo-%.2fxMW" fill_fraction)
         (Hypothetical.make ~fill_fraction ~mw_table:table ()))
    fractions

(* ====================================================================
   Figures
   ==================================================================== *)

(* Fig. 1: DCTCP link utilization fluctuates far below the offered
   load at 0.5. *)
let fig1 o ppf =
  section ppf
    "fig1: DCTCP bottleneck utilization, 2-to-1 at 40G, web search, \
     0.5 load";
  let stats = util_experiment o Schemes.dctcp in
  Table.header ppf util_cols;
  pp_util_summary ppf "dctcp" stats;
  let _, _, _, _, trace = stats in
  Format.fprintf ppf
    "@\nbusy-period utilization trace (%%, 1ms-smoothed):@\n";
  List.iteri
    (fun i v ->
       if i < 60 then
         Format.fprintf ppf "%s%4.0f"
           (if i > 0 && i mod 15 = 0 then "\n" else " ")
           (100. *. v))
    trace;
  Format.fprintf ppf "@\n"

(* Fig. 2: the hypothetical DCTCP beats Homa and NDP on overall FCT. *)
let fig2_units o =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 800)
      ~load:0.5 ~seed:o.seed ()
  in
  let overall_row ppf (r : Runner.result) =
    Table.row ppf r.Runner.r_scheme [ r.Runner.summary.Fct.overall_avg ]
  in
  unit_ "head" (fun ppf ->
      section ppf
        "fig2: overall avg FCT, hypothetical DCTCP vs proactive \
         transports (web search, 0.5)";
      Table.header ppf [ "overall-avg-ms" ])
  :: List.map
       (fun s ->
          unit_ s.Schemes.s_name (fun ppf ->
              overall_row ppf (Runner.run cfg s)))
       [ Schemes.dctcp; Schemes.homa; Schemes.ndp ]
  @ [ unit_ "hypo-dctcp" (fun ppf ->
        (* two-pass: the recorder run happens inside this unit *)
        List.iter
          (fun s -> overall_row ppf (Runner.run cfg s))
          (hypo_schemes cfg)) ]

(* Fig. 3: filling the gap to x * MW; 1.0 is the sweet spot. Kept as a
   single unit: every row is reported relative to the 1.0xMW run. *)
let fig3 o ppf =
  section ppf "fig3: filling the gap to a fraction of MW (data mining, 0.6)";
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 250)
      ~load:0.6 ~seed:o.seed ()
    |> Config.with_workload ~name:"data-mining" Dists.data_mining
  in
  let schemes =
    hypo_schemes ~fractions:[ 0.5; 0.75; 1.0; 1.25; 1.5 ] cfg
  in
  let results = List.map (fun s -> Runner.run cfg s) schemes in
  let base =
    match List.nth_opt results 2 with
    | Some r -> r.Runner.summary.Fct.overall_avg
    | None -> nan
  in
  Table.header ppf [ "overall-avg-ms"; "vs 1.0xMW" ];
  List.iter
    (fun (r : Runner.result) ->
       let v = r.Runner.summary.Fct.overall_avg in
       Table.row ppf r.Runner.r_scheme [ v; v /. base ])
    results

(* Figs. 8/9: testbed 15-to-15 FCT statistics across loads. *)
let testbed_loads_units o ~workload ~workload_name ~n_flows =
  List.concat_map
    (fun load ->
       let cfg =
         Config.testbed ~n_flows:(scaled o n_flows) ~load ~seed:o.seed ()
         |> Config.with_workload ~name:workload_name workload
       in
       let prefix = Printf.sprintf "load%.1f/" load in
       unit_ (prefix ^ "head") (fun ppf ->
           Format.fprintf ppf "@\n-- %s, load %.1f --@\n" workload_name
             load;
           Table.header ppf fct_cols)
       :: scheme_row_units ~prefix cfg Schemes.testbed_set)
    [ 0.3; 0.5; 0.7; 0.9 ]

let fig8_units o =
  unit_ "head" (fun ppf ->
      section ppf "fig8: testbed 15-to-15, web search")
  :: testbed_loads_units o ~workload:Dists.web_search
       ~workload_name:"web-search" ~n_flows:250

let fig9_units o =
  unit_ "head" (fun ppf ->
      section ppf "fig9: testbed 15-to-15, data mining")
  :: testbed_loads_units o ~workload:Dists.data_mining
       ~workload_name:"data-mining" ~n_flows:120

(* Figs. 10/11: testbed 14-to-1 incast at 0.5 load. *)
let testbed_incast_units o ~title ~workload ~workload_name ~n_flows =
  let cfg =
    { (Config.testbed ~n_flows:(scaled o n_flows) ~load:0.5 ~seed:o.seed
         ())
      with Config.pattern = Config.Incast { n_senders = 14 } }
    |> Config.with_workload ~name:workload_name workload
  in
  unit_ "head" (fun ppf ->
      section ppf "%s" title;
      Table.header ppf fct_cols)
  :: scheme_row_units cfg Schemes.testbed_set

let fig10_units o =
  testbed_incast_units o
    ~title:"fig10: testbed 14-to-1 incast, web search, 0.5 load"
    ~workload:Dists.web_search ~workload_name:"web-search" ~n_flows:250

let fig11_units o =
  testbed_incast_units o
    ~title:"fig11: testbed 14-to-1 incast, data mining, 0.5 load"
    ~workload:Dists.data_mining ~workload_name:"data-mining" ~n_flows:120

(* Figs. 12/13: the large-scale six-scheme comparison. *)
let fabric_headline_units o ~title ~workload ~workload_name ~n_flows
    ~load =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o n_flows)
      ~load ~seed:o.seed ()
    |> Config.with_workload ~name:workload_name workload
  in
  unit_ "head" (fun ppf ->
      section ppf "%s" title;
      Table.header ppf fct_cols)
  :: scheme_row_units cfg Schemes.headline

let fig12_units o =
  fabric_headline_units o
    ~title:
      "fig12: large-scale simulation (oversubscribed 40/100G), web \
       search, 0.5 load"
    ~workload:Dists.web_search ~workload_name:"web-search" ~n_flows:800
    ~load:0.5

let fig13_units o =
  fabric_headline_units o
    ~title:
      "fig13: large-scale simulation (oversubscribed 40/100G), data \
       mining, 0.5 load"
    ~workload:Dists.data_mining ~workload_name:"data-mining" ~n_flows:300
    ~load:0.5

(* Generic "section + FCT table over one scheme set" decomposition. *)
let fct_set_units o ~title ~n_flows schemes =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o n_flows)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf "%s" title;
      Table.header ppf fct_cols)
  :: scheme_row_units cfg schemes

(* Fig. 14: PPT's design on a delay-based (Swift-like) transport. *)
let fig14_units o =
  fct_set_units o
    ~title:"fig14: PPT on a delay-based transport (web search, 0.5)"
    ~n_flows:800 [ Schemes.swift; Schemes.ppt_swift ]

(* Figs. 15-18: component ablations on the web-search fabric. *)
let ablation_units ?(show_without_dt = false) o ~title variant =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 800)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf "%s" title;
      Table.header ppf fct_cols)
  :: scheme_row_units cfg [ Schemes.ppt; variant ]
  @ (if show_without_dt then begin
       (* Our switches also run dynamic-threshold buffer sharing, which
          shields HCP from a misbehaving LCP; with a purely shared
          buffer (the paper's switch model) the component's value shows
          fully. *)
       let cfg_nodt = { cfg with Config.dt = false } in
       unit_ "nodt/head" (fun ppf ->
           Format.fprintf ppf
             "-- same, without dynamic-threshold buffer sharing --@
";
           Table.header ppf fct_cols)
       :: scheme_row_units ~prefix:"nodt/" cfg_nodt
            [ Schemes.ppt; variant ]
     end
     else [])

let fig15_units o =
  ablation_units ~show_without_dt:true o
    ~title:"fig15: effect of ECN for the LCP loop" Schemes.ppt_no_lcp_ecn

let fig16_units o =
  ablation_units ~show_without_dt:true o
    ~title:"fig16: effect of exponential window decreasing"
    Schemes.ppt_no_ewd

let fig17_units o =
  ablation_units o
    ~title:"fig17: effect of buffer-aware flow scheduling"
    Schemes.ppt_no_sched

let fig18_units o =
  ablation_units o
    ~title:"fig18: effect of buffer-aware flow identification"
    Schemes.ppt_no_ident

(* Fig. 19: kernel datapath overhead proxy (operations per host per
   second) for PPT vs DCTCP across loads. *)
let fig19_units o =
  unit_ "head" (fun ppf ->
      section ppf
        "fig19: datapath operation rate (CPU overhead proxy), testbed, \
         web search";
      Table.header ppf [ "dctcp-kops/s"; "ppt-kops/s"; "ppt/dctcp" ])
  :: List.map
       (fun load ->
          unit_ (Printf.sprintf "load%.1f" load) (fun ppf ->
              let cfg =
                Config.testbed ~n_flows:(scaled o 250) ~load ~seed:o.seed
                  ()
              in
              let d = Runner.run cfg Schemes.dctcp in
              let p = Runner.run cfg Schemes.ppt in
              Table.row ppf
                (Printf.sprintf "load %.1f" load)
                [ d.Runner.ops_per_host_sec /. 1e3;
                  p.Runner.ops_per_host_sec /. 1e3;
                  p.Runner.ops_per_host_sec /. d.Runner.ops_per_host_sec ]))
       [ 0.3; 0.5; 0.7; 0.9 ]

(* Fig. 20: PPT sustains the utilization the hypothetical DCTCP
   achieves; plain DCTCP dips far below. *)
let fig20_units o =
  let cfg =
    { (Config.dumbbell ~n_flows:(scaled o 400) ~load:0.5 ~seed:o.seed ())
      with Config.rto_min = Units.ms 1 }
  in
  let util_row scheme ppf =
    pp_util_summary ppf scheme.Schemes.s_name (util_experiment o scheme)
  in
  [ unit_ "head" (fun ppf ->
        section ppf
          "fig20: bottleneck utilization, 2-to-1 at 40G, web search, \
           0.5 load";
        Table.header ppf util_cols);
    unit_ "dctcp" (util_row Schemes.dctcp);
    unit_ "ppt" (util_row Schemes.ppt);
    unit_ "hypo-dctcp" (fun ppf ->
        util_row (List.hd (hypo_schemes cfg)) ppf) ]

(* Fig. 21: the Facebook Memcached workload (all flows <= 100KB). *)
let fig21_units o =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 4000)
      ~load:0.5 ~seed:o.seed ()
    |> Config.with_workload ~name:"memcached" Dists.memcached
  in
  unit_ "head" (fun ppf ->
      section ppf "fig21: Memcached workload (W1), 0.5 load";
      Table.header ppf [ "small-avg-ms"; "small-p99-ms" ])
  :: List.map
       (fun scheme ->
          unit_ scheme.Schemes.s_name (fun ppf ->
              let r = Runner.run cfg scheme in
              let s = r.Runner.summary in
              Table.row ppf r.Runner.r_scheme
                [ s.Fct.small_avg; s.Fct.small_p99 ]))
       Schemes.headline

(* Fig. 22: the 100/400G fabric. *)
let fig22_units o =
  let cfg =
    Config.fast ~scale:(fabric_scale o) ~n_flows:(scaled o 800)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf "fig22: 100/400G topology, web search, 0.5 load";
      Table.header ppf fct_cols)
  :: scheme_row_units cfg Schemes.headline

(* Fig. 23: N-to-1 incast sweep. *)
let fig23_units o =
  let cfg0 =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 300)
      ~load:0.6 ~seed:o.seed ()
  in
  let n_hosts = Config.n_hosts cfg0 in
  let ns =
    List.filter (fun n -> n < n_hosts)
      (if o.full then [ 32; 64; 128; 143 ] else [ 8; 16; 31 ])
  in
  let schemes =
    [ Schemes.ppt; Schemes.ndp; Schemes.homa; Schemes.aeolus;
      Schemes.dctcp ]
  in
  unit_ "head" (fun ppf ->
      section ppf "fig23: incast, web search, 0.6 load (overall avg FCT)";
      Table.header ppf (List.map (fun n -> Printf.sprintf "N=%d" n) ns))
  :: List.map
       (fun scheme ->
          unit_ scheme.Schemes.s_name (fun ppf ->
              let vals =
                List.map
                  (fun n ->
                     let cfg =
                       { cfg0 with
                         Config.pattern =
                           Config.Incast { n_senders = n } }
                     in
                     (Runner.run cfg scheme).Runner.summary
                       .Fct.overall_avg)
                  ns
              in
              Table.row ppf scheme.Schemes.s_name vals))
       schemes

(* Fig. 24: RC3 with its low-priority buffer capped. *)
let fig24_units o =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 800)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf
        "fig24: RC3 with capped low-priority buffer vs PPT (web \
         search, 0.5)";
      Table.header ppf fct_cols)
  :: List.map
       (fun frac ->
          unit_ (Printf.sprintf "rc3-lp%d" (int_of_float (frac *. 100.)))
            (fun ppf ->
               let cap =
                 int_of_float (frac *. float_of_int cfg.Config.buffer_bytes)
               in
               let scheme =
                 { Schemes.rc3 with
                   Schemes.s_name =
                     Printf.sprintf "rc3-lp%d%%"
                       (int_of_float (frac *. 100.)) }
               in
               fct_row ppf (Runner.run ~lp_buffer_cap:cap cfg scheme)))
       [ 0.2; 0.4; 0.6; 0.8 ]
  @ [ unit_ "ppt" (fun ppf -> fct_row ppf (Runner.run cfg Schemes.ppt)) ]

(* Fig. 25: PIAS and HPCC. *)
let fig25_units o =
  fct_set_units o
    ~title:"fig25: PPT vs PIAS and HPCC (web search, 0.5)" ~n_flows:800
    [ Schemes.hpcc; Schemes.pias; Schemes.ppt ]

(* Fig. 26: the non-oversubscribed fabric. *)
let fig26_units o =
  let cfg =
    Config.non_oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 800)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf
        "fig26: non-oversubscribed topology, web search, 0.5 load";
      Table.header ppf fct_cols)
  :: scheme_row_units cfg Schemes.headline

(* Fig. 27: TCP send-buffer sensitivity. *)
let fig27_units o =
  fct_set_units o
    ~title:
      "fig27: PPT under different send-buffer sizes (web search, 0.5)"
    ~n_flows:800
    (List.map Schemes.ppt_sendbuf
       [ Units.kb 128; Units.mb 2; Units.mb 4; Units.mb 2000 ])

(* Figs. 28/29 setting: 2-to-1 at 40G with a 120KB buffer and the same
   ECN threshold on both bands, at 60% / 80% of the buffer. *)
let buffer_experiment o ~thresh_frac scheme =
  let buffer = Units.kb 120 in
  let k = int_of_float (thresh_frac *. float_of_int buffer) in
  let cfg =
    { (Config.dumbbell ~n_flows:(scaled o 300) ~load:0.8 ~seed:o.seed
         ~delay:(Units.us 2) ~buffer_bytes:buffer ~hp_thresh:k
         ~lp_thresh:k ())
      with Config.rto_min = Units.ms 1 }
  in
  Runner.run_observed cfg scheme ~probe:(fun ctx topo ->
      let hosts = topo.Topology.hosts in
      let receiver = hosts.(Array.length hosts - 1) in
      let node, pix = topo.Topology.to_host_port receiver in
      let port = Net.port ctx.Context.net node pix in
      let hp = Series.create () and lp = Series.create () in
      let rec sample () =
        let now = Sim.now ctx.Context.sim in
        Series.record hp ~at:now
          (float_of_int (Prio_queue.hp_bytes port.Net.q));
        Series.record lp ~at:now
          (float_of_int (Prio_queue.lp_bytes port.Net.q));
        if now < Units.ms 100 then
          ignore
            (Sim.schedule ctx.Context.sim ~after:(Units.us 10) sample)
      in
      ignore (Sim.schedule_at ctx.Context.sim 0 sample);
      (hp, lp))

let buffer_schemes = [ Schemes.dctcp; Schemes.rc3; Schemes.ppt ]

let buffer_sweep_units ~render_one =
  List.concat_map
    (fun thresh_frac ->
       let prefix = Printf.sprintf "t%.0f/" (100. *. thresh_frac) in
       unit_ (prefix ^ "head") (fun ppf ->
           Format.fprintf ppf "-- ECN threshold at %.0f%% of buffer --@\n"
             (100. *. thresh_frac))
       :: List.map
            (fun scheme ->
               unit_ (prefix ^ scheme.Schemes.s_name) (fun ppf ->
                   render_one ppf ~thresh_frac scheme))
            buffer_schemes)
    [ 0.6; 0.8 ]

let fig28_units o =
  unit_ "head" (fun ppf ->
      section ppf
        "fig28: buffer occupancy split by priority band, ECN = \
         60%%/80%% of a 120KB buffer";
      Table.header ppf [ "hp-mean-KB"; "lp-mean-KB"; "lp-share-%" ])
  :: buffer_sweep_units ~render_one:(fun ppf ~thresh_frac scheme ->
      let _r, (hp, lp) = buffer_experiment o ~thresh_frac scheme in
      let hp_m = Series.mean hp and lp_m = Series.mean lp in
      let share =
        if hp_m +. lp_m = 0. then 0.
        else 100. *. lp_m /. (hp_m +. lp_m)
      in
      Table.row ppf scheme.Schemes.s_name
        [ hp_m /. 1e3; lp_m /. 1e3; share ])

let fig29_units o =
  unit_ "head" (fun ppf ->
      section ppf
        "fig29: transfer efficiency (received bytes / sent bytes), \
         same setting as fig28";
      Table.header ppf [ "overall-eff"; "low-prio-eff" ])
  :: buffer_sweep_units ~render_one:(fun ppf ~thresh_frac scheme ->
      let r, _series = buffer_experiment o ~thresh_frac scheme in
      Table.row ppf scheme.Schemes.s_name
        [ r.Runner.efficiency; r.Runner.lp_efficiency ])

(* ====================================================================
   Tables
   ==================================================================== *)

let tab1 _o ppf =
  section ppf "tab1: qualitative comparison of transports (paper Table 1)";
  let cols =
    [ "spare-bw"; "sched-wo-size"; "commodity"; "tcp-compat"; "no-app-mod" ]
  in
  Table.header ~label_width:14 ppf cols;
  List.iter
    (fun (name, row) -> Table.text_row ~label_width:14 ppf name row)
    [ ("dctcp", [ "passive"; "x"; "yes"; "yes"; "yes" ]);
      ("tcp-10", [ "passive"; "x"; "yes"; "yes"; "yes" ]);
      ("halfback", [ "passive"; "x"; "yes"; "yes"; "yes" ]);
      ("rc3", [ "aggressive"; "x"; "yes"; "yes"; "yes" ]);
      ("pias", [ "passive"; "yes"; "yes"; "yes"; "yes" ]);
      ("hpcc", [ "graceful*"; "x"; "no"; "no"; "yes" ]);
      ("homa", [ "aggressive"; "no"; "yes"; "no"; "no" ]);
      ("aeolus", [ "aggressive"; "no"; "yes"; "no"; "no" ]);
      ("expresspass", [ "passive"; "x"; "yes"; "no"; "no" ]);
      ("ndp", [ "passive"; "x"; "no"; "no"; "no" ]);
      ("ppt", [ "graceful"; "yes"; "yes"; "yes"; "yes" ]) ];
  Format.fprintf ppf "(* graceful but requires INT from switches)@\n"

let tab2 _o ppf =
  section ppf "tab2: flow-size statistics of the workloads (paper Table 2)";
  Table.header ppf [ "small-%"; "large-%"; "avg-size-MB" ];
  List.iter
    (fun { Dists.dist_name; cdf } ->
       let small = Cdf.fraction_below cdf Dists.small_flow_cutoff in
       Table.row ppf dist_name
         [ 100. *. small; 100. *. (1. -. small); Cdf.mean cdf /. 1e6 ])
    Dists.all

let tab3 _o ppf =
  section ppf "tab3: testbed parameters (paper Table 3)";
  let cfg = Config.testbed () in
  let kv k v = Format.fprintf ppf "  %-34s %s@\n" k v in
  kv "topology" "15 hosts, one switch (Dell S4048 model)";
  kv "per-port switch buffer"
    (Printf.sprintf "%d KB (~50MB / 54 ports)"
       (cfg.Config.buffer_bytes / 1000));
  kv "link speed" "10 Gbps";
  kv "base RTT" "~80 us";
  kv "RTO_min" (Printf.sprintf "%.0f ms" (Units.to_ms cfg.Config.rto_min));
  kv "RTTbytes for Homa" "50 KB (the context BDP)";
  kv "overcommitment degree for Homa" "2";
  kv "DCTCP / HCP ECN threshold"
    (match cfg.Config.hp_thresh with
     | Some k -> Printf.sprintf "%d KB" (k / 1000)
     | None -> "off");
  kv "LCP ECN threshold"
    (match cfg.Config.lp_thresh with
     | Some k -> Printf.sprintf "%d KB" (k / 1000)
     | None -> "off");
  kv "identification threshold" "100 KB"

let tab4 _o ppf =
  section ppf
    "tab4: Homa/Linux stack size (paper Table 4; data from the paper, \
     motivates PPT's ~400-LoC deployability claim)";
  Table.header ~label_width:26 ppf [ "LoC"; "share-%" ];
  List.iter
    (fun (m, loc, pct) ->
       Table.row ~label_width:26 ppf m [ float_of_int loc; pct ])
    [ ("user API", 1900, 15.0);
      ("transport control", 2800, 22.0);
      ("GRO/GSO", 400, 3.1);
      ("state management", 700, 5.5);
      ("memory management", 300, 2.4);
      ("timeout retransmission", 300, 2.4);
      ("other", 6300, 49.6) ]

let tab5 _o ppf =
  section ppf
    "tab5: application changes needed for Homa/Linux (paper Table 5; \
     data from the paper)";
  Table.header ~label_width:30 ppf [ "LoC"; "modified" ];
  List.iter
    (fun (m, loc, changed) ->
       Table.text_row ~label_width:30 ppf m
         [ string_of_int loc; (if changed then "yes" else "no") ])
    [ ("socket", 2080, true);
      ("HTTP header processing", 1516, false);
      ("RPC", 975, true);
      ("RAFT consensus", 1365, false);
      ("coroutine synchronization", 145, false);
      ("IO", 393, true);
      ("other", 1694, false) ]

(* ====================================================================
   Extensions beyond the paper's figures
   ==================================================================== *)

(* Every Table-1 transport on the headline fabric: the full landscape
   the paper's Table 1 describes qualitatively, measured. *)
let ext1_units o =
  fct_set_units o
    ~title:
      "ext1: all Table-1 transports, web search, 0.5 load \
       (oversubscribed fabric)"
    ~n_flows:600 Schemes.table1_set

(* §6.3 sensitivity: PPT works under a wide range of LCP ECN marking
   thresholds (the lambda parameter of Eq. 3). *)
let ext2_units o =
  unit_ "head" (fun ppf ->
      section ppf
        "ext2: PPT sensitivity to the LCP ECN threshold (lambda sweep)";
      Table.header ppf fct_cols)
  :: List.map
       (fun lp_kb ->
          unit_ (Printf.sprintf "lpK%d" lp_kb) (fun ppf ->
              let cfg =
                { (Config.oversub ~scale:(fabric_scale o)
                     ~n_flows:(scaled o 500) ~load:0.5 ~seed:o.seed ())
                  with Config.lp_thresh = Some (Units.kb lp_kb) }
              in
              let r = Runner.run cfg Schemes.ppt in
              fct_row ppf
                { r with
                  Runner.r_scheme =
                    Printf.sprintf "ppt-lpK=%dKB" lp_kb }))
       [ 24; 48; 86; 110 ]

(* Appendix B: PPT's LCP as a building block for the INT-based HPCC. *)
let ext3_units o =
  fct_set_units o
    ~title:"ext3: PPT's design on HPCC (appendix B), web search, 0.5"
    ~n_flows:500 [ Schemes.hpcc; Schemes.ppt_hpcc ]

(* Load balancing is orthogonal to the transport (appendix C): compare
   classic per-flow ECMP against LetFlow-style flowlet switching and
   NDP-style per-packet spraying on the oversubscribed fabric. *)
let ext4_units o =
  unit_ "head" (fun ppf ->
      section ppf
        "ext4: load balancing (ECMP / flowlet / packet spray), web \
         search, 0.5 load";
      Table.header ppf fct_cols)
  :: List.concat_map
       (fun (key, label, routing) ->
          let cfg =
            { (Config.oversub ~scale:(fabric_scale o)
                 ~n_flows:(scaled o 500) ~load:0.5 ~seed:o.seed ())
              with Config.routing }
          in
          unit_ (key ^ "/head") (fun ppf ->
              Format.fprintf ppf "-- %s --@
" label)
          :: scheme_row_units ~prefix:(key ^ "/") cfg
               [ Schemes.ppt; Schemes.dctcp ])
       [ ("ecmp", "per-flow ECMP", Topology.Per_flow);
         ("flowlet", "flowlet (gap = 50us)",
          Topology.Flowlet { gap = Units.us 50 });
         ("spray", "per-packet spray", Topology.Per_packet) ]

(* Normalized FCT (slowdown) and Jain fairness: the Homa-style view of
   the same headline comparison. *)
let ext5_units o =
  let cfg =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 500)
      ~load:0.5 ~seed:o.seed ()
  in
  unit_ "head" (fun ppf ->
      section ppf
        "ext5: slowdown (normalized FCT) and fairness, web search, 0.5 \
         load";
      Table.header ppf
        [ "mean-slwdn"; "p99-slwdn"; "small-p99-s"; "jain" ])
  :: List.map
       (fun scheme ->
          unit_ scheme.Schemes.s_name (fun ppf ->
              let r = Runner.run cfg scheme in
              let fct = Fct.create () in
              List.iter (Fct.add fct) r.Runner.records;
              let rate = r.Runner.edge_rate
              and base_rtt = r.Runner.base_rtt in
              let mean, p99 = Fct.slowdown_stats ~rate ~base_rtt fct in
              let _, small_p99 =
                Fct.slowdown_stats ~hi:Dists.small_flow_cutoff ~rate
                  ~base_rtt fct
              in
              Table.row ppf r.Runner.r_scheme
                [ mean; p99; small_p99; Fct.jain_fairness fct ]))
       [ Schemes.ppt; Schemes.dctcp; Schemes.homa; Schemes.ndp ]

(* Fault tolerance: the canonical chaos scenarios of lib/faults (link
   flap, spine BER, transient delay spike, paused receiver) against the
   chaos transport set. Completion must stay at 100% for every
   scenario; the FCT columns show what each recovery costs. *)
let chaos_units o =
  let base =
    Config.oversub ~scale:(fabric_scale o) ~n_flows:(scaled o 200)
      ~load:0.5 ~seed:o.seed ()
  in
  let receiver = Config.n_hosts base - 1 in
  let spike =
    (* ~10x the pristine one-way path delay *)
    match base.Config.topo with
    | Config.Leaf_spine { edge_delay; core_delay; _ } ->
      9 * 2 * (edge_delay + core_delay)
    | Config.Star { delay; _ } -> 9 * 2 * delay
  in
  let scenarios =
    ("none", "")
    :: Ppt_faults.Fault_spec.scenarios ~receiver ~spike ~core:true
  in
  unit_ "head" (fun ppf ->
      section ppf
        "chaos: canonical fault scenarios (oversubscribed fabric), web \
         search, 0.5 load";
      Format.fprintf ppf "%-12s %-8s %11s %12s %10s %10s@\n" "scenario"
        "scheme" "completed" "fault-drops" "avg-fct" "small-p99")
  :: List.concat_map
       (fun (name, spec_s) ->
          List.map
            (fun scheme ->
               unit_ (name ^ "/" ^ scheme.Schemes.s_name) (fun ppf ->
                   let spec =
                     match Ppt_faults.Fault_spec.of_string spec_s with
                     | Ok s -> s
                     | Error e ->
                       failwith ("chaos scenario " ^ name ^ ": " ^ e)
                   in
                   let r =
                     Runner.run (Config.with_faults spec base) scheme
                   in
                   Format.fprintf ppf
                     "%-12s %-8s %5d/%-5d %12d %10.3f %10.3f@\n" name
                     r.Runner.r_scheme r.Runner.completed
                     r.Runner.requested r.Runner.fault_drops
                     r.Runner.summary.Fct.overall_avg
                     r.Runner.summary.Fct.small_p99))
            Schemes.chaos_set)
       scenarios

(* ---------- registry ---------- *)

type experiment = {
  e_id : string;
  e_descr : string;
  e_units : opts -> unit_of_work list;
  e_sim : bool;
  (* false = print-only (static tables): running it processes no
     simulator events, so it has no place in macro timing *)
}

(* An undecomposed experiment: one unit running the whole generator. *)
let whole f = fun o -> [ unit_ "all" (fun ppf -> f o ppf) ]

let exp_ ?(sim = true) e_id e_descr e_units =
  { e_id; e_descr; e_units; e_sim = sim }

let all : experiment list =
  [ exp_ ~sim:false "tab1" "qualitative transport comparison" (whole tab1);
    exp_ ~sim:false "tab2" "workload flow-size statistics" (whole tab2);
    exp_ ~sim:false "tab3" "testbed parameters" (whole tab3);
    exp_ ~sim:false "tab4" "Homa/Linux stack LoC" (whole tab4);
    exp_ ~sim:false "tab5" "app changes for Homa/Linux" (whole tab5);
    exp_ "fig1" "DCTCP utilization fluctuation" (whole fig1);
    exp_ "fig2" "hypothetical DCTCP vs proactive" fig2_units;
    exp_ "fig3" "fill-to-fraction-of-MW sweep" (whole fig3);
    exp_ "fig8" "testbed 15-to-15 web search" fig8_units;
    exp_ "fig9" "testbed 15-to-15 data mining" fig9_units;
    exp_ "fig10" "testbed 14-to-1 web search" fig10_units;
    exp_ "fig11" "testbed 14-to-1 data mining" fig11_units;
    exp_ "fig12" "large-scale web search" fig12_units;
    exp_ "fig13" "large-scale data mining" fig13_units;
    exp_ "fig14" "PPT over delay-based transport" fig14_units;
    exp_ "fig15" "ablation: ECN for LCP" fig15_units;
    exp_ "fig16" "ablation: EWD" fig16_units;
    exp_ "fig17" "ablation: flow scheduling" fig17_units;
    exp_ "fig18" "ablation: flow identification" fig18_units;
    exp_ "fig19" "datapath overhead proxy" fig19_units;
    exp_ "fig20" "utilization: PPT vs hypothetical" fig20_units;
    exp_ "fig21" "memcached workload" fig21_units;
    exp_ "fig22" "100/400G topology" fig22_units;
    exp_ "fig23" "incast sweep" fig23_units;
    exp_ "fig24" "RC3 with capped low-prio buffer" fig24_units;
    exp_ "fig25" "PPT vs PIAS and HPCC" fig25_units;
    exp_ "fig26" "non-oversubscribed topology" fig26_units;
    exp_ "fig27" "send-buffer sensitivity" fig27_units;
    exp_ "fig28" "buffer occupancy by band" fig28_units;
    exp_ "fig29" "transfer efficiency" fig29_units;
    exp_ "ext1" "all Table-1 transports measured" ext1_units;
    exp_ "ext2" "LCP ECN-threshold sensitivity" ext2_units;
    exp_ "ext3" "PPT over HPCC (appendix B)" ext3_units;
    exp_ "ext4" "load balancing modes" ext4_units;
    exp_ "ext5" "slowdown and fairness view" ext5_units;
    exp_ "chaos" "fault injection: canonical chaos scenarios" chaos_units ]

let find id = List.find_opt (fun e -> e.e_id = id) all

(* Serial rendering: every unit in canonical order, each through its
   own buffer — the reference output a parallel sweep must reproduce
   byte for byte. *)
let render e o ppf = render_units (e.e_units o) ppf
