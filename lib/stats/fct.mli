(** Flow-completion-time statistics with the paper's size bins. *)

open Ppt_engine

type record = {
  flow : int;
  size : int;
  start : Units.time;
  finish : Units.time;
  retrans : int;
  hcp_payload : int;
  lcp_payload : int;
  hcp_delivered : int;
  lcp_delivered : int;
}

val fct_ms : record -> float

type t

val create : unit -> t
val add : t -> record -> unit
val count : t -> int
val records : t -> record list

val avg : ?lo:int -> ?hi:int -> t -> float
(** Average FCT (ms) of flows with [lo] < size <= [hi]; [nan] if none. *)

val percentile : ?lo:int -> ?hi:int -> t -> float -> float
(** Interpolated percentile (ms) of the same filter. *)

val percentile_of_values : float -> float list -> float
(** [percentile_of_values p xs]: interpolating percentile over a raw
    float sample — rank [p/100 * (n-1)], linear between the
    surrounding order statistics; [nan] when empty. Every percentile
    this module reports (FCT and slowdown alike) uses this. *)

type summary = {
  flows : int;
  overall_avg : float;
  small_avg : float;
  small_p99 : float;
  large_avg : float;
  total_retrans : int;
  hcp_bytes : int;
  lcp_bytes : int;
}

val summarize : ?cutoff:int -> t -> summary
(** [cutoff] defaults to 100KB, the paper's small/large boundary. *)

val slowdown : rate:Units.rate -> base_rtt:Units.time -> record -> float
(** Normalized FCT: completion time over the ideal unloaded time. *)

val slowdowns :
  ?lo:int -> ?hi:int -> rate:Units.rate -> base_rtt:Units.time -> t ->
  float list

val slowdown_stats :
  ?lo:int -> ?hi:int -> rate:Units.rate -> base_rtt:Units.time -> t ->
  float * float
(** (mean, p99) slowdown of the filtered flows; NaNs when empty. *)

val jain_fairness : t -> float
(** Jain's index over per-flow average throughput; 1.0 is fair. *)

val pp_summary : Format.formatter -> summary -> unit
