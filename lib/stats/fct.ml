(* Flow-completion-time bookkeeping.

   Every completed flow reports one [record]; the collector computes
   the metrics the paper reports for each figure: overall average FCT,
   average and 99th-percentile FCT of (0,100KB] small flows, and the
   average FCT of (100KB, inf) large flows. *)

open Ppt_engine

type record = {
  flow : int;
  size : int;               (* bytes *)
  start : Units.time;
  finish : Units.time;
  retrans : int;            (* retransmitted segments *)
  hcp_payload : int;        (* payload bytes sent by the primary loop *)
  lcp_payload : int;        (* payload bytes sent by a low-prio loop *)
  hcp_delivered : int;      (* fresh payload accepted at the receiver *)
  lcp_delivered : int;
}

let fct_ms r = Units.to_ms (r.finish - r.start)

type t = {
  mutable records : record list;
  mutable n : int;
}

let create () = { records = []; n = 0 }

let add t r =
  if r.finish < r.start then invalid_arg "Fct.add: finish before start";
  t.records <- r :: t.records;
  t.n <- t.n + 1

let count t = t.n
let records t = t.records

let filter ?(lo = 0) ?(hi = max_int) t =
  List.filter (fun r -> r.size > lo && r.size <= hi) t.records

let avg_of = function
  | [] -> nan
  | rs ->
    List.fold_left (fun acc r -> acc +. fct_ms r) 0. rs
    /. float_of_int (List.length rs)

(* Interpolating percentile over a float sample: rank p/100*(n-1),
   linear between the surrounding order statistics. Every percentile
   this module reports goes through here. *)
let percentile_of_values p = function
  | [] -> nan
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let i = int_of_float rank in
    if i >= n - 1 then arr.(n - 1)
    else begin
      let frac = rank -. float_of_int i in
      arr.(i) +. ((arr.(i + 1) -. arr.(i)) *. frac)
    end

let percentile_of p rs = percentile_of_values p (List.map fct_ms rs)

let avg ?lo ?hi t = avg_of (filter ?lo ?hi t)
let percentile ?lo ?hi t p = percentile_of p (filter ?lo ?hi t)

type summary = {
  flows : int;
  overall_avg : float;      (* ms *)
  small_avg : float;
  small_p99 : float;
  large_avg : float;
  total_retrans : int;
  hcp_bytes : int;
  lcp_bytes : int;
}

let summarize ?(cutoff = 100_000) t =
  { flows = t.n;
    overall_avg = avg t;
    small_avg = avg ~hi:cutoff t;
    small_p99 = percentile ~hi:cutoff t 99.;
    large_avg = avg ~lo:cutoff t;
    total_retrans =
      List.fold_left (fun acc r -> acc + r.retrans) 0 t.records;
    hcp_bytes =
      List.fold_left (fun acc r -> acc + r.hcp_payload) 0 t.records;
    lcp_bytes =
      List.fold_left (fun acc r -> acc + r.lcp_payload) 0 t.records }

(* Normalized FCT (slowdown): a flow's completion time divided by the
   time an ideal, unloaded network of the given rate would need
   (serialization at line rate plus one base RTT). Homa-style papers
   report this instead of raw FCT. *)
let slowdown ~rate ~base_rtt r =
  let ideal =
    Units.tx_time ~rate ~bytes:r.size + base_rtt
  in
  float_of_int (r.finish - r.start) /. float_of_int (max 1 ideal)

let slowdowns ?lo ?hi ~rate ~base_rtt t =
  List.map (slowdown ~rate ~base_rtt) (filter ?lo ?hi t)

let slowdown_stats ?lo ?hi ~rate ~base_rtt t =
  match slowdowns ?lo ?hi ~rate ~base_rtt t with
  | [] -> (nan, nan)
  | xs ->
    let n = List.length xs in
    let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
    (* interpolated, like every other percentile here — the former
       index formula [0.99 * n] degenerated to the sample maximum for
       n <= 100 *)
    (mean, percentile_of_values 99. xs)

(* Jain's fairness index over per-flow average throughput (bytes per
   unit of flow lifetime): 1.0 = perfectly fair. *)
let jain_fairness t =
  let rates =
    List.filter_map
      (fun r ->
         let d = r.finish - r.start in
         if d <= 0 then None
         else Some (float_of_int r.size /. float_of_int d))
      t.records
  in
  match rates with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length rates) in
    let s = List.fold_left ( +. ) 0. rates in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. rates in
    if s2 = 0. then nan else s *. s /. (n *. s2)

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<h>flows=%d overall=%.3fms small-avg=%.3fms small-p99=%.3fms \
     large-avg=%.3fms retrans=%d@]"
    s.flows s.overall_avg s.small_avg s.small_p99 s.large_avg
    s.total_retrans
