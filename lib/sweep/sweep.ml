(* See sweep.mli for the contract. Shape of the implementation:

   - parent forks up to [jobs] workers; each worker inherits the unit
     array and loops: read a unit index from its request pipe, run the
     unit, send [(index, result, wall)] back as a frame, repeat;
   - the parent multiplexes the response pipes with [select], keeps a
     queue of pending unit indexes, and re-dispatches as workers free
     up, so shard imbalance never idles a worker while work remains;
   - deaths are detected by EOF on a worker's response pipe (every
     child closes the pipe ends of its siblings, so an EOF really
     means that worker is gone), timeouts by a deadline kept per
     in-flight unit; both re-queue the unit with a bounded retry
     budget;
   - workers exit through [Unix._exit] so the parent's buffered
     channels, inherited at fork time, are never double-flushed. *)

type 'a unit_spec = {
  key : string;
  run : unit -> 'a;
}

type 'a outcome =
  | Done of 'a
  | Failed of string

type 'a shard = {
  s_key : string;
  s_outcome : 'a outcome;
  s_wall : float;
  s_attempts : int;
  s_cached : bool;
}

type 'a report = {
  shards : 'a shard list;
  r_jobs : int;
  r_wall : float;
  r_resumed : int;
}

(* What a worker sends back per unit: index, result-or-exception,
   seconds spent running it. *)
type 'a response = int * ('a, string) result * float

type worker = {
  w_pid : int;
  w_req : Unix.file_descr;    (* parent writes unit indexes *)
  w_resp : Unix.file_descr;   (* parent reads response frames *)
  w_dec : Frame.decoder;
  mutable w_job : int option;
  mutable w_deadline : float; (* infinity = no timeout armed *)
}

let quit_index = -1

let worker_loop (units : 'a unit_spec array) req resp =
  let rec loop () =
    let idx = try Frame.read_fd req with End_of_file -> quit_index in
    if idx = quit_index then Unix._exit 0
    else begin
      let u = units.(idx) in
      let t0 = Unix.gettimeofday () in
      let res =
        try Ok (u.run ())
        with e -> Error (Printexc.to_string e)
      in
      let wall = Unix.gettimeofday () -. t0 in
      (Frame.write_fd resp ((idx, res, wall) : _ response)
       : unit);
      loop ()
    end
  in
  (try loop () with _ -> Unix._exit 125)

(* Mutable sweep state shared by the serial and parallel paths. *)
type 'a state = {
  units : 'a unit_spec array;
  slots : ('a outcome * float * int * bool) option array;
  (* outcome, wall, attempts, cached *)
  mutable n_done : int;
  attempts : int array;
  pending : int Queue.t;
  journal : Journal.t option;
  progress : string -> unit;
}

let complete st i outcome wall ~cached =
  if st.slots.(i) = None then begin
    st.slots.(i) <- Some (outcome, wall, st.attempts.(i), cached);
    st.n_done <- st.n_done + 1;
    (match (outcome, st.journal, cached) with
     | Done v, Some j, false ->
       Journal.append j ~key:st.units.(i).key v ~wall
     | _ -> ());
    st.progress st.units.(i).key
  end

let requeue st ~retries i reason =
  if st.attempts.(i) > retries then
    complete st i (Failed reason) 0. ~cached:false
  else Queue.add i st.pending

(* --- parallel pool -------------------------------------------------- *)

let rec waitpid_retry pid =
  try ignore (Unix.waitpid [] pid)
  with
  | Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn st ~siblings =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* the worker must not inherit write ends of sibling pipes, or EOF
     would stop meaning "that worker died" *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    close_noerr req_w;
    close_noerr resp_r;
    List.iter
      (fun w -> close_noerr w.w_req; close_noerr w.w_resp)
      siblings;
    worker_loop st.units req_r resp_w
  | pid ->
    close_noerr req_r;
    close_noerr resp_w;
    { w_pid = pid; w_req = req_w; w_resp = resp_r;
      w_dec = Frame.decoder (); w_job = None; w_deadline = infinity }

let kill_worker w =
  (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
  close_noerr w.w_req;
  close_noerr w.w_resp;
  waitpid_retry w.w_pid

(* Ask an idle worker to exit and reap it. *)
let retire w =
  (try Frame.write_fd w.w_req quit_index with _ -> ());
  close_noerr w.w_req;
  close_noerr w.w_resp;
  waitpid_retry w.w_pid

let run_parallel st ~jobs ~timeout ~retries =
  let workers = ref [] in
  let drop w = workers := List.filter (fun x -> x != w) !workers in
  let now () = Unix.gettimeofday () in
  let dispatch w =
    match Queue.take_opt st.pending with
    | None -> ()
    | Some i ->
      st.attempts.(i) <- st.attempts.(i) + 1;
      w.w_job <- Some i;
      w.w_deadline <-
        (match timeout with
         | Some t -> now () +. t
         | None -> infinity);
      (try Frame.write_fd w.w_req i
       with _ ->
         (* worker already dead; the EOF path will requeue *)
         ())
  in
  let on_death w reason =
    drop w;
    close_noerr w.w_req;
    close_noerr w.w_resp;
    waitpid_retry w.w_pid;
    match w.w_job with
    | Some i -> requeue st ~retries i reason
    | None -> ()
  in
  let on_response w ((i, res, wall) : _ response) =
    w.w_job <- None;
    w.w_deadline <- infinity;
    (match res with
     | Ok v -> complete st i (Done v) wall ~cached:false
     | Error msg -> complete st i (Failed msg) wall ~cached:false)
  in
  let on_readable w =
    let chunk = Bytes.create 65536 in
    match Unix.read w.w_resp chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
    | 0 -> on_death w "worker process died"
    | n ->
      Frame.feed w.w_dec chunk n;
      let rec drain () =
        match Frame.next w.w_dec with
        | Some resp -> on_response w resp; drain ()
        | None -> ()
      in
      drain ()
  in
  let rec select_retry fds tmo =
    try Unix.select fds [] [] tmo
    with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds tmo
  in
  let n = Array.length st.units in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
        List.iter kill_worker !workers;
        workers := [];
        match old_sigpipe with
        | Some h -> (try Sys.set_signal Sys.sigpipe h with _ -> ())
        | None -> ())
    (fun () ->
       while st.n_done < n do
         (* keep the pool topped up; retire the idle when the queue is
            dry (in-flight units may still re-queue, which spawns
            fresh workers next round) *)
         List.iter
           (fun w ->
              if w.w_job = None then begin
                if Queue.is_empty st.pending then begin
                  drop w;
                  retire w
                end else dispatch w
              end)
           !workers;
         while
           List.length !workers < jobs
           && not (Queue.is_empty st.pending)
         do
           let w = spawn st ~siblings:!workers in
           workers := w :: !workers;
           dispatch w
         done;
         if !workers = [] then begin
           if st.n_done < n then
             (* every remaining unit exhausted its retries *)
             Array.iteri
               (fun i slot ->
                  if slot = None then
                    complete st i (Failed "unit never completed") 0.
                      ~cached:false)
               st.slots
         end else begin
           let deadline =
             List.fold_left
               (fun acc w -> min acc w.w_deadline)
               infinity !workers
           in
           let tmo =
             if deadline = infinity then (-1.0)
             else max 0.01 (deadline -. now ())
           in
           let fds = List.map (fun w -> w.w_resp) !workers in
           let readable, _, _ = select_retry fds tmo in
           List.iter
             (fun w ->
                if List.memq w.w_resp readable then on_readable w)
             !workers;
           let t = now () in
           List.iter
             (fun w ->
                if w.w_job <> None && t > w.w_deadline then begin
                  drop w;
                  let i = match w.w_job with Some i -> i | None -> 0 in
                  kill_worker w;
                  requeue st ~retries i
                    (Printf.sprintf "unit %s timed out" st.units.(i).key)
                end)
             !workers
         end
       done)

(* --- serial path ---------------------------------------------------- *)

let run_serial st =
  Queue.iter
    (fun i ->
       st.attempts.(i) <- st.attempts.(i) + 1;
       let t0 = Unix.gettimeofday () in
       let res =
         try Done (st.units.(i).run ())
         with e -> Failed (Printexc.to_string e)
       in
       let wall = Unix.gettimeofday () -. t0 in
       complete st i res wall ~cached:false)
    st.pending;
  Queue.clear st.pending

(* --- entry point ---------------------------------------------------- *)

let run ?(jobs = 1) ?timeout ?(retries = 1) ?journal ?(resume = false)
    ?(progress = ignore) specs =
  let units = Array.of_list specs in
  let n = Array.length units in
  let keys = List.map (fun u -> u.key) specs in
  let tbl = Hashtbl.create (2 * n) in
  List.iter
    (fun k ->
       if Hashtbl.mem tbl k then
         invalid_arg ("Sweep.run: duplicate unit key " ^ k);
       Hashtbl.add tbl k ())
    keys;
  let t0 = Unix.gettimeofday () in
  let jnl, cached =
    match journal with
    | None -> (None, [])
    | Some path ->
      let j, entries = Journal.open_ ~path ~keys ~resume in
      (Some j, entries)
  in
  let st =
    { units;
      slots = Array.make n None;
      n_done = 0;
      attempts = Array.make n 0;
      pending = Queue.create ();
      journal = jnl;
      progress }
  in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i u -> Hashtbl.replace index_of u.key i) units;
  List.iter
    (fun (key, v, wall) ->
       match Hashtbl.find_opt index_of key with
       | Some i when st.slots.(i) = None ->
         st.slots.(i) <- Some (Done v, wall, 0, true);
         st.n_done <- st.n_done + 1
       | _ -> ())
    cached;
  let resumed = st.n_done in
  Array.iteri
    (fun i slot -> if slot = None then Queue.add i st.pending)
    st.slots;
  Fun.protect
    ~finally:(fun () ->
        match jnl with Some j -> Journal.close j | None -> ())
    (fun () ->
       if jobs <= 1 then run_serial st
       else run_parallel st ~jobs ~timeout ~retries);
  let shards =
    Array.to_list
      (Array.mapi
         (fun i slot ->
            match slot with
            | Some (outcome, wall, attempts, cached) ->
              { s_key = units.(i).key; s_outcome = outcome;
                s_wall = wall; s_attempts = attempts;
                s_cached = cached }
            | None ->
              { s_key = units.(i).key;
                s_outcome = Failed "unit never ran";
                s_wall = 0.; s_attempts = 0; s_cached = false })
         st.slots)
  in
  { shards; r_jobs = max 1 jobs;
    r_wall = Unix.gettimeofday () -. t0;
    r_resumed = resumed }
