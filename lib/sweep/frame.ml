(* Length-prefixed marshalled frames over file descriptors and
   channels: the wire format shared by the worker pipes and the shard
   journal. A frame is a 4-byte big-endian payload length followed by
   the [Marshal]-encoded value. Readers either return a complete value
   or report that the stream ended (cleanly or mid-frame), so a
   truncated journal or a pipe cut by a dying worker never takes the
   parent down. *)

let max_payload = 1 lsl 28
(* sanity bound: a frame above 256MB means a corrupt length prefix *)

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n = Unix.write fd buf ofs len in
    write_all fd buf (ofs + n) (len - n)
  end

(* Encode [v] as one frame into a fresh buffer (header + payload),
   ready for a single [write_all]. *)
let encode v =
  let payload = Marshal.to_bytes v [] in
  let n = Bytes.length payload in
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit payload 0 frame 4 n;
  frame

let write_fd fd v =
  let frame = encode v in
  write_all fd frame 0 (Bytes.length frame)

(* Blocking frame read from a file descriptor (worker side of the
   request pipe). Raises [End_of_file] on a closed or mid-frame EOF. *)
let read_fd fd =
  let really_read buf ofs len =
    let ofs = ref ofs and len = ref len in
    while !len > 0 do
      let n = Unix.read fd buf !ofs !len in
      if n = 0 then raise End_of_file;
      ofs := !ofs + n;
      len := !len - n
    done
  in
  let hdr = Bytes.create 4 in
  really_read hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if n < 0 || n > max_payload then raise End_of_file;
  let payload = Bytes.create n in
  really_read payload 0 n;
  Marshal.from_bytes payload 0

(* --- incremental decoding (parent side of the response pipes) ------ *)

(* Accumulates raw bytes as they arrive and yields every complete
   frame; a partial frame stays buffered until its remainder shows up
   (or is discarded with the decoder when the worker dies). *)
type decoder = {
  mutable buf : Bytes.t;
  mutable len : int;
}

let decoder () = { buf = Bytes.create 4096; len = 0 }

let feed d chunk chunk_len =
  if d.len + chunk_len > Bytes.length d.buf then begin
    let cap = max (2 * Bytes.length d.buf) (d.len + chunk_len) in
    let buf = Bytes.create cap in
    Bytes.blit d.buf 0 buf 0 d.len;
    d.buf <- buf
  end;
  Bytes.blit chunk 0 d.buf d.len chunk_len;
  d.len <- d.len + chunk_len

let next d =
  if d.len < 4 then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    if n < 0 || n > max_payload then failwith "Frame.next: corrupt length";
    if d.len < 4 + n then None
    else begin
      let v = Marshal.from_bytes (Bytes.sub d.buf 4 n) 0 in
      let rest = d.len - 4 - n in
      Bytes.blit d.buf (4 + n) d.buf 0 rest;
      d.len <- rest;
      Some v
    end
  end

(* --- channel variants (journal file) ------------------------------- *)

let write_channel oc v =
  let frame = encode v in
  output_bytes oc frame

(* [None] on clean EOF or a truncated/corrupt tail — the caller keeps
   whatever parsed before the damage. *)
let read_channel ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None
  | hdr ->
    let n = Int32.to_int (String.get_int32_be hdr 0) in
    if n < 0 || n > max_payload then None
    else
      (match really_input_string ic n with
       | exception End_of_file -> None
       | payload ->
         (try Some (Marshal.from_string payload 0)
          with Failure _ -> None))
