(** Fork-based parallel sweep runner.

    A sweep is an ordered list of independent work units, each a
    closure producing a marshalable value (no closures or custom
    blocks inside the result). [run ~jobs:n] executes them on [n]
    forked worker processes — each worker inherits the unit closures
    at fork time and receives unit indexes over a request pipe,
    streaming results back as length-prefixed marshalled frames — and
    reassembles the results in canonical input order, so the report is
    identical to a serial run of the same units.

    Robustness: a worker that dies (crash, OOM kill) or exceeds the
    per-unit [timeout] is reaped, its unit is re-queued up to
    [retries] extra attempts on a fresh worker, and the sweep carries
    on; a unit that *returns* an exception is recorded as [Failed]
    without retry (it ran to completion — the failure is
    deterministic). With a [journal], completed units are recorded as
    they finish, and [resume = true] skips everything a previous
    (possibly killed) sweep already completed.

    [jobs <= 1] runs the units in-process, in order, with no forking —
    the serial reference an equality test can compare a parallel run
    against byte for byte. *)

type 'a unit_spec = {
  key : string;        (** canonical id, unique within the sweep *)
  run : unit -> 'a;
}

type 'a outcome =
  | Done of 'a
  | Failed of string   (** exception text, or the kill/timeout reason *)

type 'a shard = {
  s_key : string;
  s_outcome : 'a outcome;
  s_wall : float;      (** seconds spent inside the (last) attempt *)
  s_attempts : int;    (** 0 when restored from the journal *)
  s_cached : bool;     (** true = restored by [resume], not re-run *)
}

type 'a report = {
  shards : 'a shard list;  (** canonical input order *)
  r_jobs : int;
  r_wall : float;          (** whole-sweep wall-clock seconds *)
  r_resumed : int;         (** shards restored from the journal *)
}

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?journal:string ->
  ?resume:bool ->
  ?progress:(string -> unit) ->
  'a unit_spec list -> 'a report
(** [run specs] executes the sweep and returns its report.

    [jobs] — worker processes (default 1 = in-process serial).
    [timeout] — per-unit seconds before the worker is killed and the
    unit re-queued (default: none).
    [retries] — extra attempts after a kill or timeout (default 1).
    [journal] — journal path; enables [resume].
    [resume] — reuse a matching journal's completed entries
    (default false).
    [progress] — called with each unit key as it completes.

    Raises [Invalid_argument] on duplicate unit keys. *)
