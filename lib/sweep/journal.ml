(* See journal.mli. *)

let magic = "ppt-sweep-journal"
(* Bump whenever the marshalled payload type changes, so a stale
   journal from an older build is rejected instead of unmarshalled
   into the wrong type. v2: shard payloads carry a Gc snapshot. *)
let version = 2

type t = { oc : out_channel }

type header = { h_magic : string; h_version : int; h_keys : string list }

(* Read every recoverable entry; stops silently at the first
   truncated or corrupt frame (the tail a kill may have left). *)
let load_entries ic =
  let rec go acc =
    match Frame.read_channel ic with
    | None -> List.rev acc
    | Some entry -> go (entry :: acc)
  in
  go []

let try_resume path keys =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        match (Frame.read_channel ic : header option) with
        | Some h
          when h.h_magic = magic && h.h_version = version
               && h.h_keys = keys ->
          Some (load_entries ic)
        | _ -> None)

let open_ ~path ~keys ~resume =
  let entries =
    if resume then try_resume path keys else None
  in
  match entries with
  | Some entries ->
    let oc =
      open_out_gen [ Open_append; Open_binary ] 0o644 path
    in
    ({ oc }, entries)
  | None ->
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
        0o644 path
    in
    Frame.write_channel oc { h_magic = magic; h_version = version;
                             h_keys = keys };
    flush oc;
    ({ oc }, [])

let append t ~key v ~wall =
  Frame.write_channel t.oc (key, v, wall);
  flush t.oc

let close t = close_out_noerr t.oc
