(** The shard journal: a crash-tolerant append-only record of
    completed sweep units, enabling [--resume].

    The file starts with a header naming every unit key of the sweep
    (in canonical order); each subsequent entry records one completed
    unit as [(key, payload, wall_seconds)]. Entries are length-prefixed
    marshalled frames, so a journal cut mid-write by a killed sweep
    loses at most its unflushed tail — every complete entry before the
    damage is recovered. *)

type t

val open_ :
  path:string -> keys:string list -> resume:bool ->
  t * (string * 'a * float) list
(** Open the journal at [path] for a sweep over [keys].

    With [resume = true] and an existing journal whose header matches
    [keys] exactly, returns every recoverable completed entry (later
    duplicates of a key win) and appends further completions after
    them. In every other case the journal is truncated and started
    fresh, returning no entries.

    The payload type ['a] must match what was appended — the journal
    is only ever read back by the sweep that wrote it (same binary,
    same unit list). *)

val append : t -> key:string -> 'a -> wall:float -> unit
(** Record one completed unit and flush, so the entry survives a kill
    of the sweep process. *)

val close : t -> unit
