(* The low-priority control loop (LCP), §3 of the paper.

   LCP rides on an HCP (DCTCP) sender and opportunistically transmits
   segments from the tail of the send queue at low in-network priority,
   to fill the spare bandwidth the primary loop leaves behind.

   Intermittent loop initialization (§3.1):
   - case 1 (startup): a loop opens when the flow starts — delayed to
     the 2nd RTT for flows identified as large — with initial window
     I = BDP - IW(DCTCP);
   - case 2 (queue build-up): after the startup phase, a loop opens
     whenever DCTCP's alpha reaches a minimum over the past RTTs, with
     I = (1/2 - alpha_min) * W_max                    (Eq. 2).

   Exponential window decreasing (§3.2):
   - the initial window is paced out at I/RTT;
   - the receiver returns one low-priority ACK per two opportunistic
     packets, so the ACK-clocked sending rate halves every RTT;
   - an ECN-marked (ECE) low-priority ACK is ignored: no new
     opportunistic packet is triggered;
   - the loop terminates after 2 RTTs without low-priority ACKs, and
     the sender resumes watching for spare bandwidth. *)

open Ppt_engine
open Ppt_transport

let log_src = Logs.Src.create "ppt.lcp" ~doc:"PPT low-priority control loop"

module Log = (val Logs.src_log log_src : Logs.LOG)

type params = {
  ewd : bool;
  (* false = Fig. 16 ablation: blast the initial window at line rate
     and keep the ACK-clocked rate constant instead of halving *)
  delay_large_to_2nd_rtt : bool;
  idle_rtts : int;            (* loop termination threshold (2) *)
}

let default_params =
  { ewd = true; delay_large_to_2nd_rtt = true; idle_rtts = 2 }

type t = {
  ctx : Context.t;
  snd : Reliable.t;
  view : Dctcp.view;
  p : params;
  identified_large : bool;
  mutable opened : bool;
  mutable tail_ptr : int;          (* next tail pick strictly below *)
  mutable last_avail : int;
  mutable alpha_min : float;
  mutable last_activity : Units.time;
  mutable pace_timer : Sim.timer option;
  mutable watchdog : Sim.timer option;
  (* reusable timer slots: the pacer's window state lives here and the
     fire closures are allocated once per flow, so every reschedule of
     the (per-segment) EWD pacer is allocation-free *)
  mutable pace_window : int;
  mutable pace_remaining : int;
  mutable pace_fire : unit -> unit;
  mutable watchdog_fire : unit -> unit;
  mutable loops_opened : int;      (* diagnostics *)
  mutable shut : bool;
}

let rtt t = t.ctx.Context.base_rtt
let now t = Sim.now t.ctx.Context.sim
let is_open t = t.opened
let loops_opened t = t.loops_opened

let cancel_pace t =
  (match t.pace_timer with Some tm -> Sim.cancel tm | None -> ());
  t.pace_timer <- None

let cancel_watchdog t =
  (match t.watchdog with Some tm -> Sim.cancel tm | None -> ());
  t.watchdog <- None

let shutdown t =
  t.shut <- true;
  cancel_pace t;
  cancel_watchdog t

let close_loop t =
  if t.opened then begin
    Log.debug (fun m ->
        m "flow %d: loop closed at %a (alpha=%.3f)"
          (Reliable.flow t.snd).Flow.id Units.pp_time (now t)
          (t.view.Dctcp.alpha ()));
    t.opened <- false;
    if !Ppt_obs.Trace.enabled then
      Ppt_obs.Trace.emit (now t)
        (Ppt_obs.Event.Loop_switch
           { flow = (Reliable.flow t.snd).Flow.id; active = false;
             window = 0 });
    cancel_pace t;
    cancel_watchdog t;
    (* Re-arm the case-2 detector relative to the present congestion
       level: a loop reopens once alpha drops below where it stands
       now, i.e. when spare bandwidth re-emerges. *)
    t.alpha_min <- t.view.Dctcp.alpha ()
  end

(* Pick and transmit one opportunistic segment from the tail of the
   send buffer. Returns the payload sent (0 when the tail is
   exhausted or the loops have crossed). *)
let send_one t =
  match Reliable.lcp_pick_tail t.snd ~below:t.tail_ptr with
  | None -> 0
  | Some seq ->
    t.tail_ptr <- seq;
    Reliable.send_lcp_segment t.snd seq;
    Flow.seg_payload (Reliable.flow t.snd) seq

let watchdog_tick t =
  t.watchdog <- None;
  if t.opened && not t.shut then begin
    let idle_limit = t.p.idle_rtts * rtt t in
    if now t - t.last_activity > idle_limit then close_loop t
    else
      t.watchdog <-
        Some (Sim.schedule t.ctx.Context.sim ~after:(rtt t)
                t.watchdog_fire)
  end

let arm_watchdog t =
  cancel_watchdog t;
  t.watchdog <-
    Some (Sim.schedule t.ctx.Context.sim ~after:(rtt t) t.watchdog_fire)

(* Inter-segment gap that spreads [window] bytes evenly over one RTT:
   rtt * sent / window, rounded to nearest. Truncating instead (the
   old behaviour) paced every segment a fraction of a tick early, and
   the error compounded across a window — enough to shift timelines. *)
let pace_interval ~rtt ~sent ~window =
  let exact =
    float_of_int rtt *. float_of_int sent /. float_of_int window
  in
  max 1 (int_of_float (Float.round exact))

(* Pace the remaining bytes of the initial window at I/RTT (EWD);
   without EWD the whole window goes out back-to-back, at NIC line
   rate. Window state lives in [t] (see the reusable-slot comment). *)
let rec pace_tick t =
  t.pace_timer <- None;
  if t.opened && not t.shut && t.pace_remaining > 0 then begin
    let sent = send_one t in
    if sent > 0 then begin
      t.last_activity <- now t;
      t.pace_remaining <- t.pace_remaining - sent;
      if t.pace_remaining > 0 then begin
        if t.p.ewd then begin
          let interval =
            pace_interval ~rtt:(rtt t) ~sent ~window:t.pace_window
          in
          t.pace_timer <-
            Some (Sim.schedule t.ctx.Context.sim ~after:interval
                    t.pace_fire)
        end else
          pace_tick t
      end
    end
    (* tail exhausted: stay open, the watchdog will close the loop *)
  end

let create ctx snd view ?(params = default_params) ~identified_large () =
  let t =
    { ctx; snd; view; p = params; identified_large;
      opened = false;
      tail_ptr = (Reliable.flow snd).Flow.nseg;
      last_avail = -1;
      alpha_min = infinity;
      last_activity = 0;
      pace_timer = None; watchdog = None;
      pace_window = 0; pace_remaining = 0;
      pace_fire = ignore; watchdog_fire = ignore;
      loops_opened = 0; shut = false }
  in
  t.pace_fire <- (fun () -> pace_tick t);
  t.watchdog_fire <- (fun () -> watchdog_tick t);
  t

let open_loop t ~initial_window =
  if (not t.opened) && not t.shut then begin
    let mss = Reliable.mss t.snd in
    if initial_window >= mss then begin
      Log.debug (fun m ->
          m "flow %d: loop %d opened at %a, I=%dB"
            (Reliable.flow t.snd).Flow.id (t.loops_opened + 1)
            Units.pp_time (now t) initial_window);
      t.opened <- true;
      if !Ppt_obs.Trace.enabled then
        Ppt_obs.Trace.emit (now t)
          (Ppt_obs.Event.Loop_switch
             { flow = (Reliable.flow t.snd).Flow.id; active = true;
               window = initial_window });
      t.loops_opened <- t.loops_opened + 1;
      t.last_activity <- now t;
      arm_watchdog t;
      t.pace_window <- initial_window;
      t.pace_remaining <- initial_window;
      pace_tick t
    end
  end

(* Case 1: spare bandwidth in the first RTTs (slow start). *)
let case1_window t =
  max 0 (t.ctx.Context.bdp - int_of_float (Reliable.cwnd t.snd))

(* Case 2 (Eq. 2): I = (1/2 - alpha_min) * W_max. *)
let case2_window t ~alpha =
  let wmax = t.view.Dctcp.wmax () in
  int_of_float ((0.5 -. alpha) *. wmax)

let on_rtt_boundary t =
  if not t.shut then begin
    if (not t.opened) && t.view.Dctcp.in_ca () then begin
      let alpha = t.view.Dctcp.alpha () in
      if alpha <= t.alpha_min then begin
        t.alpha_min <- alpha;
        if alpha < 0.5 then
          open_loop t ~initial_window:(case2_window t ~alpha)
      end
    end
  end

let on_lcp_ack t (ai : Reliable.ack_info) =
  if not t.shut then begin
    t.last_activity <- now t;
    if t.opened && not ai.Reliable.ai_ece then begin
      (* EWD: receiver sends one ACK per two opportunistic packets, so
         one fresh packet per ACK halves the rate every RTT. Without
         EWD the rate is kept constant by sending two. *)
      let n = if t.p.ewd then 1 else 2 in
      for _ = 1 to n do ignore (send_one t) done
    end
    (* An ECE-marked low-priority ACK is ignored (§3.2): it still
       counts as loop activity but triggers no new packet. *)
  end

(* Send-buffer refill: newly buffered data sits above the current tail
   pointer, so the tail scan restarts from the new horizon. *)
let on_more_data t =
  let hi = Reliable.avail_hi t.snd in
  if hi > t.last_avail then begin
    t.last_avail <- hi;
    if t.tail_ptr <= hi then t.tail_ptr <- hi + 1
  end

let start t =
  let sim = t.ctx.Context.sim in
  t.last_avail <- Reliable.avail_hi t.snd;
  (* install hooks on the sender and the DCTCP view *)
  t.snd.Reliable.hook_on_lcp_ack <- (fun _ ai -> on_lcp_ack t ai);
  t.snd.Reliable.hook_more_data <- (fun _ -> on_more_data t);
  t.view.Dctcp.rtt_hook (fun () -> on_rtt_boundary t);
  (* case 1: open at flow start, or at the 2nd RTT for identified-large
     flows so that small flows own the first RTT (§3.1) *)
  let delay =
    if t.identified_large && t.p.delay_large_to_2nd_rtt then rtt t else 0
  in
  ignore (Sim.schedule sim ~after:delay (fun () ->
      if not t.shut then open_loop t ~initial_window:(case1_window t)))
