(** The low-priority control loop (LCP): PPT's dual-loop rate control
    (§3 of the paper).

    Attach to a {!Ppt_transport.Reliable.t} sender running DCTCP
    ({!Ppt_transport.Dctcp.attach}); the LCP then opportunistically
    transmits tail segments at low priority to fill the spare
    bandwidth, with intermittent loop initialization (§3.1) and
    exponential window decreasing (§3.2). *)

open Ppt_transport

type params = {
  ewd : bool;
  (** [false] = Fig. 16 ablation: line-rate opportunistic bursts with
      no per-RTT rate halving. *)
  delay_large_to_2nd_rtt : bool;
  (** Open the case-1 loop of identified-large flows one RTT late so
      small flows own the first RTT (§3.1). *)
  idle_rtts : int;
  (** Terminate a loop after this many RTTs without low-priority ACKs
      (2 in the paper). *)
}

val default_params : params

type t

val create :
  Context.t -> Reliable.t -> Dctcp.view -> ?params:params ->
  identified_large:bool -> unit -> t

val start : t -> unit
(** Install the sender/DCTCP hooks and schedule the case-1 loop. *)

val shutdown : t -> unit
(** Cancel all timers; the loop never reopens. *)

val is_open : t -> bool
val loops_opened : t -> int

val case1_window : t -> int
(** Case-1 initial window: BDP - current congestion window. *)

val case2_window : t -> alpha:float -> int
(** Case-2 initial window (Eq. 2): [(1/2 - alpha) * W_max]. *)

val on_rtt_boundary : t -> unit
(** Exposed for tests: the per-RTT case-2 trigger. *)

val pace_interval : rtt:int -> sent:int -> window:int -> int
(** EWD pacer gap: [rtt * sent / window] rounded to nearest (never
    below 1 tick), so a window paces out over one whole RTT instead of
    systematically early under truncation. *)
