(** Structured trace events.

    One flat variant covers the whole stack: packet lifecycle at the
    switch queues (netsim), transport state transitions (reliable
    sender, LCP), flow lifecycle (harness) and sampled probes. Fields
    are plain integers so the event layer depends on nothing above it;
    emitters translate their own types (packet kinds and loops become
    one-character tags).

    Times are integer nanoseconds ([Ppt_engine.Units.time]) but typed
    [int] here to keep the library at the bottom of the dependency
    graph. *)

type t =
  | Enqueue of {
      node : int; port : int; prio : int;
      flow : int; seq : int;
      kind : char;  (** 'D' data, 'A' ack, 'G' grant, 'P' pull,
                        'N' nack, 'C' ctrl *)
      size : int;   (** wire bytes *)
      occ : int;    (** port occupancy after the enqueue *)
    }
  | Dequeue of {
      node : int; port : int; prio : int;
      flow : int; seq : int; kind : char; size : int;
      occ : int;    (** port occupancy after the dequeue *)
    }
  | Ecn_mark of {
      node : int; port : int; prio : int;
      flow : int; seq : int;
      occ : int;        (** occupancy the marked packet saw *)
      threshold : int;  (** configured marking threshold *)
    }
  | Drop of {
      node : int; port : int; prio : int;
      flow : int; seq : int; kind : char; size : int;
      occ : int;    (** port occupancy at the drop (unchanged by it) *)
    }
  | Trim of {
      node : int; port : int; prio : int;
      flow : int; seq : int;
      cut : int;    (** payload bytes cut from the packet *)
      occ : int;    (** port occupancy after the header enqueue *)
    }
  | Cwnd_update of { flow : int; cwnd : int (** bytes, rounded *) }
  | Loop_switch of {
      flow : int;
      active : bool;  (** LCP loop opened ([true]) or closed *)
      window : int;   (** initial window at open, 0 at close *)
    }
  | Rto_fire of { flow : int; backoff : int }
  | Retransmit of { flow : int; seq : int; loop : char (** 'H'/'L' *) }
  | Flow_start of { flow : int; size : int }
  | Flow_done of { flow : int; size : int; fct : int }
  | Probe_queue of {
      node : int; port : int;
      occ : int;     (** total port occupancy, bytes *)
      lp_occ : int;  (** low-priority band (P4-P7) occupancy *)
    }
  | Probe_link of {
      node : int; port : int;
      tx_bytes : int;   (** cumulative wire bytes transmitted *)
      util_ppm : int;   (** utilization since last probe, ppm *)
    }
  | Probe_dt of {
      node : int; port : int;
      hp : int;  (** current dynamic threshold of the high band *)
      lp : int;  (** current dynamic threshold of the low band *)
    }
  | Link_down of { node : int; port : int }
      (** Fault injection took the egress port down. *)
  | Link_up of { node : int; port : int }
      (** The port came back up (also closes a degrade window). *)
  | Link_degrade of {
      node : int; port : int;
      rate_ppm : int;     (** effective rate as ppm of nominal *)
      extra_delay : int;  (** added one-way latency, ns *)
    }
  | Fault_drop of {
      node : int; port : int; flow : int; seq : int;
      kind : char; size : int;
      reason : char;  (** 'L' random loss, 'C' corruption (BER),
                          'D' discarded at a downed egress *)
    }

val tag : t -> string
(** Stable lowercase tag, e.g. ["enqueue"], ["ecn_mark"]. *)

val to_json_line : ts:int -> t -> string
(** One canonical JSON object (no trailing newline):
    [{"t":<ts>,"ev":"<tag>",...}]. Field order is fixed, so equal
    events serialize to equal strings and traces can be diffed
    textually. *)

val of_json_line : string -> (int * t) option
(** Parse a line produced by {!to_json_line}; [None] on anything
    malformed. *)

(** {2 Binary encoding}

    Compact hot-path counterpart of the JSONL encoding: one tag byte,
    then the timestamp and every field as zigzag varints (in
    {!to_json_line}'s field order), chars/bools as single bytes. A
    stream starts with {!bin_magic}. Decoding and re-encoding as JSONL
    reproduces the textual trace byte-for-byte ([ppt_trace decode]). *)

val bin_magic : string
(** 5-byte stream header: ["PPTB"] plus a version byte. *)

val add_binary : Buffer.t -> ts:int -> t -> unit
(** Append one event to a buffer (no header). *)

val of_binary : string -> int ref -> (int * t) option
(** [of_binary s pos] decodes the event at [!pos] (advancing [pos]);
    [None] once [s] is exhausted. The caller strips {!bin_magic}
    first. @raise Failure on a corrupt or truncated stream. *)

val pp : Format.formatter -> t -> unit
