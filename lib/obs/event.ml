(* Structured trace events and their canonical JSONL encoding.

   The encoding is deliberately boring: one flat JSON object per line,
   fixed key order, integer values (utilization is parts-per-million so
   no floats appear). Equal events therefore serialize to equal bytes,
   which is what lets golden-trace tests and `ppt_trace diff` compare
   traces textually. The parser only has to read back what
   [to_json_line] writes; it is not a general JSON parser. *)

type t =
  | Enqueue of {
      node : int; port : int; prio : int;
      flow : int; seq : int; kind : char; size : int; occ : int;
    }
  | Dequeue of {
      node : int; port : int; prio : int;
      flow : int; seq : int; kind : char; size : int; occ : int;
    }
  | Ecn_mark of {
      node : int; port : int; prio : int;
      flow : int; seq : int; occ : int; threshold : int;
    }
  | Drop of {
      node : int; port : int; prio : int;
      flow : int; seq : int; kind : char; size : int; occ : int;
    }
  | Trim of {
      node : int; port : int; prio : int;
      flow : int; seq : int; cut : int; occ : int;
    }
  | Cwnd_update of { flow : int; cwnd : int }
  | Loop_switch of { flow : int; active : bool; window : int }
  | Rto_fire of { flow : int; backoff : int }
  | Retransmit of { flow : int; seq : int; loop : char }
  | Flow_start of { flow : int; size : int }
  | Flow_done of { flow : int; size : int; fct : int }
  | Probe_queue of { node : int; port : int; occ : int; lp_occ : int }
  | Probe_link of {
      node : int; port : int; tx_bytes : int; util_ppm : int;
    }
  | Probe_dt of { node : int; port : int; hp : int; lp : int }
  | Link_down of { node : int; port : int }
  | Link_up of { node : int; port : int }
  | Link_degrade of {
      node : int; port : int; rate_ppm : int; extra_delay : int;
    }
  | Fault_drop of {
      node : int; port : int; flow : int; seq : int;
      kind : char; size : int; reason : char;
    }

let tag = function
  | Enqueue _ -> "enqueue"
  | Dequeue _ -> "dequeue"
  | Ecn_mark _ -> "ecn_mark"
  | Drop _ -> "drop"
  | Trim _ -> "trim"
  | Cwnd_update _ -> "cwnd_update"
  | Loop_switch _ -> "loop_switch"
  | Rto_fire _ -> "rto_fire"
  | Retransmit _ -> "retransmit"
  | Flow_start _ -> "flow_start"
  | Flow_done _ -> "flow_done"
  | Probe_queue _ -> "probe_queue"
  | Probe_link _ -> "probe_link"
  | Probe_dt _ -> "probe_dt"
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Link_degrade _ -> "link_degrade"
  | Fault_drop _ -> "fault_drop"

(* --- writer -------------------------------------------------------- *)

let buf_int b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":";
  Buffer.add_string b (string_of_int v)

let buf_char b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":\"";
  Buffer.add_char b v;
  Buffer.add_char b '"'

let buf_bool b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b (if v then "\":true" else "\":false")

let to_json_line ~ts ev =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (string_of_int ts);
  Buffer.add_string b ",\"ev\":\"";
  Buffer.add_string b (tag ev);
  Buffer.add_char b '"';
  (match ev with
   | Enqueue { node; port; prio; flow; seq; kind; size; occ }
   | Dequeue { node; port; prio; flow; seq; kind; size; occ }
   | Drop { node; port; prio; flow; seq; kind; size; occ } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "prio" prio; buf_int b "flow" flow;
     buf_int b "seq" seq; buf_char b "kind" kind;
     buf_int b "size" size; buf_int b "occ" occ
   | Ecn_mark { node; port; prio; flow; seq; occ; threshold } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "prio" prio; buf_int b "flow" flow;
     buf_int b "seq" seq; buf_int b "occ" occ;
     buf_int b "threshold" threshold
   | Trim { node; port; prio; flow; seq; cut; occ } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "prio" prio; buf_int b "flow" flow;
     buf_int b "seq" seq; buf_int b "cut" cut; buf_int b "occ" occ
   | Cwnd_update { flow; cwnd } ->
     buf_int b "flow" flow; buf_int b "cwnd" cwnd
   | Loop_switch { flow; active; window } ->
     buf_int b "flow" flow; buf_bool b "active" active;
     buf_int b "window" window
   | Rto_fire { flow; backoff } ->
     buf_int b "flow" flow; buf_int b "backoff" backoff
   | Retransmit { flow; seq; loop } ->
     buf_int b "flow" flow; buf_int b "seq" seq; buf_char b "loop" loop
   | Flow_start { flow; size } ->
     buf_int b "flow" flow; buf_int b "size" size
   | Flow_done { flow; size; fct } ->
     buf_int b "flow" flow; buf_int b "size" size; buf_int b "fct" fct
   | Probe_queue { node; port; occ; lp_occ } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "occ" occ; buf_int b "lp_occ" lp_occ
   | Probe_link { node; port; tx_bytes; util_ppm } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "tx_bytes" tx_bytes; buf_int b "util_ppm" util_ppm
   | Probe_dt { node; port; hp; lp } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "hp" hp; buf_int b "lp" lp
   | Link_down { node; port } | Link_up { node; port } ->
     buf_int b "node" node; buf_int b "port" port
   | Link_degrade { node; port; rate_ppm; extra_delay } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "rate_ppm" rate_ppm; buf_int b "extra_delay" extra_delay
   | Fault_drop { node; port; flow; seq; kind; size; reason } ->
     buf_int b "node" node; buf_int b "port" port;
     buf_int b "flow" flow; buf_int b "seq" seq;
     buf_char b "kind" kind; buf_int b "size" size;
     buf_char b "reason" reason);
  Buffer.add_char b '}';
  Buffer.contents b

(* --- binary encoding ----------------------------------------------

   Compact counterpart of the JSONL encoding for hot-path tracing: one
   tag byte, then the timestamp and every field as zigzag varints (in
   exactly [to_json_line]'s field order), chars and bools as single
   bytes. A stream starts with the 5-byte header "PPTB\001" (magic +
   version). Decoding reproduces the JSONL encoding byte-for-byte
   (`ppt_trace decode`), so the binary format inherits the golden-trace
   guarantees without paying string formatting per event. *)

let bin_magic = "PPTB\001"

let bin_tag = function
  | Enqueue _ -> 0 | Dequeue _ -> 1 | Ecn_mark _ -> 2 | Drop _ -> 3
  | Trim _ -> 4 | Cwnd_update _ -> 5 | Loop_switch _ -> 6
  | Rto_fire _ -> 7 | Retransmit _ -> 8 | Flow_start _ -> 9
  | Flow_done _ -> 10 | Probe_queue _ -> 11 | Probe_link _ -> 12
  | Probe_dt _ -> 13 | Link_down _ -> 14 | Link_up _ -> 15
  | Link_degrade _ -> 16 | Fault_drop _ -> 17

(* Encoding goes through a module-global scratch buffer written with
   unsafe byte stores, then lands in the caller's [Buffer] as a single
   [add_subbytes] — one bounds check per event instead of one per byte.
   An event is at most 1 tag + 9 varints of <= 10 bytes each, far under
   the scratch size, which is what makes the unsafe stores safe. *)
let scratch = Bytes.create 256
let spos = ref 0

let put_char c =
  Bytes.unsafe_set scratch !spos c;
  incr spos

(* Zigzag maps the (63-bit) int onto an unsigned code so small
   magnitudes of either sign stay short; the code is then emitted in
   7-bit groups, low first, high bit = continuation. [lsr] treats the
   code as unsigned throughout, so the full int range round-trips. *)
let put_varint n =
  let z = (n lsl 1) lxor (n asr 62) in
  let z = ref z in
  while !z land lnot 0x7f <> 0 do
    put_char (Char.unsafe_chr ((!z land 0x7f) lor 0x80));
    z := !z lsr 7
  done;
  put_char (Char.unsafe_chr !z)

let add_binary b ~ts ev =
  spos := 0;
  put_char (Char.unsafe_chr (bin_tag ev));
  put_varint ts;
  (match ev with
   | Enqueue { node; port; prio; flow; seq; kind; size; occ }
   | Dequeue { node; port; prio; flow; seq; kind; size; occ }
   | Drop { node; port; prio; flow; seq; kind; size; occ } ->
     put_varint node; put_varint port; put_varint prio;
     put_varint flow; put_varint seq; put_char kind;
     put_varint size; put_varint occ
   | Ecn_mark { node; port; prio; flow; seq; occ; threshold } ->
     put_varint node; put_varint port; put_varint prio;
     put_varint flow; put_varint seq; put_varint occ;
     put_varint threshold
   | Trim { node; port; prio; flow; seq; cut; occ } ->
     put_varint node; put_varint port; put_varint prio;
     put_varint flow; put_varint seq; put_varint cut;
     put_varint occ
   | Cwnd_update { flow; cwnd } -> put_varint flow; put_varint cwnd
   | Loop_switch { flow; active; window } ->
     put_varint flow;
     put_char (if active then '\001' else '\000');
     put_varint window
   | Rto_fire { flow; backoff } -> put_varint flow; put_varint backoff
   | Retransmit { flow; seq; loop } ->
     put_varint flow; put_varint seq; put_char loop
   | Flow_start { flow; size } -> put_varint flow; put_varint size
   | Flow_done { flow; size; fct } ->
     put_varint flow; put_varint size; put_varint fct
   | Probe_queue { node; port; occ; lp_occ } ->
     put_varint node; put_varint port; put_varint occ;
     put_varint lp_occ
   | Probe_link { node; port; tx_bytes; util_ppm } ->
     put_varint node; put_varint port; put_varint tx_bytes;
     put_varint util_ppm
   | Probe_dt { node; port; hp; lp } ->
     put_varint node; put_varint port; put_varint hp;
     put_varint lp
   | Link_down { node; port } | Link_up { node; port } ->
     put_varint node; put_varint port
   | Link_degrade { node; port; rate_ppm; extra_delay } ->
     put_varint node; put_varint port; put_varint rate_ppm;
     put_varint extra_delay
   | Fault_drop { node; port; flow; seq; kind; size; reason } ->
     put_varint node; put_varint port; put_varint flow;
     put_varint seq; put_char kind; put_varint size;
     put_char reason);
  Buffer.add_subbytes b scratch 0 !spos

exception Truncated

let read_varint s pos =
  let z = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s then raise Truncated;
    let byte = Char.code s.[!pos] in
    incr pos;
    z := !z lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte < 0x80 then continue := false
    else if !shift >= 63 then raise Truncated
  done;
  (!z lsr 1) lxor (- (!z land 1))

let read_char s pos =
  if !pos >= String.length s then raise Truncated;
  let c = s.[!pos] in
  incr pos;
  c

(* Decode the event starting at [!pos] (advancing it); [None] once the
   input is exhausted. @raise Failure on a corrupt or truncated
   stream. *)
let of_binary s pos =
  if !pos >= String.length s then None
  else
    try
      let tag = Char.code (read_char s pos) in
      let ts = read_varint s pos in
      let i () = read_varint s pos in
      let queue_fields mk =
        let node = i () in let port = i () in let prio = i () in
        let flow = i () in let seq = i () in
        let kind = read_char s pos in
        let size = i () in let occ = i () in
        mk ~node ~port ~prio ~flow ~seq ~kind ~size ~occ
      in
      let ev =
        match tag with
        | 0 ->
          queue_fields
            (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
               Enqueue { node; port; prio; flow; seq; kind; size; occ })
        | 1 ->
          queue_fields
            (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
               Dequeue { node; port; prio; flow; seq; kind; size; occ })
        | 2 ->
          let node = i () in let port = i () in let prio = i () in
          let flow = i () in let seq = i () in let occ = i () in
          let threshold = i () in
          Ecn_mark { node; port; prio; flow; seq; occ; threshold }
        | 3 ->
          queue_fields
            (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
               Drop { node; port; prio; flow; seq; kind; size; occ })
        | 4 ->
          let node = i () in let port = i () in let prio = i () in
          let flow = i () in let seq = i () in let cut = i () in
          let occ = i () in
          Trim { node; port; prio; flow; seq; cut; occ }
        | 5 ->
          let flow = i () in let cwnd = i () in
          Cwnd_update { flow; cwnd }
        | 6 ->
          let flow = i () in
          let active = read_char s pos <> '\000' in
          let window = i () in
          Loop_switch { flow; active; window }
        | 7 ->
          let flow = i () in let backoff = i () in
          Rto_fire { flow; backoff }
        | 8 ->
          let flow = i () in let seq = i () in
          let loop = read_char s pos in
          Retransmit { flow; seq; loop }
        | 9 ->
          let flow = i () in let size = i () in
          Flow_start { flow; size }
        | 10 ->
          let flow = i () in let size = i () in let fct = i () in
          Flow_done { flow; size; fct }
        | 11 ->
          let node = i () in let port = i () in let occ = i () in
          let lp_occ = i () in
          Probe_queue { node; port; occ; lp_occ }
        | 12 ->
          let node = i () in let port = i () in
          let tx_bytes = i () in let util_ppm = i () in
          Probe_link { node; port; tx_bytes; util_ppm }
        | 13 ->
          let node = i () in let port = i () in let hp = i () in
          let lp = i () in
          Probe_dt { node; port; hp; lp }
        | 14 ->
          let node = i () in let port = i () in
          Link_down { node; port }
        | 15 ->
          let node = i () in let port = i () in
          Link_up { node; port }
        | 16 ->
          let node = i () in let port = i () in
          let rate_ppm = i () in let extra_delay = i () in
          Link_degrade { node; port; rate_ppm; extra_delay }
        | 17 ->
          let node = i () in let port = i () in let flow = i () in
          let seq = i () in let kind = read_char s pos in
          let size = i () in let reason = read_char s pos in
          Fault_drop { node; port; flow; seq; kind; size; reason }
        | n -> failwith (Printf.sprintf "Event.of_binary: bad tag %d" n)
      in
      Some (ts, ev)
    with Truncated -> failwith "Event.of_binary: truncated stream"

(* --- parser -------------------------------------------------------- *)

(* Raw value of ["key":<value>] in [line]: the substring after the
   colon up to the next ',' or '}' (string values keep their quotes).
   Only matches whole keys: the candidate must be preceded by '"'. *)
let raw_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let rec stop j in_str =
      if j >= llen then j
      else
        match line.[j] with
        | '"' -> stop (j + 1) (not in_str)
        | (',' | '}') when not in_str -> j
        | _ -> stop (j + 1) in_str
    in
    Some (String.sub line start (stop start false - start))

let int_field line key =
  match raw_field line key with
  | None -> None
  | Some s -> int_of_string_opt s

let char_field line key =
  match raw_field line key with
  | Some s when String.length s = 3 && s.[0] = '"' && s.[2] = '"' ->
    Some s.[1]
  | _ -> None

let bool_field line key =
  match raw_field line key with
  | Some "true" -> Some true
  | Some "false" -> Some false
  | _ -> None

let str_field line key =
  match raw_field line key with
  | Some s when String.length s >= 2 && s.[0] = '"' ->
    Some (String.sub s 1 (String.length s - 2))
  | _ -> None

let of_json_line line =
  let ( let* ) o f = Option.bind o f in
  let i k = int_field line k in
  let queue_fields mk =
    let* node = i "node" in let* port = i "port" in
    let* prio = i "prio" in let* flow = i "flow" in
    let* seq = i "seq" in let* kind = char_field line "kind" in
    let* size = i "size" in let* occ = i "occ" in
    Some (mk ~node ~port ~prio ~flow ~seq ~kind ~size ~occ)
  in
  let* ts = i "t" in
  let* ev_tag = str_field line "ev" in
  let* ev =
    match ev_tag with
    | "enqueue" ->
      queue_fields (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
          Enqueue { node; port; prio; flow; seq; kind; size; occ })
    | "dequeue" ->
      queue_fields (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
          Dequeue { node; port; prio; flow; seq; kind; size; occ })
    | "drop" ->
      queue_fields (fun ~node ~port ~prio ~flow ~seq ~kind ~size ~occ ->
          Drop { node; port; prio; flow; seq; kind; size; occ })
    | "ecn_mark" ->
      let* node = i "node" in let* port = i "port" in
      let* prio = i "prio" in let* flow = i "flow" in
      let* seq = i "seq" in let* occ = i "occ" in
      let* threshold = i "threshold" in
      Some (Ecn_mark { node; port; prio; flow; seq; occ; threshold })
    | "trim" ->
      let* node = i "node" in let* port = i "port" in
      let* prio = i "prio" in let* flow = i "flow" in
      let* seq = i "seq" in let* cut = i "cut" in let* occ = i "occ" in
      Some (Trim { node; port; prio; flow; seq; cut; occ })
    | "cwnd_update" ->
      let* flow = i "flow" in let* cwnd = i "cwnd" in
      Some (Cwnd_update { flow; cwnd })
    | "loop_switch" ->
      let* flow = i "flow" in
      let* active = bool_field line "active" in
      let* window = i "window" in
      Some (Loop_switch { flow; active; window })
    | "rto_fire" ->
      let* flow = i "flow" in let* backoff = i "backoff" in
      Some (Rto_fire { flow; backoff })
    | "retransmit" ->
      let* flow = i "flow" in let* seq = i "seq" in
      let* loop = char_field line "loop" in
      Some (Retransmit { flow; seq; loop })
    | "flow_start" ->
      let* flow = i "flow" in let* size = i "size" in
      Some (Flow_start { flow; size })
    | "flow_done" ->
      let* flow = i "flow" in let* size = i "size" in
      let* fct = i "fct" in
      Some (Flow_done { flow; size; fct })
    | "probe_queue" ->
      let* node = i "node" in let* port = i "port" in
      let* occ = i "occ" in let* lp_occ = i "lp_occ" in
      Some (Probe_queue { node; port; occ; lp_occ })
    | "probe_link" ->
      let* node = i "node" in let* port = i "port" in
      let* tx_bytes = i "tx_bytes" in let* util_ppm = i "util_ppm" in
      Some (Probe_link { node; port; tx_bytes; util_ppm })
    | "probe_dt" ->
      let* node = i "node" in let* port = i "port" in
      let* hp = i "hp" in let* lp = i "lp" in
      Some (Probe_dt { node; port; hp; lp })
    | "link_down" ->
      let* node = i "node" in let* port = i "port" in
      Some (Link_down { node; port })
    | "link_up" ->
      let* node = i "node" in let* port = i "port" in
      Some (Link_up { node; port })
    | "link_degrade" ->
      let* node = i "node" in let* port = i "port" in
      let* rate_ppm = i "rate_ppm" in
      let* extra_delay = i "extra_delay" in
      Some (Link_degrade { node; port; rate_ppm; extra_delay })
    | "fault_drop" ->
      let* node = i "node" in let* port = i "port" in
      let* flow = i "flow" in let* seq = i "seq" in
      let* kind = char_field line "kind" in
      let* size = i "size" in
      let* reason = char_field line "reason" in
      Some (Fault_drop { node; port; flow; seq; kind; size; reason })
    | _ -> None
  in
  Some (ts, ev)

let pp ppf ev = Fmt.string ppf (to_json_line ~ts:0 ev)
