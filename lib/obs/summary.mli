(** Aggregate view of a trace: event counts, per-port occupancy peaks,
    mark/drop/retransmit totals — what `ppt_trace summary` prints and
    what trace diffs compare at the count level. *)

type t = {
  events : int;
  by_tag : (string * int) list;        (** tag -> count, sorted *)
  max_occ : ((int * int) * int) list;
  (** (node, port) -> max occupancy seen in any queue event, sorted *)
  data_enqueues : int;                 (** kind='D' enqueues *)
  marks : int;
  drops : int;
  trims : int;
  retransmits : int;
  fault_drops : int;                   (** injected loss/corruption *)
  link_events : int;                   (** link_down/up/degrade *)
  flows_started : int;
  flows_done : int;
  t_first : int;                       (** [max_int] when empty *)
  t_last : int;
}

val create : unit -> t
(** Empty summary (fold seed). *)

val add : t -> int -> Event.t -> t

val of_list : (int * Event.t) list -> t

val mark_rate : t -> float
(** Marks per data enqueue; [nan] when no data was enqueued. *)

val pp : Format.formatter -> t -> unit
