(* The process-global trace sink.

   The [enabled] flag is the entire disabled-path cost: instrumented
   hot paths do [if !Trace.enabled then ...], so with tracing off they
   pay one load + branch and construct nothing. [install]/[clear] keep
   the flag and the sink in step; [with_sink] is the exception-safe
   way to scope a capture. *)

type sink = int -> Event.t -> unit

let null : sink = fun _ _ -> ()
let enabled = ref false
let current = ref null

let install s =
  current := s;
  enabled := true

let clear () =
  enabled := false;
  current := null

let emit ts ev = !current ts ev

let with_sink s f =
  install s;
  Fun.protect ~finally:clear f

let tee a b : sink = fun ts ev -> a ts ev; b ts ev

let jsonl_sink oc : sink =
  fun ts ev ->
    output_string oc (Event.to_json_line ~ts ev);
    output_char oc '\n'

(* Varint-encoded binary trace: events accumulate in a growable buffer
   that is dumped to [oc] whenever it passes [chunk] bytes, so the
   per-event cost is a handful of buffer writes — no string formatting,
   no per-event I/O. The caller must invoke the returned [flush] before
   closing the channel. *)
let binary_sink ?(chunk = 1 lsl 16) oc =
  output_string oc Event.bin_magic;
  let b = Buffer.create (chunk + 256) in
  let sink ts ev =
    Event.add_binary b ~ts ev;
    if Buffer.length b >= chunk then begin
      Buffer.output_buffer oc b;
      Buffer.clear b
    end
  in
  let flush () =
    Buffer.output_buffer oc b;
    Buffer.clear b
  in
  (sink, flush)

module Ring = struct
  type t = {
    buf : (int * Event.t) array;
    mutable head : int;      (* next write position *)
    mutable len : int;
    mutable total : int;
  }

  let placeholder = (0, Event.Flow_start { flow = -1; size = 0 })

  let create ?(capacity = 65536) () =
    if capacity <= 0 then invalid_arg "Trace.Ring.create";
    { buf = Array.make capacity placeholder; head = 0; len = 0;
      total = 0 }

  let sink t : sink =
    fun ts ev ->
      let cap = Array.length t.buf in
      t.buf.(t.head) <- (ts, ev);
      t.head <- (t.head + 1) mod cap;
      if t.len < cap then t.len <- t.len + 1;
      t.total <- t.total + 1

  let length t = t.len
  let total t = t.total
  let dropped t = t.total - t.len

  let iter t f =
    let cap = Array.length t.buf in
    let start = (t.head - t.len + cap) mod cap in
    for i = 0 to t.len - 1 do
      let ts, ev = t.buf.((start + i) mod cap) in
      f ts ev
    done

  let to_list t =
    let acc = ref [] in
    iter t (fun ts ev -> acc := (ts, ev) :: !acc);
    List.rev !acc

  let clear t =
    t.head <- 0;
    t.len <- 0;
    t.total <- 0
end
