(* Trace aggregation. Association lists keep the type purely
   functional and deterministic to print; the tag list is bounded by
   the number of event kinds and the occupancy list by the number of
   ports, so the O(n) updates do not matter at trace scale. *)

type t = {
  events : int;
  by_tag : (string * int) list;
  max_occ : ((int * int) * int) list;
  data_enqueues : int;
  marks : int;
  drops : int;
  trims : int;
  retransmits : int;
  fault_drops : int;
  link_events : int;
  flows_started : int;
  flows_done : int;
  t_first : int;
  t_last : int;
}

let create () =
  { events = 0; by_tag = []; max_occ = []; data_enqueues = 0;
    marks = 0; drops = 0; trims = 0; retransmits = 0;
    fault_drops = 0; link_events = 0;
    flows_started = 0; flows_done = 0; t_first = max_int; t_last = 0 }

let bump assoc key by =
  let rec go = function
    | [] -> [ (key, by) ]
    | (k, v) :: rest when k = key -> (k, max v by) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let incr assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, v) :: rest when k = key -> (k, v + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let add t ts (ev : Event.t) =
  let t =
    { t with
      events = t.events + 1;
      by_tag = incr t.by_tag (Event.tag ev);
      t_first = min t.t_first ts;
      t_last = max t.t_last ts }
  in
  match ev with
  | Enqueue { node; port; kind; occ; _ } ->
    { t with
      max_occ = bump t.max_occ (node, port) occ;
      data_enqueues =
        (if kind = 'D' then t.data_enqueues + 1 else t.data_enqueues) }
  | Dequeue { node; port; occ; _ }
  | Probe_queue { node; port; occ; _ } ->
    { t with max_occ = bump t.max_occ (node, port) occ }
  | Ecn_mark _ -> { t with marks = t.marks + 1 }
  | Drop { node; port; occ; _ } ->
    { t with drops = t.drops + 1;
             max_occ = bump t.max_occ (node, port) occ }
  | Trim _ -> { t with trims = t.trims + 1 }
  | Retransmit _ -> { t with retransmits = t.retransmits + 1 }
  | Fault_drop _ -> { t with fault_drops = t.fault_drops + 1 }
  | Link_down _ | Link_up _ | Link_degrade _ ->
    { t with link_events = t.link_events + 1 }
  | Flow_start _ -> { t with flows_started = t.flows_started + 1 }
  | Flow_done _ -> { t with flows_done = t.flows_done + 1 }
  | Cwnd_update _ | Loop_switch _ | Rto_fire _ | Probe_link _
  | Probe_dt _ -> t

let of_list events =
  let t =
    List.fold_left (fun acc (ts, ev) -> add acc ts ev) (create ())
      events
  in
  { t with
    by_tag = List.sort compare t.by_tag;
    max_occ = List.sort compare t.max_occ }

let mark_rate t =
  if t.data_enqueues = 0 then nan
  else float_of_int t.marks /. float_of_int t.data_enqueues

let pp ppf t =
  Fmt.pf ppf "@[<v>events        %d" t.events;
  if t.events > 0 then
    Fmt.pf ppf "@,span          %d .. %d ns" t.t_first t.t_last;
  Fmt.pf ppf
    "@,flows         %d started, %d done@,\
     data enqueues %d@,marks         %d (rate %.4f)@,\
     drops/trims   %d/%d@,retransmits   %d"
    t.flows_started t.flows_done t.data_enqueues t.marks
    (let r = mark_rate t in if Float.is_nan r then 0. else r)
    t.drops t.trims t.retransmits;
  if t.fault_drops > 0 || t.link_events > 0 then
    Fmt.pf ppf "@,faults        %d drops, %d link events"
      t.fault_drops t.link_events;
  Fmt.pf ppf "@,by event:";
  List.iter
    (fun (tag, n) -> Fmt.pf ppf "@,  %-12s %d" tag n)
    (List.sort compare t.by_tag);
  let occ = List.sort compare t.max_occ in
  if occ <> [] then begin
    Fmt.pf ppf "@,max occupancy per port:";
    List.iter
      (fun ((node, port), v) ->
         Fmt.pf ppf "@,  node %-3d port %-2d %8d B" node port v)
      occ
  end;
  Fmt.pf ppf "@]"
