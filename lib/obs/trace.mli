(** The trace sink: where instrumented code sends {!Event.t}s.

    One process-global sink, disabled by default. Instrumentation
    sites guard on [!enabled] — a single mutable-bool load — so the
    cost with tracing off is one branch per site and zero allocation
    (the event is only constructed behind the guard).

    Install a sink for the duration of a run with {!with_sink}; runs
    are single-threaded, nesting is not supported. *)

type sink = int -> Event.t -> unit
(** [sink ts ev]: receives each event with its timestamp (ns). *)

val enabled : bool ref
(** Read-only for emitters ([if !Trace.enabled then ...]); managed by
    {!install} / {!clear}. *)

val install : sink -> unit
val clear : unit -> unit

val emit : int -> Event.t -> unit
(** Forward to the current sink; a no-op when disabled. Call behind an
    [!enabled] guard so the event is not even built when tracing is
    off. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install, run, and always clear (even on exceptions). *)

val tee : sink -> sink -> sink

val jsonl_sink : out_channel -> sink
(** Write each event as one canonical JSON line (see
    {!Event.to_json_line}). *)

val binary_sink : ?chunk:int -> out_channel -> sink * (unit -> unit)
(** Varint-encoded binary trace (see {!Event.add_binary}): writes the
    {!Event.bin_magic} header immediately, then buffers events and
    dumps the buffer every [chunk] bytes (default 64KiB). Returns the
    sink and a [flush] that must run before the channel is closed.
    [ppt_trace decode] turns the file back into canonical JSONL. *)

(** Bounded in-memory capture for tests: keeps the most recent
    [capacity] events and counts what it had to overwrite. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 65536 events. *)

  val sink : t -> sink
  val length : t -> int
  val total : t -> int
  (** Events ever received, including overwritten ones. *)

  val dropped : t -> int
  val to_list : t -> (int * Event.t) list
  (** Oldest first. *)

  val iter : t -> (int -> Event.t -> unit) -> unit
  val clear : t -> unit
end
