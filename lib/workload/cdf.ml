(* Empirical flow-size distributions as piecewise-linear CDFs.

   Points are (size_bytes, cumulative_probability) with the probability
   strictly increasing to 1.0. Sampling inverts the CDF with linear
   interpolation inside each segment, i.e. sizes are uniform within a
   segment — the convention used by the ns-3 scripts of DCTCP/PIAS/Homa
   that the paper's workloads come from. *)

type t = {
  points : (float * float) array;   (* (bytes, cum_prob) *)
  mean : float;
}

let validate points =
  if Array.length points < 2 then invalid_arg "Cdf: need >= 2 points";
  let x0, p0 = points.(0) in
  if p0 <> 0. then invalid_arg "Cdf: first probability must be 0";
  if x0 < 0. then invalid_arg "Cdf: sizes must be non-negative";
  let _, plast = points.(Array.length points - 1) in
  if abs_float (plast -. 1.) > 1e-9 then
    invalid_arg "Cdf: last probability must be 1";
  Array.iteri (fun i (x, p) ->
      if i > 0 then begin
        let x', p' = points.(i - 1) in
        if x < x' || p <= p' then
          invalid_arg "Cdf: points must increase"
      end)
    points

(* Mean under the uniform-within-segment convention. *)
let compute_mean points =
  let acc = ref 0. in
  for i = 1 to Array.length points - 1 do
    let x0, p0 = points.(i - 1) and x1, p1 = points.(i) in
    acc := !acc +. ((p1 -. p0) *. (x0 +. x1) /. 2.)
  done;
  !acc

let create pts =
  let points = Array.of_list pts in
  validate points;
  { points; mean = compute_mean points }

let mean t = t.mean

let fraction_below t x =
  let n = Array.length t.points in
  let xf = float_of_int x in
  if xf <= fst t.points.(0) then 0.
  else if xf >= fst t.points.(n - 1) then 1.
  else begin
    let rec find i =
      if fst t.points.(i) >= xf then i else find (i + 1)
    in
    let i = find 1 in
    let x0, p0 = t.points.(i - 1) and x1, p1 = t.points.(i) in
    p0 +. ((p1 -. p0) *. (xf -. x0) /. (x1 -. x0))
  end

(* Inverse-CDF sampling; returns at least 1 byte. Rounds to nearest —
   truncating here shaved half a byte off every draw, biasing the
   empirical mean below [mean t]. *)
let sample t rng =
  let u = Ppt_engine.Rng.float rng in
  let rec find i = if snd t.points.(i) >= u then i else find (i + 1) in
  let i = find 1 in
  let x0, p0 = t.points.(i - 1) and x1, p1 = t.points.(i) in
  let x = x0 +. ((x1 -. x0) *. (u -. p0) /. (p1 -. p0)) in
  max 1 (int_of_float (Float.round x))

let max_size t = int_of_float (fst t.points.(Array.length t.points - 1))

let pp ppf t =
  Fmt.pf ppf "@[<v>cdf mean=%.0fB:@,%a@]" t.mean
    (Fmt.array ~sep:Fmt.sp (fun ppf (x, p) -> Fmt.pf ppf "(%.0f, %.3f)" x p))
    t.points
