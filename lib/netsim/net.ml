(* The network fabric: nodes (hosts and switches) connected by
   unidirectional ports, each with a strict-priority queue discipline
   and a serialization + propagation model.

   A packet injected at its source host is queued on the host NIC port,
   forwarded switch by switch (each switch consults its routing
   function), and finally delivered to the endpoint handler registered
   for (destination host, flow id). *)

open Ppt_engine

type port = {
  owner : int;
  pix : int;
  rate : Units.rate;
  delay : Units.time;
  mutable peer : int;               (* node id at the far end *)
  q : Prio_queue.t;
  mutable busy : bool;
  mutable tx_bytes : int;           (* cumulative wire bytes sent *)
  mutable tx_payload : int;         (* cumulative data payload sent *)
  mutable tx_done : unit -> unit;
  (* preallocated end-of-serialization continuation, installed by
     [create] so the transmit loop does not close over the port on
     every packet *)
  (* Fault-injection state (Ppt_faults). Neutral defaults keep the
     datapath bit-identical when no fault spec is active. *)
  mutable up : bool;                (* false: port stops dequeuing *)
  mutable cur_rate : Units.rate;    (* effective rate (degrade) *)
  mutable extra_delay : Units.time; (* added propagation (degrade) *)
  mutable fault_filter : (Packet.t -> char option) option;
  (* per-packet kill decision at transmit time; [Some reason] loses
     the packet on the wire ('L' random loss, 'C' corruption) *)
  mutable fault_drops : int;        (* packets killed by the filter *)
}

type node = {
  nid : int;
  is_host : bool;
  ports : port array;
  (* Maps a packet to the egress port index; only used on switches. *)
  mutable route : Packet.t -> int;
}

type t = {
  sim : Sim.t;
  nodes : node array;
  handlers : (int * int, Packet.t -> unit) Hashtbl.t;
  collect_int : bool;
  mutable delivered : int;
  mutable undeliverable : int;
}

let no_route (_ : Packet.t) = invalid_arg "Net: route not installed"

let make_port ~owner ~pix ~rate ~delay qcfg =
  { owner; pix; rate; delay; peer = -1; q = Prio_queue.create qcfg;
    busy = false; tx_bytes = 0; tx_payload = 0; tx_done = ignore;
    up = true; cur_rate = rate; extra_delay = 0; fault_filter = None;
    fault_drops = 0 }

let make_node ~nid ~is_host ports =
  { nid; is_host; ports; route = no_route }

let sim t = t.sim
let node t nid = t.nodes.(nid)
let port t nid pix = t.nodes.(nid).ports.(pix)
let n_nodes t = Array.length t.nodes

let register t ~host ~flow handler =
  Hashtbl.replace t.handlers (host, flow) handler

let unregister t ~host ~flow = Hashtbl.remove t.handlers (host, flow)

let stamp_int t (port : port) (p : Packet.t) =
  if t.collect_int && p.kind = Data then
    p.int_tel <-
      { Packet.hop_qlen = Prio_queue.bytes port.q;
        hop_tx_bytes = port.tx_bytes;
        hop_ts = Sim.now t.sim;
        hop_rate = port.rate }
      :: p.int_tel

(* --- trace emission (Ppt_obs) -------------------------------------

   All queue-lifecycle events are emitted here rather than inside
   [Prio_queue]: the fabric knows the clock and the port identity, and
   keeping the queue discipline trace-free keeps its hot path
   untouched. Every site guards on [!Trace.enabled], so with tracing
   off the datapath pays one load + branch and allocates nothing. *)

module Trace = Ppt_obs.Trace
module Ev = Ppt_obs.Event

let kind_tag : Packet.kind -> char = function
  | Packet.Data -> 'D' | Ack -> 'A' | Grant -> 'G' | Pull -> 'P'
  | Nack -> 'N' | Ctrl -> 'C'

let clamp_prio p = max 0 (min (Prio_queue.n_prios - 1) p)

(* The cold half of a traced enqueue: emit the verdict event, plus an
   [Ecn_mark] when the queue freshly set CE on this packet. *)
let trace_enqueue t (port : port) (p : Packet.t) verdict ~was_ce =
  let ts = Sim.now t.sim in
  let occ = Prio_queue.bytes port.q in
  let node = port.owner and pix = port.pix in
  (* after a trim, [p.prio] already reflects the header's new queue *)
  let prio = clamp_prio p.prio in
  (match verdict with
   | Prio_queue.Enqueued ->
     Trace.emit ts
       (Ev.Enqueue
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            kind = kind_tag p.kind; size = p.wire; occ })
   | Prio_queue.Trimmed ->
     Trace.emit ts
       (Ev.Trim
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            cut = p.payload; occ })
   | Prio_queue.Dropped ->
     Trace.emit ts
       (Ev.Drop
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            kind = kind_tag p.kind; size = p.wire; occ }));
  if p.ecn_ce && not was_ce then
    match Prio_queue.mark_threshold port.q prio with
    | Some threshold ->
      Trace.emit ts
        (Ev.Ecn_mark
           { node; port = pix; prio; flow = p.flow; seq = p.seq; occ;
             threshold })
    | None -> ()

let trace_dequeue t (port : port) (p : Packet.t) =
  Trace.emit (Sim.now t.sim)
    (Ev.Dequeue
       { node = port.owner; port = port.pix; prio = clamp_prio p.prio;
         flow = p.flow; seq = p.seq; kind = kind_tag p.kind;
         size = p.wire; occ = Prio_queue.bytes port.q })

let deliver t (p : Packet.t) =
  match Hashtbl.find_opt t.handlers (p.dst, p.flow) with
  | Some handler -> t.delivered <- t.delivered + 1; handler p
  | None -> t.undeliverable <- t.undeliverable + 1

(* A faulted packet still holds the wire for its serialization time
   (the bits were sent, just not received intact), so only the receive
   is suppressed; [tx_done] keeps the transmit loop alive either way. *)
let fault_kill t (port : port) (p : Packet.t) reason =
  port.fault_drops <- port.fault_drops + 1;
  if !Trace.enabled then
    Trace.emit (Sim.now t.sim)
      (Ev.Fault_drop
         { node = port.owner; port = port.pix; flow = p.flow;
           seq = p.seq; kind = kind_tag p.kind; size = p.wire;
           reason })

(* Transmit loop of a port: while the queue is non-empty, pop the next
   packet, hold the wire for its serialization time, then hand it to the
   far node after the propagation delay. A downed port parks with its
   queue intact; [kick] restarts it on link-up. *)
let rec start_tx t (port : port) =
  if not port.up then port.busy <- false
  else
    match Prio_queue.dequeue port.q with
    | None -> port.busy <- false
    | Some p ->
      if !Trace.enabled then trace_dequeue t port p;
      port.busy <- true;
      let tx = Units.tx_time ~rate:port.cur_rate ~bytes:p.wire in
      port.tx_bytes <- port.tx_bytes + p.wire;
      if p.kind = Data && not p.trimmed then
        port.tx_payload <- port.tx_payload + p.payload;
      (match
         (match port.fault_filter with None -> None | Some f -> f p)
       with
       | Some reason -> fault_kill t port p reason
       | None ->
         let arrive_after = tx + port.delay + port.extra_delay in
         ignore (Sim.schedule t.sim ~after:arrive_after (fun () ->
             receive t port.peer p)));
      ignore (Sim.schedule t.sim ~after:tx port.tx_done)

and send_on_port t (port : port) (p : Packet.t) =
  (* A downed egress discards new arrivals (no carrier, no route), as
     a real switch does; packets already queued park until link-up. *)
  if not port.up then fault_kill t port p 'D'
  else begin
  stamp_int t port p;
  if !Trace.enabled then begin
    let was_ce = p.ecn_ce in
    let verdict = Prio_queue.enqueue port.q p in
    trace_enqueue t port p verdict ~was_ce;
    match verdict with
    | Prio_queue.Dropped -> ()
    | Enqueued | Trimmed -> if not port.busy then start_tx t port
  end
  else
    match Prio_queue.enqueue port.q p with
    | Prio_queue.Dropped -> ()
    | Enqueued | Trimmed -> if not port.busy then start_tx t port
  end

and receive t nid (p : Packet.t) =
  let node = t.nodes.(nid) in
  if node.is_host then begin
    if p.dst = nid then deliver t p
    else t.undeliverable <- t.undeliverable + 1
  end else begin
    let pix = node.route p in
    send_on_port t node.ports.(pix) p
  end

let create sim ?(collect_int = false) nodes =
  Array.iteri (fun i n ->
      if n.nid <> i then invalid_arg "Net.create: node ids must be dense";
      Array.iter (fun p ->
          if p.peer < 0 || p.peer >= Array.length nodes then
            invalid_arg "Net.create: unconnected port")
        n.ports)
    nodes;
  let t =
    { sim; nodes; handlers = Hashtbl.create 1024; collect_int;
      delivered = 0; undeliverable = 0 }
  in
  Array.iter (fun n ->
      Array.iter (fun p -> p.tx_done <- (fun () -> start_tx t p))
        n.ports)
    nodes;
  t

(* Inject a packet at its source host NIC (port 0 by convention). *)
let send t (p : Packet.t) =
  let host = t.nodes.(p.src) in
  if not host.is_host then invalid_arg "Net.send: src is not a host";
  send_on_port t host.ports.(0) p

(* Restart a parked transmit loop (after link-up / unpause). *)
let kick t (port : port) = if port.up && not port.busy then start_tx t port

let delivered t = t.delivered
let undeliverable t = t.undeliverable

(* Aggregate drop/mark counters over every port in the network. *)
let total_drops t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.drops p.q) acc n.ports)
    0 t.nodes

let total_drops_band t ~lp =
  let f = if lp then Prio_queue.drops_lp else Prio_queue.drops_hp in
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + f p.q) acc n.ports)
    0 t.nodes

let total_marks t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.marks p.q) acc n.ports)
    0 t.nodes

let total_tx_bytes t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + p.tx_bytes) acc n.ports)
    0 t.nodes

let total_fault_drops t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + p.fault_drops) acc n.ports)
    0 t.nodes

(* Periodic probes: sample every port's queue occupancy, the link
   utilization over the last interval, and the current
   dynamic-threshold admission limits. The tick reschedules itself
   only while the clock stays at or below [until], so runs that drain
   to quiescence still terminate. *)
let start_probes t ~interval ~until =
  if interval <= 0 then invalid_arg "Net.start_probes: interval <= 0";
  let last_tx =
    Array.map (fun n -> Array.map (fun p -> p.tx_bytes) n.ports) t.nodes
  in
  let last_ts = ref (Sim.now t.sim) in
  let rec tick () =
    let now = Sim.now t.sim in
    let dt = now - !last_ts in
    if !Trace.enabled then
      Array.iter
        (fun n ->
           Array.iter
             (fun p ->
                Trace.emit now
                  (Ev.Probe_queue
                     { node = n.nid; port = p.pix;
                       occ = Prio_queue.bytes p.q;
                       lp_occ = Prio_queue.lp_bytes p.q });
                let sent = p.tx_bytes - last_tx.(n.nid).(p.pix) in
                let cap =
                  if dt <= 0 then 0
                  else Units.bytes_in ~rate:p.rate ~time:dt
                in
                Trace.emit now
                  (Ev.Probe_link
                     { node = n.nid; port = p.pix;
                       tx_bytes = p.tx_bytes;
                       util_ppm =
                         (if cap = 0 then 0
                          else sent * 1_000_000 / cap) });
                match Prio_queue.dt_thresholds p.q with
                | Some (hp, lp) ->
                  Trace.emit now
                    (Ev.Probe_dt
                       { node = n.nid; port = p.pix; hp; lp })
                | None -> ())
             n.ports)
        t.nodes;
    Array.iter
      (fun n ->
         Array.iter (fun p -> last_tx.(n.nid).(p.pix) <- p.tx_bytes)
           n.ports)
      t.nodes;
    last_ts := now;
    if now + interval <= until then
      ignore (Sim.schedule t.sim ~after:interval tick)
  in
  if Sim.now t.sim + interval <= until then
    ignore (Sim.schedule t.sim ~after:interval tick)
