(* The network fabric: nodes (hosts and switches) connected by
   unidirectional ports, each with a strict-priority queue discipline
   and a serialization + propagation model.

   A packet injected at its source host is queued on the host NIC port,
   forwarded switch by switch (each switch consults its routing
   function), and finally delivered to the endpoint handler registered
   for (destination host, flow id). *)

open Ppt_engine

type port = {
  owner : int;
  pix : int;
  rate : Units.rate;
  delay : Units.time;
  mutable peer : int;               (* node id at the far end *)
  q : Prio_queue.t;
  mutable busy : bool;
  mutable tx_bytes : int;           (* cumulative wire bytes sent *)
  mutable tx_payload : int;         (* cumulative data payload sent *)
  mutable tx_done : unit -> unit;
  (* preallocated end-of-serialization continuation, installed by
     [create] so the transmit loop does not close over the port on
     every packet *)
  mutable recv_fire : Packet.t -> unit;
  (* preallocated far-end arrival continuation (also installed by
     [create]); paired with [Sim.schedule1] so per-packet arrival
     scheduling allocates only the timer *)
  mutable memo_bytes : int;         (* serialization-time memo: *)
  mutable memo_rate : Units.rate;   (* tx_time at (memo_bytes, memo_rate) *)
  mutable memo_tx : Units.time;     (* is memo_tx — ports see few sizes *)
  (* Fault-injection state (Ppt_faults). Neutral defaults keep the
     datapath bit-identical when no fault spec is active. *)
  mutable up : bool;                (* false: port stops dequeuing *)
  mutable cur_rate : Units.rate;    (* effective rate (degrade) *)
  mutable extra_delay : Units.time; (* added propagation (degrade) *)
  mutable fault_filter : (Packet.t -> char option) option;
  (* per-packet kill decision at transmit time; [Some reason] loses
     the packet on the wire ('L' random loss, 'C' corruption) *)
  mutable fault_drops : int;        (* packets killed by the filter *)
}

(* Deterministic hash for ECMP candidate selection. *)
let ecmp_hash flow n =
  assert (n > 0);
  ((flow * 0x61C88647) lsr 8) land max_int mod n

(* How a switch picks among ECMP candidates (see [Topology.routing]). *)
type selector =
  | Sel_flow                        (* classic per-flow ECMP *)
  | Sel_packet                      (* per-packet spray (NDP-style) *)
  | Sel_flowlet of { gap : Units.time; tbl : (int, flowlet) Hashtbl.t }

(* Per-flow flowlet memory: candidate index + last-seen time. A mutable
   record (not a tuple in the table) so steady-state flowlet routing
   writes two fields and allocates nothing. *)
and flowlet = { mutable fl_cand : int; mutable fl_last : Units.time }

(* Flat forwarding table of a switch: [base.(dst)] is the egress port
   for [dst], or -1 to select among the [cand] ports (all ECMP
   destinations of a node share one candidate set). Routing a packet is
   an array read plus, on the ECMP path, a hash — no list traversal, no
   closure call, no allocation. *)
type fwd = {
  base : int array;
  cand : int array;
  sel : selector;
}

type node = {
  nid : int;
  is_host : bool;
  ports : port array;
  (* Maps a packet to the egress port index; only used on switches.
     Fallback for custom topologies — the builders in [Topology]
     install a flat [fwd] table instead. *)
  mutable route : Packet.t -> int;
  mutable fwd : fwd option;
}

type t = {
  sim : Sim.t;
  nodes : node array;
  hflat : (Packet.t -> unit) array array;
  (* [hflat.(host).(flow)] is the delivery handler — the hot lookup is
     two array reads. Hosts' tables grow on registration; flows outside
     [flat_flow_cap] fall back to the hashtable. *)
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  (* keyed by [handler_key]: host and flow packed into one int so a
     delivery lookup allocates no tuple *)
  collect_int : bool;
  mutable delivered : int;
  mutable undeliverable : int;
}

let no_route (_ : Packet.t) = invalid_arg "Net: route not installed"

(* Hosts are node ids (< 2^20 by the [create] check); flows take the
   high bits, so the packing is injective. *)
let max_nodes = 1 lsl 20
let handler_key ~host ~flow = (flow lsl 20) lor host

let make_port ~owner ~pix ~rate ~delay qcfg =
  { owner; pix; rate; delay; peer = -1; q = Prio_queue.create qcfg;
    busy = false; tx_bytes = 0; tx_payload = 0; tx_done = ignore;
    recv_fire = ignore;
    memo_bytes = -1; memo_rate = -1; memo_tx = 0;
    up = true; cur_rate = rate; extra_delay = 0; fault_filter = None;
    fault_drops = 0 }

let make_node ~nid ~is_host ports =
  { nid; is_host; ports; route = no_route; fwd = None }

let sim t = t.sim
let node t nid = t.nodes.(nid)
let port t nid pix = t.nodes.(nid).ports.(pix)
let n_nodes t = Array.length t.nodes

(* Physical-equality sentinel for an empty flat slot, so delivery can
   distinguish "no handler" without an option. *)
let no_handler : Packet.t -> unit = fun _ -> ()
let flat_flow_cap = 1 lsl 16

let flat_slot t ~host ~flow =
  host >= 0 && host < Array.length t.nodes
  && flow >= 0 && flow < flat_flow_cap

let register t ~host ~flow handler =
  if flat_slot t ~host ~flow then begin
    let arr = t.hflat.(host) in
    let arr =
      if flow < Array.length arr then arr
      else begin
        let n = ref (max 16 (Array.length arr)) in
        while !n <= flow do n := 2 * !n done;
        let bigger = Array.make !n no_handler in
        Array.blit arr 0 bigger 0 (Array.length arr);
        t.hflat.(host) <- bigger;
        bigger
      end
    in
    arr.(flow) <- handler
  end else
    Hashtbl.replace t.handlers (handler_key ~host ~flow) handler

let unregister t ~host ~flow =
  if flat_slot t ~host ~flow then begin
    let arr = t.hflat.(host) in
    if flow < Array.length arr then arr.(flow) <- no_handler
  end else
    Hashtbl.remove t.handlers (handler_key ~host ~flow)

let stamp_int t (port : port) (p : Packet.t) =
  if t.collect_int && p.kind = Data then
    Packet.tel_push p ~qlen:(Prio_queue.bytes port.q)
      ~tx_bytes:port.tx_bytes ~ts:(Sim.now t.sim) ~rate:port.rate

(* --- trace emission (Ppt_obs) -------------------------------------

   All queue-lifecycle events are emitted here rather than inside
   [Prio_queue]: the fabric knows the clock and the port identity, and
   keeping the queue discipline trace-free keeps its hot path
   untouched. Every site guards on [!Trace.enabled], so with tracing
   off the datapath pays one load + branch and allocates nothing. *)

module Trace = Ppt_obs.Trace
module Ev = Ppt_obs.Event

let kind_tag : Packet.kind -> char = function
  | Packet.Data -> 'D' | Ack -> 'A' | Grant -> 'G' | Pull -> 'P'
  | Nack -> 'N' | Ctrl -> 'C'

let clamp_prio p = max 0 (min (Prio_queue.n_prios - 1) p)

(* The cold half of a traced enqueue: emit the verdict event, plus an
   [Ecn_mark] when the queue freshly set CE on this packet. *)
let trace_enqueue t (port : port) (p : Packet.t) verdict ~was_ce =
  let ts = Sim.now t.sim in
  let occ = Prio_queue.bytes port.q in
  let node = port.owner and pix = port.pix in
  (* after a trim, [p.prio] already reflects the header's new queue *)
  let prio = clamp_prio p.prio in
  (match verdict with
   | Prio_queue.Enqueued ->
     Trace.emit ts
       (Ev.Enqueue
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            kind = kind_tag p.kind; size = p.wire; occ })
   | Prio_queue.Trimmed ->
     Trace.emit ts
       (Ev.Trim
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            cut = p.payload; occ })
   | Prio_queue.Dropped ->
     Trace.emit ts
       (Ev.Drop
          { node; port = pix; prio; flow = p.flow; seq = p.seq;
            kind = kind_tag p.kind; size = p.wire; occ }));
  if p.ecn_ce && not was_ce then
    match Prio_queue.mark_threshold port.q prio with
    | Some threshold ->
      Trace.emit ts
        (Ev.Ecn_mark
           { node; port = pix; prio; flow = p.flow; seq = p.seq; occ;
             threshold })
    | None -> ()

let trace_dequeue t (port : port) (p : Packet.t) =
  Trace.emit (Sim.now t.sim)
    (Ev.Dequeue
       { node = port.owner; port = port.pix; prio = clamp_prio p.prio;
         flow = p.flow; seq = p.seq; kind = kind_tag p.kind;
         size = p.wire; occ = Prio_queue.bytes port.q })

(* Packet sinks. The fabric owns every packet handed to [send]; at each
   terminal point — delivery, queue drop, fault kill, undeliverable —
   it returns the record to the pool. Delivery handlers borrow the
   packet for the duration of the call and must not retain it. *)

let deliver t (p : Packet.t) =
  let arr = t.hflat.(p.dst) in
  let handler =
    if p.flow >= 0 && p.flow < Array.length arr then
      Array.unsafe_get arr p.flow
    else
      match
        Hashtbl.find_opt t.handlers (handler_key ~host:p.dst ~flow:p.flow)
      with
      | Some h -> h
      | None -> no_handler
  in
  if handler != no_handler then begin
    t.delivered <- t.delivered + 1;
    handler p
  end else t.undeliverable <- t.undeliverable + 1;
  Packet.release p

(* A faulted packet still holds the wire for its serialization time
   (the bits were sent, just not received intact), so only the receive
   is suppressed; [tx_done] keeps the transmit loop alive either way. *)
let fault_kill t (port : port) (p : Packet.t) reason =
  port.fault_drops <- port.fault_drops + 1;
  if !Trace.enabled then
    Trace.emit (Sim.now t.sim)
      (Ev.Fault_drop
         { node = port.owner; port = port.pix; flow = p.flow;
           seq = p.seq; kind = kind_tag p.kind; size = p.wire;
           reason });
  Packet.release p

(* ECMP candidate index for one packet under the node's policy.
   Allocation-free: the flowlet table stores mutable records and misses
   are signalled by the (constant) [Not_found]. *)
let select sim (f : fwd) (p : Packet.t) =
  let n = Array.length f.cand in
  match f.sel with
  | Sel_flow -> ecmp_hash p.flow n
  | Sel_packet -> ecmp_hash (p.flow + (p.uid * 7919)) n
  | Sel_flowlet { gap; tbl } ->
    let now = Sim.now sim in
    (match Hashtbl.find tbl p.flow with
     | st ->
       if now - st.fl_last <= gap then begin
         st.fl_last <- now;
         st.fl_cand
       end else begin
         let epoch = now / max 1 gap in
         let c = ecmp_hash (p.flow + (epoch * 65599)) n in
         st.fl_cand <- c;
         st.fl_last <- now;
         c
       end
     | exception Not_found ->
       let epoch = now / max 1 gap in
       let c = ecmp_hash (p.flow + (epoch * 65599)) n in
       Hashtbl.add tbl p.flow { fl_cand = c; fl_last = now };
       c)

(* Transmit loop of a port: while the queue is non-empty, pop the next
   packet, hold the wire for its serialization time, then hand it to the
   far node after the propagation delay. A downed port parks with its
   queue intact; [kick] restarts it on link-up. *)
let rec start_tx t (port : port) =
  if not port.up then port.busy <- false
  else begin
    let p = Prio_queue.dequeue_or_dummy port.q in
    if p == Packet.dummy then port.busy <- false
    else begin
      if !Trace.enabled then trace_dequeue t port p;
      port.busy <- true;
      let tx =
        (* a port sees a handful of distinct wire sizes, so one memo
           slot removes the division from nearly every transmit *)
        if p.wire = port.memo_bytes && port.cur_rate = port.memo_rate
        then port.memo_tx
        else begin
          let v = Units.tx_time ~rate:port.cur_rate ~bytes:p.wire in
          port.memo_bytes <- p.wire;
          port.memo_rate <- port.cur_rate;
          port.memo_tx <- v;
          v
        end
      in
      port.tx_bytes <- port.tx_bytes + p.wire;
      if p.kind = Data && not p.trimmed then
        port.tx_payload <- port.tx_payload + p.payload;
      (match
         (match port.fault_filter with None -> None | Some f -> f p)
       with
       | Some reason -> fault_kill t port p reason
       | None ->
         let arrive_after = tx + port.delay + port.extra_delay in
         ignore (Sim.schedule1 t.sim ~after:arrive_after port.recv_fire p));
      ignore (Sim.schedule t.sim ~after:tx port.tx_done)
    end
  end

and send_on_port t (port : port) (p : Packet.t) =
  (* A downed egress discards new arrivals (no carrier, no route), as
     a real switch does; packets already queued park until link-up. *)
  if not port.up then fault_kill t port p 'D'
  else begin
  stamp_int t port p;
  if !Trace.enabled then begin
    let was_ce = p.ecn_ce in
    let verdict = Prio_queue.enqueue port.q p in
    trace_enqueue t port p verdict ~was_ce;
    match verdict with
    | Prio_queue.Dropped -> Packet.release p
    | Enqueued | Trimmed -> if not port.busy then start_tx t port
  end
  else
    match Prio_queue.enqueue port.q p with
    | Prio_queue.Dropped -> Packet.release p
    | Enqueued | Trimmed -> if not port.busy then start_tx t port
  end

and receive t nid (p : Packet.t) =
  let node = t.nodes.(nid) in
  if node.is_host then begin
    if p.dst = nid then deliver t p
    else begin
      t.undeliverable <- t.undeliverable + 1;
      Packet.release p
    end
  end else begin
    let pix =
      match node.fwd with
      | Some f ->
        let b = f.base.(p.dst) in
        if b >= 0 then b else f.cand.(select t.sim f p)
      | None -> node.route p
    in
    send_on_port t node.ports.(pix) p
  end

let create sim ?(collect_int = false) nodes =
  if Array.length nodes > max_nodes then
    invalid_arg "Net.create: too many nodes";
  Array.iteri (fun i n ->
      if n.nid <> i then invalid_arg "Net.create: node ids must be dense";
      Array.iter (fun p ->
          if p.peer < 0 || p.peer >= Array.length nodes then
            invalid_arg "Net.create: unconnected port")
        n.ports)
    nodes;
  let t =
    { sim; nodes; hflat = Array.make (Array.length nodes) [||];
      handlers = Hashtbl.create 16; collect_int;
      delivered = 0; undeliverable = 0 }
  in
  Array.iter (fun n ->
      Array.iter (fun p ->
          p.tx_done <- (fun () -> start_tx t p);
          p.recv_fire <- (fun pkt -> receive t p.peer pkt))
        n.ports)
    nodes;
  t

(* Inject a packet at its source host NIC (port 0 by convention). *)
let send t (p : Packet.t) =
  let host = t.nodes.(p.src) in
  if not host.is_host then invalid_arg "Net.send: src is not a host";
  send_on_port t host.ports.(0) p

(* Restart a parked transmit loop (after link-up / unpause). *)
let kick t (port : port) = if port.up && not port.busy then start_tx t port

let delivered t = t.delivered
let undeliverable t = t.undeliverable

(* Aggregate drop/mark counters over every port in the network. *)
let total_drops t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.drops p.q) acc n.ports)
    0 t.nodes

let total_drops_band t ~lp =
  let f = if lp then Prio_queue.drops_lp else Prio_queue.drops_hp in
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + f p.q) acc n.ports)
    0 t.nodes

let total_marks t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.marks p.q) acc n.ports)
    0 t.nodes

let total_tx_bytes t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + p.tx_bytes) acc n.ports)
    0 t.nodes

let total_fault_drops t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + p.fault_drops) acc n.ports)
    0 t.nodes

(* Periodic probes: sample every port's queue occupancy, the link
   utilization over the last interval, and the current
   dynamic-threshold admission limits. The tick reschedules itself
   only while the clock stays at or below [until], so runs that drain
   to quiescence still terminate. *)
let start_probes t ~interval ~until =
  if interval <= 0 then invalid_arg "Net.start_probes: interval <= 0";
  let last_tx =
    Array.map (fun n -> Array.map (fun p -> p.tx_bytes) n.ports) t.nodes
  in
  let last_ts = ref (Sim.now t.sim) in
  let rec tick () =
    let now = Sim.now t.sim in
    let dt = now - !last_ts in
    if !Trace.enabled then
      Array.iter
        (fun n ->
           Array.iter
             (fun p ->
                Trace.emit now
                  (Ev.Probe_queue
                     { node = n.nid; port = p.pix;
                       occ = Prio_queue.bytes p.q;
                       lp_occ = Prio_queue.lp_bytes p.q });
                let sent = p.tx_bytes - last_tx.(n.nid).(p.pix) in
                let cap =
                  if dt <= 0 then 0
                  else Units.bytes_in ~rate:p.rate ~time:dt
                in
                Trace.emit now
                  (Ev.Probe_link
                     { node = n.nid; port = p.pix;
                       tx_bytes = p.tx_bytes;
                       util_ppm =
                         (if cap = 0 then 0
                          else sent * 1_000_000 / cap) });
                match Prio_queue.dt_thresholds p.q with
                | Some (hp, lp) ->
                  Trace.emit now
                    (Ev.Probe_dt
                       { node = n.nid; port = p.pix; hp; lp })
                | None -> ())
             n.ports)
        t.nodes;
    Array.iter
      (fun n ->
         Array.iter (fun p -> last_tx.(n.nid).(p.pix) <- p.tx_bytes)
           n.ports)
      t.nodes;
    last_ts := now;
    if now + interval <= until then
      ignore (Sim.schedule t.sim ~after:interval tick)
  in
  if Sim.now t.sim + interval <= until then
    ignore (Sim.schedule t.sim ~after:interval tick)
