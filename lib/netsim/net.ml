(* The network fabric: nodes (hosts and switches) connected by
   unidirectional ports, each with a strict-priority queue discipline
   and a serialization + propagation model.

   A packet injected at its source host is queued on the host NIC port,
   forwarded switch by switch (each switch consults its routing
   function), and finally delivered to the endpoint handler registered
   for (destination host, flow id). *)

open Ppt_engine

type port = {
  owner : int;
  pix : int;
  rate : Units.rate;
  delay : Units.time;
  mutable peer : int;               (* node id at the far end *)
  q : Prio_queue.t;
  mutable busy : bool;
  mutable tx_bytes : int;           (* cumulative wire bytes sent *)
  mutable tx_payload : int;         (* cumulative data payload sent *)
  mutable tx_done : unit -> unit;
  (* preallocated end-of-serialization continuation, installed by
     [create] so the transmit loop does not close over the port on
     every packet *)
}

type node = {
  nid : int;
  is_host : bool;
  ports : port array;
  (* Maps a packet to the egress port index; only used on switches. *)
  mutable route : Packet.t -> int;
}

type t = {
  sim : Sim.t;
  nodes : node array;
  handlers : (int * int, Packet.t -> unit) Hashtbl.t;
  collect_int : bool;
  mutable delivered : int;
  mutable undeliverable : int;
}

let no_route (_ : Packet.t) = invalid_arg "Net: route not installed"

let make_port ~owner ~pix ~rate ~delay qcfg =
  { owner; pix; rate; delay; peer = -1; q = Prio_queue.create qcfg;
    busy = false; tx_bytes = 0; tx_payload = 0; tx_done = ignore }

let make_node ~nid ~is_host ports =
  { nid; is_host; ports; route = no_route }

let sim t = t.sim
let node t nid = t.nodes.(nid)
let port t nid pix = t.nodes.(nid).ports.(pix)
let n_nodes t = Array.length t.nodes

let register t ~host ~flow handler =
  Hashtbl.replace t.handlers (host, flow) handler

let unregister t ~host ~flow = Hashtbl.remove t.handlers (host, flow)

let stamp_int t (port : port) (p : Packet.t) =
  if t.collect_int && p.kind = Data then
    p.int_tel <-
      { Packet.hop_qlen = Prio_queue.bytes port.q;
        hop_tx_bytes = port.tx_bytes;
        hop_ts = Sim.now t.sim;
        hop_rate = port.rate }
      :: p.int_tel

let deliver t (p : Packet.t) =
  match Hashtbl.find_opt t.handlers (p.dst, p.flow) with
  | Some handler -> t.delivered <- t.delivered + 1; handler p
  | None -> t.undeliverable <- t.undeliverable + 1

(* Transmit loop of a port: while the queue is non-empty, pop the next
   packet, hold the wire for its serialization time, then hand it to the
   far node after the propagation delay. *)
let rec start_tx t (port : port) =
  match Prio_queue.dequeue port.q with
  | None -> port.busy <- false
  | Some p ->
    port.busy <- true;
    let tx = Units.tx_time ~rate:port.rate ~bytes:p.wire in
    port.tx_bytes <- port.tx_bytes + p.wire;
    if p.kind = Data && not p.trimmed then
      port.tx_payload <- port.tx_payload + p.payload;
    let arrive_after = tx + port.delay in
    ignore (Sim.schedule t.sim ~after:arrive_after (fun () ->
        receive t port.peer p));
    ignore (Sim.schedule t.sim ~after:tx port.tx_done)

and send_on_port t (port : port) (p : Packet.t) =
  stamp_int t port p;
  match Prio_queue.enqueue port.q p with
  | Prio_queue.Dropped -> ()
  | Enqueued | Trimmed -> if not port.busy then start_tx t port

and receive t nid (p : Packet.t) =
  let node = t.nodes.(nid) in
  if node.is_host then begin
    if p.dst = nid then deliver t p
    else t.undeliverable <- t.undeliverable + 1
  end else begin
    let pix = node.route p in
    send_on_port t node.ports.(pix) p
  end

let create sim ?(collect_int = false) nodes =
  Array.iteri (fun i n ->
      if n.nid <> i then invalid_arg "Net.create: node ids must be dense";
      Array.iter (fun p ->
          if p.peer < 0 || p.peer >= Array.length nodes then
            invalid_arg "Net.create: unconnected port")
        n.ports)
    nodes;
  let t =
    { sim; nodes; handlers = Hashtbl.create 1024; collect_int;
      delivered = 0; undeliverable = 0 }
  in
  Array.iter (fun n ->
      Array.iter (fun p -> p.tx_done <- (fun () -> start_tx t p))
        n.ports)
    nodes;
  t

(* Inject a packet at its source host NIC (port 0 by convention). *)
let send t (p : Packet.t) =
  let host = t.nodes.(p.src) in
  if not host.is_host then invalid_arg "Net.send: src is not a host";
  send_on_port t host.ports.(0) p

let delivered t = t.delivered
let undeliverable t = t.undeliverable

(* Aggregate drop/mark counters over every port in the network. *)
let total_drops t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.drops p.q) acc n.ports)
    0 t.nodes

let total_drops_band t ~lp =
  let f = if lp then Prio_queue.drops_lp else Prio_queue.drops_hp in
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + f p.q) acc n.ports)
    0 t.nodes

let total_marks t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + Prio_queue.marks p.q) acc n.ports)
    0 t.nodes

let total_tx_bytes t =
  Array.fold_left (fun acc n ->
      Array.fold_left (fun acc p -> acc + p.tx_bytes) acc n.ports)
    0 t.nodes
