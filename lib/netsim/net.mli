(** Network fabric: hosts and switches connected by ports.

    A port is unidirectional: it owns an egress {!Prio_queue.t}, a line
    rate and a propagation delay, and points at a peer node. Topology
    builders create nodes/ports, wire peers, install switch routing
    functions and then call {!create}. *)

open Ppt_engine

type port = {
  owner : int;
  pix : int;
  rate : Units.rate;
  delay : Units.time;
  mutable peer : int;
  q : Prio_queue.t;
  mutable busy : bool;
  mutable tx_bytes : int;
  mutable tx_payload : int;
  mutable tx_done : unit -> unit;
  (** Preallocated end-of-serialization continuation; installed by
      {!create}, not meant to be called by users. *)
  mutable recv_fire : Packet.t -> unit;
  (** Preallocated far-end arrival continuation; installed by
      {!create} and scheduled via {!Ppt_engine.Sim.schedule1} so a
      packet arrival allocates no closure. Not meant to be called by
      users. *)
  mutable memo_bytes : int;
  mutable memo_rate : Units.rate;
  mutable memo_tx : Units.time;
  (** Serialization-time memo: [memo_tx] caches
      [Units.tx_time ~rate:memo_rate ~bytes:memo_bytes]. A port sees
      only a handful of distinct wire sizes, so this removes the
      division from nearly every transmit. Maintained by the transmit
      loop; not meant to be touched by users. *)
  mutable up : bool;
  (** [false] parks the transmit loop and discards new arrivals as
      fault drops (reason 'D'); already-queued packets park until
      {!kick} after the port is raised again. Default [true]. *)
  mutable cur_rate : Units.rate;
  (** Effective line rate; equals [rate] unless degraded. *)
  mutable extra_delay : Units.time;
  (** Added one-way propagation delay; 0 unless degraded. *)
  mutable fault_filter : (Packet.t -> char option) option;
  (** Consulted once per transmitted packet; [Some reason] loses the
      packet on the wire ('L' random loss, 'C' corruption). The packet
      still occupies its serialization time. Default [None]. *)
  mutable fault_drops : int;
  (** Packets killed by the filter or discarded while down. *)
}

val ecmp_hash : int -> int -> int
(** [ecmp_hash key n] — deterministic candidate selection in
    [0, n)]. *)

(** How a switch picks among ECMP candidate ports. *)
type selector =
  | Sel_flow      (** classic per-flow ECMP *)
  | Sel_packet    (** spray every packet independently (NDP-style) *)
  | Sel_flowlet of { gap : Units.time; tbl : (int, flowlet) Hashtbl.t }
      (** re-hash a flow after a pause longer than [gap]
          (LetFlow-style); [tbl] is the per-node flowlet memory *)

and flowlet = { mutable fl_cand : int; mutable fl_last : Units.time }

type fwd = {
  base : int array;  (** [base.(dst)] = egress port, or -1 for ECMP *)
  cand : int array;  (** ECMP candidate ports (shared by all dsts) *)
  sel : selector;
}
(** Flat forwarding table of a switch: routing is an array read plus,
    on the ECMP path, a hash — no list traversal, no closure call, no
    allocation. Installed by the [Topology] builders. *)

type node = {
  nid : int;
  is_host : bool;
  ports : port array;
  mutable route : Packet.t -> int;
  (** Fallback routing closure for custom topologies; consulted only
      when [fwd] is [None]. *)
  mutable fwd : fwd option;
}

type t

val make_port :
  owner:int -> pix:int -> rate:Units.rate -> delay:Units.time ->
  Prio_queue.config -> port

val make_node : nid:int -> is_host:bool -> port array -> node

val create : Sim.t -> ?collect_int:bool -> node array -> t
(** Node ids must equal their array index and every port must be wired.
    [collect_int] makes switches stamp HPCC inband telemetry on data
    packets. *)

val sim : t -> Sim.t
val node : t -> int -> node
val port : t -> int -> int -> port
val n_nodes : t -> int

val register : t -> host:int -> flow:int -> (Packet.t -> unit) -> unit
(** Install the endpoint handler receiving flow [flow]'s packets that
    arrive at [host]. *)

val unregister : t -> host:int -> flow:int -> unit

val send : t -> Packet.t -> unit
(** Inject a packet at its source host's NIC. *)

val start_probes : t -> interval:Units.time -> until:Units.time -> unit
(** Schedule a recurring sampler that emits
    [Probe_queue]/[Probe_link]/[Probe_dt] trace events for every port
    (see {!Ppt_obs.Event}) each [interval], while the clock stays at or
    below [until]. Samples are only emitted while a trace sink is
    installed; the fabric's own packet-lifecycle events
    ([enqueue]/[dequeue]/[ecn_mark]/[drop]/[trim]) are emitted
    unconditionally whenever tracing is enabled. *)

val kick : t -> port -> unit
(** Restart a port's transmit loop if it is up and idle. Fault
    injectors call this after raising [up] so queued packets start
    draining again; a no-op on busy or downed ports. *)

val delivered : t -> int
val undeliverable : t -> int
val total_drops : t -> int
val total_drops_band : t -> lp:bool -> int
val total_marks : t -> int
val total_tx_bytes : t -> int
val total_fault_drops : t -> int
