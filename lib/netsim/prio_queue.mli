(** Strict-priority egress queue discipline with ECN marking.

    Eight FIFO queues (P0 highest), a shared per-port drop-tail buffer,
    instantaneous-queue ECN marking per priority, and the optional
    NDP-trim / Aeolus-selective-drop / low-priority-cap behaviours used
    by the paper's baselines. *)

type mark_basis =
  | Port_occupancy   (** mark against total port occupancy (default) *)
  | Queue_occupancy  (** mark against the packet's own queue *)

type config = {
  buffer_bytes : int;
  mark_thresholds : int option array;
  mark_basis : mark_basis;
  trim : bool;
  sel_drop_threshold : int option;
  lp_buffer_cap : int option;
  dt_alphas : float array option;
  (** Dynamic-threshold buffer sharing: queue [q] admits a packet only
      while [qlen q <= alpha.(q) * (buffer - occupancy)]. *)
}

val n_prios : int
val lp_band_start : int
(** First priority of the low band (P4). *)

val trim_wire_bytes : int
(** Wire size of an NDP-trimmed header. *)

val no_marking : int option array

val dt_bands : hp:float -> lp:float -> float array
(** Per-band dynamic-threshold alphas (high band P0-P3, low P4-P7). *)

val mark_bands : hp:int option -> lp:int option -> int option array
(** Thresholds for the high (P0-P3) and low (P4-P7) bands. *)

val default_config : buffer_bytes:int -> config

type t
type verdict = Enqueued | Dropped | Trimmed

val create : config -> t
val enqueue : t -> Packet.t -> verdict
val dequeue : t -> Packet.t option

val dequeue_or_dummy : t -> Packet.t
(** [dequeue] without the option: returns {!Packet.dummy} when all
    queues are empty. For the transmit loop, which runs once per
    forwarded packet. *)

val bytes : t -> int
val lp_bytes : t -> int
val hp_bytes : t -> int
val queue_bytes : t -> int -> int
val is_empty : t -> bool

val buffer_bytes : t -> int
(** Configured shared-buffer capacity. *)

val mark_threshold : t -> int -> int option
(** Configured ECN threshold of priority [prio] (clamped). *)

val dt_thresholds : t -> (int * int) option
(** Current dynamic-threshold admission limits [(hp, lp)] of the two
    bands — [alpha * (buffer - occupancy)] — or [None] when DT buffer
    sharing is off. *)

val drops : t -> int
val drops_hp : t -> int
val drops_lp : t -> int
val drop_bytes : t -> int
val trims : t -> int
val marks : t -> int
val enqueues : t -> int
