(* Topology builders used by the paper's experiments:

   - [star]: N hosts on one switch — models the CloudLab testbed
     (15 hosts, one Dell S4048) and the 2-to-1 dumbbell of Fig. 1;
   - [leaf_spine]: the two-tier Clos fabric of the large-scale
     simulations (§6.2): 9 leaves x 16 hosts with 4 spines, at
     40/100G, 10/40G (non-oversubscribed) or 100/400G.

   Each builder wires every port, installs routing (ECMP across spines
   by flow hash) and reports a conservative base-RTT estimate used for
   BDP-derived transport parameters. *)

open Ppt_engine

type built = {
  net : Net.t;
  hosts : int array;
  base_rtt : Units.time;
  edge_rate : Units.rate;
  to_host_port : int -> int * int;
  (* Last-hop egress port (node id, port index) towards a host: the
     usual bottleneck and the place to sample utilization/occupancy. *)
  name : string;
}

(* Deterministic per-flow hash for ECMP spine selection (the fabric's
   own, re-exported for tests and custom builders). *)
let ecmp_hash = Net.ecmp_hash

(* How leaves spread traffic across spines.

   - [Per_flow]: classic ECMP — one spine per flow, no reordering;
   - [Per_packet]: spray every packet independently (NDP-style) —
     perfect balance, heavy reordering;
   - [Flowlet]: re-hash a flow whenever it pauses longer than [gap]
     (LetFlow-style) — balance without reordering bursts. *)
type routing =
  | Per_flow
  | Per_packet
  | Flowlet of { gap : Units.time }

let selector_of_routing = function
  | Per_flow -> Net.Sel_flow
  | Per_packet -> Net.Sel_packet
  | Flowlet { gap } -> Net.Sel_flowlet { gap; tbl = Hashtbl.create 64 }

(* Host NICs get a large unmarked buffer: the paper's end-host queueing
   happens in the TCP send buffer model, not the NIC ring. *)
let host_qcfg = Prio_queue.default_config ~buffer_bytes:(Units.mb 64)

let one_way_latency ~hops ~delay ~rate =
  hops * (delay + Units.tx_time ~rate ~bytes:Packet.mtu)

let star ?collect_int ~sim ~n_hosts ~rate ~delay ~qcfg () =
  if n_hosts < 2 then invalid_arg "Topology.star: need at least 2 hosts";
  let switch_id = n_hosts in
  let hosts =
    Array.init n_hosts (fun h ->
        let p = Net.make_port ~owner:h ~pix:0 ~rate ~delay host_qcfg in
        p.Net.peer <- switch_id;
        Net.make_node ~nid:h ~is_host:true [| p |])
  in
  let switch_ports =
    Array.init n_hosts (fun i ->
        let p = Net.make_port ~owner:switch_id ~pix:i ~rate ~delay qcfg in
        p.Net.peer <- i;
        p)
  in
  let switch = Net.make_node ~nid:switch_id ~is_host:false switch_ports in
  switch.Net.fwd <-
    Some { Net.base = Array.init n_hosts Fun.id; cand = [||];
           sel = Net.Sel_flow };
  let net = Net.create sim ?collect_int (Array.append hosts [| switch |]) in
  { net;
    hosts = Array.init n_hosts Fun.id;
    base_rtt = 2 * one_way_latency ~hops:2 ~delay ~rate;
    edge_rate = rate;
    to_host_port = (fun h -> (switch_id, h));
    name = Printf.sprintf "star-%d@%dG" n_hosts (rate / 1_000_000_000) }

let leaf_spine ?collect_int ?(routing = Per_flow) ~sim ~hosts_per_leaf
    ~n_leaf ~n_spine ~edge_rate ~core_rate ~edge_delay ~core_delay
    ~qcfg () =
  let n_hosts = hosts_per_leaf * n_leaf in
  let leaf_id l = n_hosts + l in
  let spine_id s = n_hosts + n_leaf + s in
  let leaf_of_host h = h / hosts_per_leaf in
  let hosts =
    Array.init n_hosts (fun h ->
        let p =
          Net.make_port ~owner:h ~pix:0 ~rate:edge_rate ~delay:edge_delay
            host_qcfg
        in
        p.Net.peer <- leaf_id (leaf_of_host h);
        Net.make_node ~nid:h ~is_host:true [| p |])
  in
  let leaves =
    Array.init n_leaf (fun l ->
        let nid = leaf_id l in
        let down =
          Array.init hosts_per_leaf (fun i ->
              let p =
                Net.make_port ~owner:nid ~pix:i ~rate:edge_rate
                  ~delay:edge_delay qcfg
              in
              p.Net.peer <- (l * hosts_per_leaf) + i;
              p)
        in
        let up =
          Array.init n_spine (fun s ->
              let pix = hosts_per_leaf + s in
              let p =
                Net.make_port ~owner:nid ~pix ~rate:core_rate
                  ~delay:core_delay qcfg
              in
              p.Net.peer <- spine_id s;
              p)
        in
        let node =
          Net.make_node ~nid ~is_host:false (Array.append down up)
        in
        (* Local hosts get their downlink; everyone else ECMPs over the
           uplinks. Each leaf gets its own selector (flowlet memory is
           per-node). *)
        node.Net.fwd <-
          Some { Net.base =
                   Array.init n_hosts (fun d ->
                       if leaf_of_host d = l then d mod hosts_per_leaf
                       else -1);
                 cand = Array.init n_spine (fun s -> hosts_per_leaf + s);
                 sel = selector_of_routing routing };
        node)
  in
  let spines =
    Array.init n_spine (fun s ->
        let nid = spine_id s in
        let down =
          Array.init n_leaf (fun l ->
              let p =
                Net.make_port ~owner:nid ~pix:l ~rate:core_rate
                  ~delay:core_delay qcfg
              in
              p.Net.peer <- leaf_id l;
              p)
        in
        let node = Net.make_node ~nid ~is_host:false down in
        node.Net.fwd <-
          Some { Net.base = Array.init n_hosts leaf_of_host; cand = [||];
                 sel = Net.Sel_flow };
        node)
  in
  let nodes = Array.concat [ hosts; leaves; spines ] in
  let net = Net.create sim ?collect_int nodes in
  let base_rtt =
    2 * (one_way_latency ~hops:2 ~delay:edge_delay ~rate:edge_rate
         + one_way_latency ~hops:2 ~delay:core_delay ~rate:core_rate)
  in
  { net;
    hosts = Array.init n_hosts Fun.id;
    base_rtt;
    edge_rate;
    to_host_port =
      (fun h -> (leaf_id (leaf_of_host h), h mod hosts_per_leaf));
    name =
      Printf.sprintf "leafspine-%dx%d+%d@%d/%dG" n_leaf hosts_per_leaf
        n_spine (edge_rate / 1_000_000_000) (core_rate / 1_000_000_000) }
