(** Packets: the unit of everything the simulator moves.

    Transports attach protocol payloads via the extensible [meta]
    variant (see [Ppt_transport.Wire]), keeping the network layer
    protocol-agnostic. *)

open Ppt_engine

type kind = Data | Ack | Grant | Pull | Nack | Ctrl

type loop = H | L
(** Which control loop the packet belongs to: the high-priority
    primary loop or a low-priority opportunistic one. *)

type meta = ..
type meta += No_meta

type int_hop = {
  hop_qlen : int;
  hop_tx_bytes : int;
  hop_ts : Units.time;
  hop_rate : Units.rate;
}
(** One hop's inband-telemetry snapshot (HPCC). *)

type t = {
  uid : int;
  flow : int;
  src : int;
  dst : int;
  seq : int;
  payload : int;
  mutable wire : int;
  mutable prio : int;
  kind : kind;
  loop : loop;
  ecn_capable : bool;
  mutable ecn_ce : bool;
  mutable trimmed : bool;
  sel_drop : bool;
  mutable int_tel : int_hop list;
  meta : meta;
}

val header_bytes : int
val mtu : int
val max_payload : int
(** MTU minus header: the segment payload size (1460B). *)

val ctrl_bytes : int

val make :
  ?seq:int -> ?payload:int -> ?prio:int -> ?loop:loop ->
  ?ecn_capable:bool -> ?sel_drop:bool -> ?meta:meta ->
  flow:int -> src:int -> dst:int -> kind -> t

val dummy : t
(** Inert placeholder for vacated queue slots; never routed. Does not
    consume a uid. *)

val is_data : t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit

val segments_of_bytes : int -> int
val segment_payload : flow_bytes:int -> seq:int -> int
(** Payload of segment [seq] of a [flow_bytes]-sized flow; all segments
    carry [max_payload] except a shorter final one. *)
