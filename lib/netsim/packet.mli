(** Packets: the unit of everything the simulator moves.

    Transports attach protocol payloads via the extensible [meta]
    variant (see [Ppt_transport.Wire]), keeping the network layer
    protocol-agnostic.

    Packets are pooled: [make] recycles a record from a process-global
    free list and [release] returns one to it, so the steady-state
    datapath allocates nothing per packet. Ownership is linear — the
    creator owns a packet until [Net.send], the fabric owns it from
    then on and releases it at a sink (delivery, drop, fault kill);
    delivery handlers only borrow the packet for the duration of the
    call. See HACKING.md, "Allocation discipline". *)

type kind = Data | Ack | Grant | Pull | Nack | Ctrl

type loop = H | L
(** Which control loop the packet belongs to: the high-priority
    primary loop or a low-priority opportunistic one. *)

type meta = ..
type meta += No_meta

val tel_cap : int
(** Max inband-telemetry entries a packet can carry (hops). *)

val tel_stride : int
(** Ints per telemetry entry: qlen, tx_bytes, ts, rate. *)

type t = {
  mutable uid : int;
  mutable flow : int;
  mutable src : int;
  mutable dst : int;
  mutable seq : int;
  mutable payload : int;
  mutable wire : int;
  mutable prio : int;
  mutable kind : kind;
  mutable loop : loop;
  mutable ecn_capable : bool;
  mutable ecn_ce : bool;
  mutable trimmed : bool;
  mutable sel_drop : bool;
  mutable meta : meta;
  mutable tel_n : int;
  tel : int array;          (** [tel_cap] x [tel_stride], first hop first *)
  mutable in_pool : bool;
}

val header_bytes : int
val mtu : int
val max_payload : int
(** MTU minus header: the segment payload size (1460B). *)

val ctrl_bytes : int

val make :
  ?seq:int -> ?payload:int -> ?prio:int -> ?loop:loop ->
  ?ecn_capable:bool -> ?sel_drop:bool -> ?meta:meta ->
  flow:int -> src:int -> dst:int -> kind -> t
(** Acquire a packet (from the pool when one is free), with every
    mutable field re-initialised. *)

val release : t -> unit
(** Return a packet to the free list. No-op when pooling is off or on
    [dummy]. The caller must not touch the packet afterwards. *)

val assert_live : t -> unit
(** @raise Invalid_argument if the packet is on the free list
    (use-after-release). Cheap; called from debug paths. *)

val reset_uids : unit -> unit
(** Reset the uid counter (done per run by [Context.create]) so
    back-to-back in-process runs hand out identical uid sequences. *)

val set_pooling : bool -> unit
(** Turn the free list on/off (default on; env [PPT_NO_POOL] turns it
    off). With pooling off, [make] always allocates and [release] is a
    no-op. *)

val pooling_enabled : unit -> bool

val set_debug : bool -> unit
(** Enable double-release / use-after-release checking with field
    poisoning (default off; env [PPT_POOL_DEBUG=1] turns it on). *)

val pool_size : unit -> int
(** Packets currently on the free list. *)

val dummy : t
(** Inert placeholder for vacated queue slots; never routed, never
    pooled. Does not consume a uid. *)

(** {2 Inband telemetry (HPCC)}

    A fixed-capacity strided snapshot buffer owned by the packet:
    entry [i] is the [i]th hop on the path (first hop first). *)

val tel_count : t -> int
val tel_push : t -> qlen:int -> tx_bytes:int -> ts:int -> rate:int -> unit
(** Append one hop's snapshot; silently dropped beyond [tel_cap]. *)

val tel_qlen : t -> int -> int
val tel_tx_bytes : t -> int -> int
val tel_ts : t -> int -> int
val tel_rate : t -> int -> int
val tel_clear : t -> unit
val tel_copy : src:t -> dst:t -> unit
(** Copy [src]'s telemetry into [dst]'s own buffer (receivers echo the
    data packet's telemetry on the ack they emit). *)

val is_data : t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit

val segments_of_bytes : int -> int
val segment_payload : flow_bytes:int -> seq:int -> int
(** Payload of segment [seq] of a [flow_bytes]-sized flow; all segments
    carry [max_payload] except a shorter final one. *)
