(* Packets are the unit of everything the simulator moves.

   [src]/[dst] are host node ids; a packet is routed towards [dst] and
   delivered to the endpoint registered there for [flow]. Transports
   attach protocol-specific information through the extensible [meta]
   variant so the network layer stays protocol-agnostic.

   Packets are pooled. [make] recycles a record from a process-global
   free list (re-initialising every mutable field) and [release]
   returns one to it, so the steady-state datapath allocates nothing
   per packet. Ownership is linear and documented in HACKING.md
   ("Allocation discipline"):

   - the transport that [make]s a packet owns it until [Net.send];
   - from then on the fabric owns it: it lives in port queues and
     in-flight timer closures;
   - at a sink (delivery, drop, fault kill, undeliverable) the fabric
     calls [release] — delivery handlers only borrow the packet for
     the duration of the call and must not retain it;
   - packets never handed to [Net.send] stay owned by their creator
     (tests that exercise [Prio_queue] directly just let the GC have
     them; [release] is an optimisation, not an obligation).

   [set_pooling false] turns the free list off (every [make] is a
   fresh allocation, [release] a no-op) — golden tests compare traces
   with pooling on and off to prove recycling is invisible. Debug mode
   ([PPT_POOL_DEBUG=1] or [set_debug true]) checks double-release and
   use-after-release and poisons released packets so stale readers
   fail loudly. *)

type kind =
  | Data  (* payload-carrying, sender to receiver *)
  | Ack   (* receiver to sender *)
  | Grant (* receiver-driven credit (Homa/Aeolus) *)
  | Pull  (* receiver-driven pull (NDP) *)
  | Nack  (* loss notification (NDP trimmed header echo, Aeolus) *)
  | Ctrl  (* anything else *)

type loop = H | L
(** Which control loop a PPT/RC3-style packet belongs to: the
    high-priority primary loop or the low-priority opportunistic one. *)

type meta = ..
type meta += No_meta

(* Fixed-capacity inband-telemetry snapshot (HPCC): one entry per hop,
   four ints per entry (queue bytes, cumulative tx bytes, timestamp,
   line rate) packed into a single strided array that lives with the
   pooled packet, so stamping a hop is four stores — no list cells. *)
let tel_cap = 8
let tel_stride = 4

type t = {
  mutable uid : int;
  mutable flow : int;
  mutable src : int;
  mutable dst : int;
  mutable seq : int;        (* segment index within the flow; -1 for control *)
  mutable payload : int;    (* payload bytes covered (0 for pure control) *)
  mutable wire : int;       (* bytes occupied on the wire *)
  mutable prio : int;       (* 0 (highest) .. 7 (lowest) *)
  mutable kind : kind;
  mutable loop : loop;
  mutable ecn_capable : bool;
  mutable ecn_ce : bool;    (* congestion-experienced mark *)
  mutable trimmed : bool;   (* NDP: payload cut, header survived *)
  mutable sel_drop : bool;  (* Aeolus: drop me early instead of queueing *)
  mutable meta : meta;
  mutable tel_n : int;      (* hops stamped into [tel] *)
  tel : int array;          (* tel_cap x tel_stride, first hop first *)
  mutable in_pool : bool;   (* currently on the free list *)
}

let header_bytes = 40
let mtu = 1500
let max_payload = mtu - header_bytes
let ctrl_bytes = 64

let uid_counter = ref 0

(* Reset per run (threaded through [Context.create]) so back-to-back
   in-process runs hand out identical uid sequences — uids feed the
   per-packet spraying hash, so this is what makes rerunning an
   experiment in the same process byte-identical to the first run. *)
let reset_uids () = uid_counter := 0

(* --- pool ---------------------------------------------------------- *)

let pooling = ref (Sys.getenv_opt "PPT_NO_POOL" = None)
let debug =
  ref (match Sys.getenv_opt "PPT_POOL_DEBUG" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false)

let set_pooling b = pooling := b
let pooling_enabled () = !pooling
let set_debug b = debug := b

(* Placeholder for vacated queue slots; never routed, never pooled.
   Built literally rather than via [make] so it does not consume a
   uid. *)
let dummy =
  { uid = -1; flow = -1; src = -1; dst = -1; seq = -1; payload = 0;
    wire = 0; prio = 0; kind = Ctrl; loop = H; ecn_capable = false;
    ecn_ce = false; trimmed = false; sel_drop = false; meta = No_meta;
    tel_n = 0; tel = Array.make (tel_cap * tel_stride) 0;
    in_pool = false }

let pool = ref (Array.make 256 dummy)
let pool_len = ref 0

let pool_size () = !pool_len

let release p =
  if !pooling && p != dummy then begin
    if !debug then begin
      if p.in_pool then
        invalid_arg
          (Printf.sprintf "Packet.release: double release (uid %d)" p.uid);
      (* poison: a reader holding on to this packet now sees nonsense
         ids instead of silently-recycled fields *)
      p.flow <- min_int; p.src <- min_int; p.dst <- min_int;
      p.seq <- min_int
    end;
    p.in_pool <- true;
    p.meta <- No_meta;     (* do not retain protocol payloads *)
    let arr = !pool in
    let n = !pool_len in
    let arr =
      if n < Array.length arr then arr
      else begin
        let bigger = Array.make (2 * n) dummy in
        Array.blit arr 0 bigger 0 n;
        pool := bigger;
        bigger
      end
    in
    arr.(n) <- p;
    pool_len := n + 1
  end

let assert_live p =
  if p.in_pool then
    invalid_arg
      (Printf.sprintf "Packet: use after release (uid %d)" p.uid)

let wire_of kind payload =
  match kind with
  | Data -> header_bytes + payload
  | Ack | Grant | Pull | Nack | Ctrl -> ctrl_bytes

let make ?(seq = -1) ?(payload = 0) ?(prio = 0) ?(loop = H)
    ?(ecn_capable = false) ?(sel_drop = false) ?(meta = No_meta)
    ~flow ~src ~dst kind =
  incr uid_counter;
  let n = !pool_len in
  if !pooling && n > 0 then begin
    let arr = !pool in
    let n = n - 1 in
    pool_len := n;
    let p = arr.(n) in
    arr.(n) <- dummy;
    if !debug && not p.in_pool then
      invalid_arg "Packet.make: free list holds a live packet";
    p.in_pool <- false;
    p.uid <- !uid_counter; p.flow <- flow; p.src <- src; p.dst <- dst;
    p.seq <- seq; p.payload <- payload; p.wire <- wire_of kind payload;
    p.prio <- prio; p.kind <- kind; p.loop <- loop;
    p.ecn_capable <- ecn_capable; p.ecn_ce <- false; p.trimmed <- false;
    p.sel_drop <- sel_drop; p.meta <- meta; p.tel_n <- 0;
    p
  end else
    { uid = !uid_counter; flow; src; dst; seq; payload;
      wire = wire_of kind payload; prio; kind; loop; ecn_capable;
      ecn_ce = false; trimmed = false; sel_drop; meta; tel_n = 0;
      tel = Array.make (tel_cap * tel_stride) 0; in_pool = false }

(* --- inband telemetry ---------------------------------------------- *)

let tel_count p = p.tel_n

let tel_push p ~qlen ~tx_bytes ~ts ~rate =
  if p.tel_n < tel_cap then begin
    let b = p.tel_n * tel_stride in
    let tel = p.tel in
    Array.unsafe_set tel b qlen;
    Array.unsafe_set tel (b + 1) tx_bytes;
    Array.unsafe_set tel (b + 2) ts;
    Array.unsafe_set tel (b + 3) rate;
    p.tel_n <- p.tel_n + 1
  end

let tel_qlen p i = p.tel.(i * tel_stride)
let tel_tx_bytes p i = p.tel.((i * tel_stride) + 1)
let tel_ts p i = p.tel.((i * tel_stride) + 2)
let tel_rate p i = p.tel.((i * tel_stride) + 3)
let tel_clear p = p.tel_n <- 0

let tel_copy ~src ~dst =
  Array.blit src.tel 0 dst.tel 0 (src.tel_n * tel_stride);
  dst.tel_n <- src.tel_n

let is_data p = p.kind = Data

let pp_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Ack -> Fmt.string ppf "ack"
  | Grant -> Fmt.string ppf "grant"
  | Pull -> Fmt.string ppf "pull"
  | Nack -> Fmt.string ppf "nack"
  | Ctrl -> Fmt.string ppf "ctrl"

let pp ppf p =
  Fmt.pf ppf "@[<h>%a flow=%d %d->%d seq=%d wire=%dB prio=%d%s%s@]"
    pp_kind p.kind p.flow p.src p.dst p.seq p.wire p.prio
    (if p.ecn_ce then " CE" else "")
    (if p.trimmed then " trimmed" else "")

(* Segmentation helper: number of [max_payload]-sized segments needed to
   carry [bytes], with a final short segment. *)
let segments_of_bytes bytes =
  if bytes <= 0 then 0 else (bytes + max_payload - 1) / max_payload

let segment_payload ~flow_bytes ~seq =
  let nseg = segments_of_bytes flow_bytes in
  assert (seq >= 0 && seq < nseg);
  if seq = nseg - 1 then flow_bytes - (nseg - 1) * max_payload
  else max_payload
