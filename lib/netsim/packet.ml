(* Packets are the unit of everything the simulator moves.

   [src]/[dst] are host node ids; a packet is routed towards [dst] and
   delivered to the endpoint registered there for [flow]. Transports
   attach protocol-specific information through the extensible [meta]
   variant so the network layer stays protocol-agnostic. *)

open Ppt_engine

type kind =
  | Data  (* payload-carrying, sender to receiver *)
  | Ack   (* receiver to sender *)
  | Grant (* receiver-driven credit (Homa/Aeolus) *)
  | Pull  (* receiver-driven pull (NDP) *)
  | Nack  (* loss notification (NDP trimmed header echo, Aeolus) *)
  | Ctrl  (* anything else *)

type loop = H | L
(** Which control loop a PPT/RC3-style packet belongs to: the
    high-priority primary loop or the low-priority opportunistic one. *)

type meta = ..
type meta += No_meta

(* One hop's inband telemetry snapshot, for HPCC. *)
type int_hop = {
  hop_qlen : int;           (* queue occupancy in bytes at enqueue *)
  hop_tx_bytes : int;       (* cumulative bytes transmitted by the port *)
  hop_ts : Units.time;      (* when the snapshot was taken *)
  hop_rate : Units.rate;    (* port line rate *)
}

type t = {
  uid : int;
  flow : int;
  src : int;
  dst : int;
  seq : int;        (* segment index within the flow; -1 for control *)
  payload : int;    (* payload bytes covered (0 for pure control) *)
  mutable wire : int;       (* bytes occupied on the wire *)
  mutable prio : int;       (* 0 (highest) .. 7 (lowest) *)
  kind : kind;
  loop : loop;
  ecn_capable : bool;
  mutable ecn_ce : bool;    (* congestion-experienced mark *)
  mutable trimmed : bool;   (* NDP: payload cut, header survived *)
  sel_drop : bool;          (* Aeolus: drop me early instead of queueing *)
  mutable int_tel : int_hop list;  (* HPCC inband telemetry, last hop first *)
  meta : meta;
}

let header_bytes = 40
let mtu = 1500
let max_payload = mtu - header_bytes
let ctrl_bytes = 64

let uid_counter = ref 0

let make ?(seq = -1) ?(payload = 0) ?(prio = 0) ?(loop = H)
    ?(ecn_capable = false) ?(sel_drop = false) ?(meta = No_meta)
    ~flow ~src ~dst kind =
  incr uid_counter;
  let wire = match kind with
    | Data -> header_bytes + payload
    | Ack | Grant | Pull | Nack | Ctrl -> ctrl_bytes
  in
  { uid = !uid_counter; flow; src; dst; seq; payload; wire; prio; kind;
    loop; ecn_capable; ecn_ce = false; trimmed = false; sel_drop;
    int_tel = []; meta }

(* Placeholder for vacated queue slots; never routed. Built literally
   rather than via [make] so it does not consume a uid — uids feed the
   per-packet spraying hash and must not shift. *)
let dummy =
  { uid = -1; flow = -1; src = -1; dst = -1; seq = -1; payload = 0;
    wire = 0; prio = 0; kind = Ctrl; loop = H; ecn_capable = false;
    ecn_ce = false; trimmed = false; sel_drop = false; int_tel = [];
    meta = No_meta }

let is_data p = p.kind = Data

let pp_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Ack -> Fmt.string ppf "ack"
  | Grant -> Fmt.string ppf "grant"
  | Pull -> Fmt.string ppf "pull"
  | Nack -> Fmt.string ppf "nack"
  | Ctrl -> Fmt.string ppf "ctrl"

let pp ppf p =
  Fmt.pf ppf "@[<h>%a flow=%d %d->%d seq=%d wire=%dB prio=%d%s%s@]"
    pp_kind p.kind p.flow p.src p.dst p.seq p.wire p.prio
    (if p.ecn_ce then " CE" else "")
    (if p.trimmed then " trimmed" else "")

(* Segmentation helper: number of [max_payload]-sized segments needed to
   carry [bytes], with a final short segment. *)
let segments_of_bytes bytes =
  if bytes <= 0 then 0 else (bytes + max_payload - 1) / max_payload

let segment_payload ~flow_bytes ~seq =
  let nseg = segments_of_bytes flow_bytes in
  assert (seq >= 0 && seq < nseg);
  if seq = nseg - 1 then flow_bytes - (nseg - 1) * max_payload
  else max_payload
