(* Egress queue discipline of a port: 8 FIFO queues dequeued in strict
   priority order, a shared drop-tail buffer, and instantaneous-queue
   ECN marking, as configured on commodity switches (§5 of the paper).

   Optional behaviours used by specific baselines:
   - [trim]: NDP-style payload trimming when the buffer is full —
     the header survives at the highest priority;
   - [sel_drop_threshold]: Aeolus-style selective dropping of packets
     flagged [sel_drop] once occupancy exceeds a small threshold;
   - [lp_buffer_cap]: cap on the bytes the low-priority band (P4-P7)
     may occupy (used for the RC3 limited-buffer variant, Fig. 24). *)

type mark_basis = Port_occupancy | Queue_occupancy

type config = {
  buffer_bytes : int;
  mark_thresholds : int option array;  (* per priority; None = no marking *)
  mark_basis : mark_basis;
  trim : bool;
  sel_drop_threshold : int option;
  lp_buffer_cap : int option;
  dt_alphas : float array option;
  (* Dynamic-threshold buffer sharing (Choudhury-Hahne), as configured
     on commodity switches: queue q admits a packet only while
     qlen(q) <= alpha(q) * (buffer - total occupancy). Lower alphas on
     the low-priority band squeeze opportunistic traffic out first when
     the buffer runs hot. *)
}

let n_prios = 8
let lp_band_start = 4
let trim_wire_bytes = 64

let no_marking = Array.make n_prios None

(* Mark every ECN-capable packet once occupancy exceeds [hp] (applied to
   priorities 0-3) or [lp] (4-7); both thresholds in bytes. *)
let mark_bands ~hp ~lp =
  Array.init n_prios (fun p -> if p < lp_band_start then hp else lp)

let default_config ~buffer_bytes = {
  buffer_bytes;
  mark_thresholds = no_marking;
  mark_basis = Port_occupancy;
  trim = false;
  sel_drop_threshold = None;
  lp_buffer_cap = None;
  dt_alphas = None;
}

(* The usual switch setup: a permissive share for the high-priority
   band and a tight one for the low band. *)
let dt_bands ~hp ~lp =
  Array.init n_prios (fun p -> if p < lp_band_start then hp else lp)

(* Each priority level is a preallocated ring buffer (power-of-two
   capacity, grown by unwrapping into a doubled array), and [live] is a
   bitmask of the nonempty priorities so [dequeue] finds the
   head-of-line queue with one table lookup instead of a linear scan.
   Popped slots are overwritten with [Packet.dummy] so the queue never
   retains dead packets. *)
type t = {
  cfg : config;
  dt_alphas : float array;          (* [||] when DT sharing is off *)
  mutable rings : Packet.t array array;
  heads : int array;
  lens : int array;
  mutable live : int;               (* bitmask of nonempty priorities *)
  qbytes : int array;
  mutable bytes : int;
  mutable lp_bytes : int;   (* occupancy of the P4-P7 band *)
  (* counters *)
  mutable enq_pkts : int;
  mutable drop_pkts : int;
  mutable drop_hp_pkts : int;
  mutable drop_lp_pkts : int;
  mutable drop_bytes : int;
  mutable trim_pkts : int;
  mutable mark_pkts : int;
}

type verdict = Enqueued | Dropped | Trimmed

(* [lowest_set.(mask)] is the lowest set bit's index; n_prios if none. *)
let lowest_set =
  Array.init (1 lsl n_prios) (fun m ->
      let rec find b =
        if b >= n_prios then n_prios
        else if m land (1 lsl b) <> 0 then b
        else find (b + 1)
      in
      find 0)

let create cfg =
  assert (Array.length cfg.mark_thresholds = n_prios);
  { cfg;
    dt_alphas =
      (match cfg.dt_alphas with
       | Some a -> assert (Array.length a = n_prios); a
       | None -> [||]);
    (* ring storage is allocated on first enqueue into a band: most
       ports only ever see one or two of the eight priorities *)
    rings = Array.make n_prios [||];
    heads = Array.make n_prios 0;
    lens = Array.make n_prios 0;
    live = 0;
    qbytes = Array.make n_prios 0;
    bytes = 0; lp_bytes = 0;
    enq_pkts = 0; drop_pkts = 0; drop_hp_pkts = 0; drop_lp_pkts = 0;
    drop_bytes = 0; trim_pkts = 0; mark_pkts = 0 }

let ring_push t prio p =
  let cap = Array.length t.rings.(prio) in
  if t.lens.(prio) = cap then begin
    (* unwrap the full ring into a doubled array *)
    let bigger = Array.make (max 16 (2 * cap)) Packet.dummy in
    let old = t.rings.(prio) and head = t.heads.(prio) in
    for i = 0 to cap - 1 do
      bigger.(i) <- old.((head + i) land (cap - 1))
    done;
    t.rings.(prio) <- bigger;
    t.heads.(prio) <- 0
  end;
  let arr = t.rings.(prio) in
  arr.((t.heads.(prio) + t.lens.(prio)) land (Array.length arr - 1))
    <- p;
  t.lens.(prio) <- t.lens.(prio) + 1;
  t.live <- t.live lor (1 lsl prio)

let ring_pop t prio =
  let arr = t.rings.(prio) in
  let head = t.heads.(prio) in
  let p = arr.(head) in
  arr.(head) <- Packet.dummy;
  t.heads.(prio) <- (head + 1) land (Array.length arr - 1);
  let len = t.lens.(prio) - 1 in
  t.lens.(prio) <- len;
  if len = 0 then t.live <- t.live land lnot (1 lsl prio);
  p

let bytes t = t.bytes
let lp_bytes t = t.lp_bytes
let hp_bytes t = t.bytes - t.lp_bytes
let queue_bytes t prio = t.qbytes.(prio)
let is_empty t = t.bytes = 0

let buffer_bytes t = t.cfg.buffer_bytes

let mark_threshold t prio =
  t.cfg.mark_thresholds.(max 0 (min (n_prios - 1) prio))

let dt_thresholds t =
  if Array.length t.dt_alphas = 0 then None
  else begin
    let free = float_of_int (t.cfg.buffer_bytes - t.bytes) in
    Some (int_of_float (t.dt_alphas.(0) *. free),
          int_of_float (t.dt_alphas.(lp_band_start) *. free))
  end

let drops t = t.drop_pkts
let drops_hp t = t.drop_hp_pkts
let drops_lp t = t.drop_lp_pkts
let drop_bytes t = t.drop_bytes
let trims t = t.trim_pkts
let marks t = t.mark_pkts
let enqueues t = t.enq_pkts

let push t (p : Packet.t) =
  let prio = max 0 (min (n_prios - 1) p.prio) in
  ring_push t prio p;
  t.qbytes.(prio) <- t.qbytes.(prio) + p.wire;
  t.bytes <- t.bytes + p.wire;
  if prio >= lp_band_start then t.lp_bytes <- t.lp_bytes + p.wire;
  t.enq_pkts <- t.enq_pkts + 1;
  (* Instantaneous marking against the occupancy that the packet sees. *)
  if p.ecn_capable then begin
    match t.cfg.mark_thresholds.(prio) with
    | Some k ->
      let occ =
        match t.cfg.mark_basis with
        | Port_occupancy -> t.bytes
        | Queue_occupancy -> t.qbytes.(prio)
      in
      if occ > k then begin
        if not p.ecn_ce then t.mark_pkts <- t.mark_pkts + 1;
        p.ecn_ce <- true
      end
    | None -> ()
  end

let drop t (p : Packet.t) =
  t.drop_pkts <- t.drop_pkts + 1;
  if p.prio >= lp_band_start then t.drop_lp_pkts <- t.drop_lp_pkts + 1
  else t.drop_hp_pkts <- t.drop_hp_pkts + 1;
  t.drop_bytes <- t.drop_bytes + p.wire

(* Admission is straight-line and allocation-free: integer checks run
   first, and the dynamic-threshold float comparison (the only float
   work on the datapath) only when DT sharing is on and the packet is
   subject to it. *)
let admits t (p : Packet.t) =
  t.bytes + p.wire <= t.cfg.buffer_bytes
  && (p.prio < lp_band_start
      || (match t.cfg.lp_buffer_cap with
          | None -> true
          | Some cap -> t.lp_bytes + p.wire <= cap))
  && (Array.length t.dt_alphas = 0
      (* selectively-droppable (Aeolus) packets are admitted by their
         own threshold, not by the dynamic shares *)
      || p.sel_drop
      || (let prio = max 0 (min (n_prios - 1) p.prio) in
          float_of_int (t.qbytes.(prio) + p.wire)
          <= t.dt_alphas.(prio)
             *. float_of_int (t.cfg.buffer_bytes - t.bytes)))

let enqueue t (p : Packet.t) =
  let sel_dropped =
    p.sel_drop
    && (match t.cfg.sel_drop_threshold with
        | Some k -> t.bytes + p.wire > k
        | None -> false)
  in
  if sel_dropped then begin drop t p; Dropped end
  else if admits t p then begin push t p; Enqueued end
  else if t.cfg.trim && p.kind = Data && not p.trimmed then begin
    (* NDP: cut the payload, keep the header, jump to the top queue. *)
    p.trimmed <- true;
    p.wire <- trim_wire_bytes;
    p.prio <- 0;
    if t.bytes + p.wire <= t.cfg.buffer_bytes then begin
      t.trim_pkts <- t.trim_pkts + 1;
      push t p;
      Trimmed
    end else begin drop t p; Dropped end
  end
  else begin drop t p; Dropped end

(* Option-free variant for the transmit loop: returns [Packet.dummy]
   when every queue is empty, so the (per-packet) hot path allocates
   nothing. *)
let dequeue_or_dummy t =
  let prio = lowest_set.(t.live) in
  if prio >= n_prios then Packet.dummy
  else begin
    let p = ring_pop t prio in
    t.qbytes.(prio) <- t.qbytes.(prio) - p.wire;
    t.bytes <- t.bytes - p.wire;
    if prio >= lp_band_start then t.lp_bytes <- t.lp_bytes - p.wire;
    p
  end

let dequeue t =
  let p = dequeue_or_dummy t in
  if p == Packet.dummy then None else Some p
