(* Run only the Bechamel micro-benchmarks (the full harness runs them
   after every experiment; this is the quick loop for hot-path work):

     dune exec bench/micro_main.exe *)

let () =
  Micro.run Format.std_formatter;
  Format.pp_print_flush Format.std_formatter ()
