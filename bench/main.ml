(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the per-experiment index) and
   finishes with Bechamel micro-benchmarks of the simulator hot paths.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- --list            # list experiment ids
     dune exec bench/main.exe -- --only fig12,tab2 # a subset
     dune exec bench/main.exe -- --flows-scale 0.5 # quicker run
     dune exec bench/main.exe -- --full            # 144-host fabrics
     dune exec bench/main.exe -- --jobs 4          # sharded workers
     dune exec bench/main.exe -- --report          # BENCH_<rev>.json *)

open Ppt_harness

let () =
  let only = ref [] in
  let flows_scale = ref 1.0 in
  let seed = ref 1 in
  let full = ref false in
  let jobs = ref 1 in
  let skip_micro = ref false in
  let list_only = ref false in
  let report = ref false in
  let report_file = ref "" in
  let micro_repeat = ref 3 in
  let spec =
    [ ("--only",
       Arg.String
         (fun s -> only := String.split_on_char ',' s),
       "IDS comma-separated experiment ids (fig12,tab2,...)");
      ("--flows-scale", Arg.Set_float flows_scale,
       "F multiply every experiment's flow count by F (default 1.0)");
      ("--seed", Arg.Set_int seed, "N random seed (default 1)");
      ("--full", Arg.Set full,
       " use the full-size 144-host fabrics (slow)");
      ("--jobs", Arg.Set_int jobs,
       "N run each experiment's shards on N worker processes \
        (default 1; output is identical either way)");
      ("--skip-micro", Arg.Set skip_micro,
       " skip the bechamel micro-benchmarks");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--report", Arg.Set report,
       " time fig12 + micros and write BENCH_<rev>.json");
      ("--report-file", Arg.Set_string report_file,
       "FILE report output path (implies --report)");
      ("--micro-repeat", Arg.Set_int micro_repeat,
       "N best-of-N micro passes in the report (default 3; CI uses 1)") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "PPT benchmark harness";
  let ppf = Format.std_formatter in
  if !list_only then begin
    List.iter
      (fun e ->
         Format.fprintf ppf "%-8s %s@\n" e.Figures.e_id
           e.Figures.e_descr)
      Figures.all;
    Format.pp_print_flush ppf ()
  end else if !report || !report_file <> "" then begin
    let opts =
      { Figures.flows_scale = !flows_scale; seed = !seed; full = !full }
    in
    let ids = if !only = [] then [ "fig12" ] else !only in
    let path = if !report_file = "" then None else Some !report_file in
    Report.emit ?path ~ids ~jobs:!jobs ~micro:(not !skip_micro)
      ~micro_repeat:!micro_repeat opts ppf;
    Format.pp_print_flush ppf ()
  end else begin
    let opts =
      { Figures.flows_scale = !flows_scale; seed = !seed; full = !full }
    in
    let selected =
      match !only with
      | [] -> Figures.all
      | ids ->
        List.map
          (fun id ->
             match Figures.find id with
             | Some e -> e
             | None ->
               raise (Arg.Bad (Printf.sprintf "unknown experiment %s" id)))
          ids
    in
    Format.fprintf ppf
      "PPT reproduction bench (scale=%.2f, seed=%d, fabric=%s, jobs=%d)@\n"
      !flows_scale !seed
      (if !full then "full 144-host" else "scaled 32-host")
      !jobs;
    List.iter
      (fun e ->
         let t0 = Unix.gettimeofday () in
         (if !jobs > 1 then begin
            let r =
              Parallel.sweep ~jobs:!jobs ~ids:[ e.Figures.e_id ] opts
            in
            Format.pp_print_string ppf r.Parallel.output
          end
          else Figures.render e opts ppf);
         Format.fprintf ppf "[%s done in %.1fs]@\n" e.Figures.e_id
           (Unix.gettimeofday () -. t0);
         Format.pp_print_flush ppf ())
      selected;
    if (not !skip_micro) && !only = [] then Micro.run ppf;
    Format.pp_print_flush ppf ()
  end
