(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the per-experiment index) and
   finishes with Bechamel micro-benchmarks of the simulator hot paths.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- --list            # list experiment ids
     dune exec bench/main.exe -- --only fig12,tab2 # a subset
     dune exec bench/main.exe -- --flows-scale 0.5 # quicker run
     dune exec bench/main.exe -- --full            # 144-host fabrics
     dune exec bench/main.exe -- --report          # BENCH_<rev>.json *)

open Ppt_harness

let () =
  let only = ref [] in
  let flows_scale = ref 1.0 in
  let seed = ref 1 in
  let full = ref false in
  let skip_micro = ref false in
  let list_only = ref false in
  let report = ref false in
  let report_file = ref "" in
  let spec =
    [ ("--only",
       Arg.String
         (fun s -> only := String.split_on_char ',' s),
       "IDS comma-separated experiment ids (fig12,tab2,...)");
      ("--flows-scale", Arg.Set_float flows_scale,
       "F multiply every experiment's flow count by F (default 1.0)");
      ("--seed", Arg.Set_int seed, "N random seed (default 1)");
      ("--full", Arg.Set full,
       " use the full-size 144-host fabrics (slow)");
      ("--skip-micro", Arg.Set skip_micro,
       " skip the bechamel micro-benchmarks");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--report", Arg.Set report,
       " time fig12/tab2 + micros and write BENCH_<rev>.json");
      ("--report-file", Arg.Set_string report_file,
       "FILE report output path (implies --report)") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "PPT benchmark harness";
  let ppf = Format.std_formatter in
  if !list_only then begin
    List.iter
      (fun (id, descr, _) -> Format.fprintf ppf "%-8s %s@\n" id descr)
      Figures.all;
    Format.pp_print_flush ppf ()
  end else if !report || !report_file <> "" then begin
    let opts =
      { Figures.flows_scale = !flows_scale; seed = !seed; full = !full }
    in
    let ids = if !only = [] then [ "fig12"; "tab2" ] else !only in
    let path = if !report_file = "" then None else Some !report_file in
    Report.emit ?path ~ids ~micro:(not !skip_micro) opts ppf;
    Format.pp_print_flush ppf ()
  end else begin
    let opts =
      { Figures.flows_scale = !flows_scale; seed = !seed; full = !full }
    in
    let selected =
      match !only with
      | [] -> Figures.all
      | ids ->
        List.map
          (fun id ->
             match Figures.find id with
             | Some e -> e
             | None ->
               raise (Arg.Bad (Printf.sprintf "unknown experiment %s" id)))
          ids
    in
    Format.fprintf ppf
      "PPT reproduction bench (scale=%.2f, seed=%d, fabric=%s)@\n"
      !flows_scale !seed
      (if !full then "full 144-host" else "scaled 32-host");
    List.iter
      (fun (id, _descr, f) ->
         let t0 = Unix.gettimeofday () in
         f opts ppf;
         Format.fprintf ppf "[%s done in %.1fs]@\n" id
           (Unix.gettimeofday () -. t0);
         Format.pp_print_flush ppf ())
      selected;
    if (not !skip_micro) && !only = [] then Micro.run ppf;
    Format.pp_print_flush ppf ()
  end
