(* Bechamel micro-benchmarks of the simulator's hot paths: the event
   heap, the priority queue discipline, CDF sampling, the PRNG, and a
   small end-to-end DCTCP/PPT simulation per iteration. *)

open Bechamel
open Toolkit
open Ppt_engine
open Ppt_netsim

let heap_push_pop () =
  let h = Heap.create ~dummy:0 in
  let rng = Rng.create 7 in
  Staged.stage (fun () ->
      for i = 0 to 255 do
        Heap.push h ~key:(Rng.int rng 1_000_000) ~tie:i i
      done;
      while not (Heap.is_empty h) do
        ignore (Heap.pop_exn h)
      done)

(* Skewed timers through the scheduler itself: roughly half the
   timestamps land inside the calendar wheel's ~262us horizon, the
   rest spread exponentially out to ~1s, so they sit in the overflow
   heap and are re-staged into the wheel as it advances. The plain
   heap micro above cannot see that path. *)
let sim_calendar_skew () =
  let rng = Rng.create 13 in
  let ts =
    Array.init 256 (fun _ ->
        let e = 4 + Rng.int rng 26 in            (* 2^4 .. 2^30 ns *)
        (1 lsl e) + Rng.int rng (1 lsl e))
  in
  Staged.stage (fun () ->
      let sim = Sim.create () in
      Array.iter
        (fun at -> ignore (Sim.schedule_at sim at (fun () -> ())))
        ts;
      Sim.run sim)

let prio_queue_cycle () =
  let q =
    Prio_queue.create
      (Prio_queue.default_config ~buffer_bytes:(Units.mb 4))
  in
  let pkts =
    Array.init 256 (fun i ->
        Packet.make ~seq:i ~payload:1000 ~prio:(i mod 8) ~flow:1 ~src:0
          ~dst:1 Packet.Data)
  in
  Staged.stage (fun () ->
      Array.iter (fun p -> ignore (Prio_queue.enqueue q p)) pkts;
      let rec drain () =
        match Prio_queue.dequeue q with Some _ -> drain () | None -> ()
      in
      drain ())

let cdf_sampling () =
  let rng = Rng.create 11 in
  let cdf = Ppt_workload.Dists.web_search in
  Staged.stage (fun () ->
      for _ = 1 to 64 do
        ignore (Ppt_workload.Cdf.sample cdf rng)
      done)

let rng_floats () =
  let rng = Rng.create 3 in
  Staged.stage (fun () ->
      for _ = 1 to 256 do
        ignore (Rng.float rng)
      done)

(* One tiny end-to-end simulation per iteration: 8 flows over a star. *)
let small_sim factory () =
  Staged.stage (fun () ->
      let sim = Sim.create () in
      let qcfg =
        { (Prio_queue.default_config ~buffer_bytes:(Units.kb 200)) with
          Prio_queue.mark_thresholds =
            Prio_queue.mark_bands ~hp:(Some (Units.kb 60))
              ~lp:(Some (Units.kb 40)) }
      in
      let topo =
        Topology.star ~sim ~n_hosts:4 ~rate:(Units.gbps 10)
          ~delay:(Units.us 2) ~qcfg ()
      in
      let ctx =
        Ppt_transport.Context.of_topology ~rto_min:(Units.ms 1)
          ~rng:(Rng.create 5) topo
      in
      let t = factory ctx in
      for i = 0 to 7 do
        let flow =
          Ppt_transport.Flow.create ~id:i ~src:(i mod 3) ~dst:3
            ~size:30_000 ~start:(i * 1_000)
        in
        ignore
          (Sim.schedule_at sim flow.Ppt_transport.Flow.start (fun () ->
               t.Ppt_transport.Endpoint.t_start flow))
      done;
      Sim.run ~until:(Units.sec 1) sim)

(* The same end-to-end run with the production binary encoder as the
   sink: the cost of tracing every event of the run (event
   construction plus varint encoding into a reused buffer, no file
   I/O). The untraced [small_sim] numbers above are the guard for the
   tracing-off hot path — every instrumentation site is still compiled
   in there, behind the single [!Trace.enabled] load. *)
let small_sim_traced factory () =
  let inner = Staged.unstage (small_sim factory ()) in
  let buf = Buffer.create (1 lsl 20) in
  Staged.stage (fun () ->
      Buffer.clear buf;
      let sink ts ev = Ppt_obs.Event.add_binary buf ~ts ev in
      Ppt_obs.Trace.with_sink sink inner)

let tests =
  Test.make_grouped ~name:"micro" ~fmt:"%s %s"
    [ Test.make ~name:"heap: 256 push+pop" (heap_push_pop ());
      Test.make ~name:"sim: 256 skewed timers" (sim_calendar_skew ());
      Test.make ~name:"prio-queue: 256 enq+deq" (prio_queue_cycle ());
      Test.make ~name:"cdf: 64 samples" (cdf_sampling ());
      Test.make ~name:"rng: 256 floats" (rng_floats ());
      Test.make ~name:"sim: 8-flow dctcp run"
        (small_sim (Ppt_transport.Dctcp.make ()) ());
      Test.make ~name:"sim: 8-flow ppt run"
        (small_sim (Ppt_core.Ppt.make ()) ());
      Test.make ~name:"sim: 8-flow dctcp run traced"
        (small_sim_traced (Ppt_transport.Dctcp.make ()) ()) ]

(* Per-iteration OLS estimates: wall time plus GC allocation, so the
   bench report can track words/iteration alongside ns/iteration. *)
type est = {
  ns : float;          (* ns per iteration *)
  minor_w : float;     (* minor-heap words allocated per iteration *)
  major_w : float;     (* major-heap words allocated per iteration *)
}

(* Measure every test and return (name, est) sorted by name; nan when
   bechamel could not produce an estimate. *)
let estimates_once () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:Measure.[| run |]
  in
  let instances =
    Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let est_of tbl name =
    match Hashtbl.find_opt tbl name with
    | None -> nan
    | Some ols ->
      (match Analyze.OLS.estimates ols with
       | Some [ est ] -> est
       | Some _ | None -> nan)
  in
  let t_ns = Analyze.all ols Instance.monotonic_clock raw in
  let t_minor = Analyze.all ols Instance.minor_allocated raw in
  let t_major = Analyze.all ols Instance.major_allocated raw in
  Hashtbl.fold (fun name _ acc ->
      (name,
       { ns = est_of t_ns name;
         minor_w = est_of t_minor name;
         major_w = est_of t_major name })
      :: acc)
    t_ns []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* [repeat] runs the whole pass that many times and keeps each test's
   minimum-ns estimate (with its companion allocation columns, which
   are deterministic anyway). Background load can only inflate a
   timing, never deflate it, so the minimum over passes is the
   standard rejection for machine noise; the report uses 3. *)
let estimates ?(repeat = 1) () =
  let best : (string, est) Hashtbl.t = Hashtbl.create 16 in
  for _ = 1 to repeat do
    List.iter
      (fun (name, (e : est)) ->
         match Hashtbl.find_opt best name with
         | Some prev
           when Float.is_nan e.ns
                || (not (Float.is_nan prev.ns) && prev.ns <= e.ns) ->
           ()
         | Some _ | None -> Hashtbl.replace best name e)
      (estimates_once ())
  done;
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run ppf =
  Format.fprintf ppf
    "@\n== micro-benchmarks (bechamel, per iteration) ==@\n";
  List.iter (fun (name, e) ->
      if Float.is_nan e.ns then
        Format.fprintf ppf "  %-32s (no estimate)@\n" name
      else
        Format.fprintf ppf "  %-32s %12.1f ns %12.1f minor words@\n"
          name e.ns e.minor_w)
    (estimates ())
