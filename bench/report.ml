(* Machine-readable performance report: runs a set of macro
   experiments (wall-clock seconds and simulator events/second) plus
   the bechamel micro-benchmarks, and writes the results to a
   BENCH_<rev>.json file so perf regressions can be tracked across
   revisions (schema documented in HACKING.md).

   Macro experiments run through the sharded sweep runner
   (lib/harness/parallel.ml), so [jobs] > 1 times the same work
   fanned out across worker processes; the report records the jobs
   count and each shard's wall so speedups are attributable. *)

open Ppt_harness

(* v3: micros report GC allocation (minor/major words per iteration)
   next to ns, and every macro shard carries its worker's Gc counters
   (minor/major words, peak heap) — see HACKING.md for the layout. *)
let schema_version = 3

let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

type macro = {
  m_id : string;
  m_wall_s : float;
  m_events : int;
  m_shards : Parallel.shard_info list;
}

let run_macro ?(jobs = 1) (opts : Figures.opts) id =
  (match Figures.find id with
   | None ->
     invalid_arg (Printf.sprintf "Report: unknown experiment %s" id)
   | Some e ->
     (* print-only tables process no simulator events: timing them
        yields a degenerate `wall_s: 0.000, events: 0` row that only
        dilutes the report *)
     if not e.Figures.e_sim then
       invalid_arg
         (Printf.sprintf
            "Report: %s is print-only (no simulation) and cannot be a \
             macro benchmark"
            id));
  let r = Parallel.sweep ~jobs ~ids:[ id ] opts in
  (match r.Parallel.failures with
   | (key, msg) :: _ ->
     invalid_arg (Printf.sprintf "Report: shard %s failed: %s" key msg)
   | [] -> ());
  if r.Parallel.events = 0 then
    invalid_arg
      (Printf.sprintf "Report: %s processed zero simulator events" id);
  { m_id = id; m_wall_s = r.Parallel.wall; m_events = r.Parallel.events;
    m_shards = r.Parallel.shards }

(* Hand-rolled JSON writer; the strings involved are experiment ids,
   test names and a git revision, but escape defensively anyway. *)
let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float b f =
  if Float.is_nan f then Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.3f" f)

let to_json ~rev ~(opts : Figures.opts) ~jobs ~micros ~macros =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": %d,\n" schema_version);
  Buffer.add_string b "  \"rev\": ";
  json_string b rev;
  Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"flows_scale\": %g,\n" opts.Figures.flows_scale);
  Buffer.add_string b
    (Printf.sprintf "  \"seed\": %d,\n" opts.Figures.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"full\": %b,\n" opts.Figures.full);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b "  \"micro\": {";
  List.iteri
    (fun i (name, (e : Micro.est)) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n    ";
       json_string b name;
       Buffer.add_string b ": { \"ns\": ";
       json_float b e.Micro.ns;
       Buffer.add_string b ", \"minor_words\": ";
       json_float b e.Micro.minor_w;
       Buffer.add_string b ", \"major_words\": ";
       json_float b e.Micro.major_w;
       Buffer.add_string b " }")
    micros;
  if micros <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n";
  Buffer.add_string b "  \"macro\": [";
  List.iteri
    (fun i m ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n    { \"id\": ";
       json_string b m.m_id;
       Buffer.add_string b
         (Printf.sprintf ", \"wall_s\": %.3f, \"events\": %d" m.m_wall_s
            m.m_events);
       Buffer.add_string b ", \"events_per_sec\": ";
       json_float b
         (if m.m_wall_s > 0. then float_of_int m.m_events /. m.m_wall_s
          else nan);
       Buffer.add_string b ",\n      \"shards\": [";
       List.iteri
         (fun j (s : Parallel.shard_info) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b "\n        { \"key\": ";
            json_string b s.Parallel.sh_key;
            Buffer.add_string b
              (Printf.sprintf ", \"wall_s\": %.3f, \"events\": %d"
                 s.Parallel.sh_wall s.Parallel.sh_events);
            (match s.Parallel.sh_gc with
             | None -> ()
             | Some g ->
               Buffer.add_string b ",\n          \"gc\": { \"minor_words\": ";
               json_float b g.Parallel.g_minor_words;
               Buffer.add_string b ", \"major_words\": ";
               json_float b g.Parallel.g_major_words;
               Buffer.add_string b
                 (Printf.sprintf ", \"top_heap_words\": %d }"
                    g.Parallel.g_top_heap_words));
            Buffer.add_string b " }")
         m.m_shards;
       if m.m_shards <> [] then Buffer.add_string b "\n      ";
       Buffer.add_string b "] }")
    macros;
  if macros <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(* Run the report and write it to [path] (default BENCH_<rev>.json).
   [ids] are the macro experiments to time (simulating experiments
   only); [jobs] fans each one out over worker processes; [micro]
   includes the bechamel suite. Progress goes to [ppf]. *)
let emit ?path ?(ids = [ "fig12" ]) ?(jobs = 1) ?(micro = true)
    ?(micro_repeat = 3) (opts : Figures.opts) ppf =
  let rev = git_rev () in
  let path =
    match path with
    | Some p -> p
    | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  (* Micros first: they are nanosecond-scale OLS fits and want a
     settled machine, which a box still cooling down from a multi-way
     parallel sweep is not (the skewed-timers reference reads ~20%
     high right after one). The macro walls are tens of seconds and
     insensitive to ordering. *)
  let micros =
    if micro then begin
      Format.fprintf ppf "report: running micro-benchmarks ...@.";
      Micro.estimates ~repeat:micro_repeat ()
    end else []
  in
  let macros =
    List.map
      (fun id ->
         Format.fprintf ppf "report: running %s (jobs=%d) ...@." id jobs;
         let m = run_macro ~jobs opts id in
         Format.fprintf ppf
           "report: %s %.1fs, %d events (%.2e events/s)@." id m.m_wall_s
           m.m_events
           (float_of_int m.m_events /. m.m_wall_s);
         m)
      ids
  in
  let oc = open_out path in
  output_string oc (to_json ~rev ~opts ~jobs ~micros ~macros);
  close_out oc;
  Format.fprintf ppf "report: wrote %s@." path
