(* ppt_trace: inspect event traces written by `ppt_sim run --trace`
   (or any Ppt_obs.Trace sink).

     ppt_trace summary out.jsonl
     ppt_trace diff a.jsonl b.jsonl
     ppt_trace decode out.bin > out.jsonl

   `summary` prints event counts, per-port occupancy peaks and the
   mark rate; `diff` compares two traces event for event (the
   encoding is canonical, so equal events are equal lines) and, when
   they diverge, shows the first differing line plus the per-event
   count deltas; `decode` turns a binary trace (`--trace-fmt bin`)
   into the byte-identical canonical JSONL. *)

open Cmdliner
open Ppt_obs

let fold_lines path f init =
  let ic = open_in path in
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> close_in ic; acc
    | line -> go (lineno + 1) (f lineno line acc)
  in
  go 1 init

let parse_or_fail path lineno line =
  match Event.of_json_line line with
  | Some tev -> tev
  | None ->
    Printf.eprintf "%s:%d: unparseable event: %s\n" path lineno line;
    exit 2

(* ---- summary ---- *)

let summarize path =
  let events =
    List.rev
      (fold_lines path
         (fun lineno line acc -> parse_or_fail path lineno line :: acc)
         [])
  in
  Summary.of_list events

let summary_cmd =
  let file_arg =
    let doc = "JSONL event trace to summarize." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run path =
    Format.printf "%a@." Summary.pp (summarize path);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "summary" ~doc:"Summarize one event trace")
    Term.(ret (const run $ file_arg))

(* ---- diff ---- *)

let read_lines path =
  List.rev (fold_lines path (fun _ line acc -> line :: acc) [])

let count_deltas a b =
  let tags tr =
    List.fold_left
      (fun acc (_, ev) ->
         let tag = Event.tag ev in
         let n = try List.assoc tag acc with Not_found -> 0 in
         (tag, n + 1) :: List.remove_assoc tag acc)
      [] tr
  in
  let ta = tags a and tb = tags b in
  let all =
    List.sort_uniq compare (List.map fst ta @ List.map fst tb)
  in
  List.filter_map
    (fun tag ->
       let get t = try List.assoc tag t with Not_found -> 0 in
       let na = get ta and nb = get tb in
       if na = nb then None else Some (tag, na, nb))
    all

let diff_cmd =
  let file_a =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"A" ~doc:"First trace.")
  in
  let file_b =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"B" ~doc:"Second trace.")
  in
  let run pa pb =
    let la = read_lines pa and lb = read_lines pb in
    let rec first_diff i = function
      | [], [] -> None
      | a :: ra, b :: rb ->
        if String.equal a b then first_diff (i + 1) (ra, rb)
        else Some (i, Some a, Some b)
      | a :: _, [] -> Some (i, Some a, None)
      | [], b :: _ -> Some (i, None, Some b)
    in
    match first_diff 1 (la, lb) with
    | None ->
      Format.printf "traces identical (%d events)@." (List.length la);
      `Ok ()
    | Some (lineno, ea, eb) ->
      Format.printf "traces differ at line %d:@." lineno;
      Format.printf "  %s: %s@." pa
        (Option.value ea ~default:"<end of trace>");
      Format.printf "  %s: %s@." pb
        (Option.value eb ~default:"<end of trace>");
      let parse path =
        List.rev
          (fold_lines path
             (fun l line acc -> parse_or_fail path l line :: acc)
             [])
      in
      let deltas = count_deltas (parse pa) (parse pb) in
      if deltas <> [] then begin
        Format.printf "event-count deltas:@.";
        List.iter
          (fun (tag, na, nb) ->
             Format.printf "  %-12s %d vs %d@." tag na nb)
          deltas
      end;
      Format.printf "(%d vs %d events total)@." (List.length la)
        (List.length lb);
      `Error (false, "traces differ")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two event traces event for event")
    Term.(ret (const run $ file_a $ file_b))

(* ---- decode ---- *)

let decode_cmd =
  let file_arg =
    let doc = "Binary event trace (written with --trace-fmt bin)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the JSONL to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run path out =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let magic = Event.bin_magic in
    let mlen = String.length magic in
    if String.length s < mlen || String.sub s 0 mlen <> magic then
      `Error (false, path ^ ": not a PPT binary trace (bad magic)")
    else begin
      let oc =
        match out with None -> stdout | Some p -> open_out p
      in
      let buf = Buffer.create 65536 in
      let pos = ref mlen in
      (try
         let rec go () =
           match Event.of_binary s pos with
           | None -> ()
           | Some (ts, ev) ->
             Buffer.add_string buf (Event.to_json_line ~ts ev);
             Buffer.add_char buf '\n';
             if Buffer.length buf >= 65536 then begin
               Buffer.output_buffer oc buf;
               Buffer.clear buf
             end;
             go ()
         in
         go ()
       with Failure msg ->
         Buffer.output_buffer oc buf;
         if out <> None then close_out oc;
         Printf.eprintf "%s: %s\n" path msg;
         exit 2);
      Buffer.output_buffer oc buf;
      if out <> None then close_out oc else flush oc;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "decode"
       ~doc:
         "Decode a binary event trace into canonical JSONL \
          (byte-identical to a JSONL trace of the same run)")
    Term.(ret (const run $ file_arg $ out_arg))

let () =
  let doc = "Summarize and diff PPT structured event traces" in
  let info = Cmd.info "ppt_trace" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ summary_cmd; diff_cmd; decode_cmd ]))
