(* ppt_sim: command-line front end for the PPT simulator.

     ppt_sim list
     ppt_sim run --topo oversub --scheme ppt --workload web-search \
                 --load 0.5 --flows 500
     ppt_sim compare --topo testbed --load 0.7
     ppt_sim figure fig12 [--flows-scale 0.5] [--full]              *)

open Cmdliner
open Ppt_harness

let scheme_names =
  [ ("ppt", Schemes.ppt); ("dctcp", Schemes.dctcp); ("rc3", Schemes.rc3);
    ("pias", Schemes.pias); ("swift", Schemes.swift);
    ("ppt-swift", Schemes.ppt_swift); ("homa", Schemes.homa);
    ("aeolus", Schemes.aeolus); ("ndp", Schemes.ndp);
    ("hpcc", Schemes.hpcc);
    ("tcp", Schemes.tcp); ("tcp-10", Schemes.tcp10);
    ("halfback", Schemes.halfback);
    ("expresspass", Schemes.expresspass);
    ("ppt-hpcc", Schemes.ppt_hpcc);
    ("ppt-no-lcp-ecn", Schemes.ppt_no_lcp_ecn);
    ("ppt-no-ewd", Schemes.ppt_no_ewd);
    ("ppt-no-sched", Schemes.ppt_no_sched);
    ("ppt-no-ident", Schemes.ppt_no_ident) ]

let topo_of_name name ~flows ~load ~seed ~scale =
  match name with
  | "testbed" -> Config.testbed ~n_flows:flows ~load ~seed ()
  | "oversub" -> Config.oversub ~scale ~n_flows:flows ~load ~seed ()
  | "fast" -> Config.fast ~scale ~n_flows:flows ~load ~seed ()
  | "non-oversub" ->
    Config.non_oversub ~scale ~n_flows:flows ~load ~seed ()
  | "dumbbell" -> Config.dumbbell ~n_flows:flows ~load ~seed ()
  | other -> failwith ("unknown topology: " ^ other)

let pp_result r =
  let s = r.Runner.summary in
  Format.printf
    "@[<v>scheme        %s@,\
     topology      %s@,\
     workload      %s @@ load %.2f@,\
     flows         %d/%d completed@,\
     overall avg   %.4f ms@,\
     small avg     %.4f ms@,\
     small p99     %.4f ms@,\
     large avg     %.4f ms@,\
     retransmits   %d@,\
     drops/marks   %d/%d@,\
     lcp payload   %d KB (efficiency %.3f)@,\
     sim events    %d@]@."
    r.Runner.r_scheme r.Runner.r_config.Config.name
    r.Runner.r_config.Config.workload_name r.Runner.r_config.Config.load
    r.Runner.completed r.Runner.requested
    s.Ppt_stats.Fct.overall_avg s.Ppt_stats.Fct.small_avg
    s.Ppt_stats.Fct.small_p99 s.Ppt_stats.Fct.large_avg
    s.Ppt_stats.Fct.total_retrans r.Runner.drops r.Runner.marks
    (s.Ppt_stats.Fct.lcp_bytes / 1000)
    r.Runner.lp_efficiency r.Runner.events

(* ---- common options ---- *)

let topo_arg =
  let doc =
    "Topology: testbed, oversub, fast, non-oversub or dumbbell."
  in
  Arg.(value & opt string "oversub" & info [ "topo" ] ~docv:"NAME" ~doc)

let workload_arg =
  let doc = "Workload: web-search, data-mining or memcached." in
  Arg.(value & opt string "web-search"
       & info [ "workload" ] ~docv:"NAME" ~doc)

let load_arg =
  let doc = "Target network load in (0, 1]." in
  Arg.(value & opt float 0.5 & info [ "load" ] ~docv:"L" ~doc)

let flows_arg =
  let doc = "Number of flows to simulate." in
  Arg.(value & opt int 500 & info [ "flows" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let full_arg =
  let doc = "Use the full-size 144-host fabric (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let verbose_arg =
  let doc = "Enable debug logging (loop lifecycle, RTOs, recovery)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let incast_arg =
  let doc = "Run an N-to-1 incast pattern instead of all-to-all." in
  Arg.(value & opt (some int) None & info [ "incast" ] ~docv:"N" ~doc)

let config_of ~topo ~workload ~load ~flows ~seed ~full ~incast =
  let scale = if full then 9 else 4 in
  let cfg = topo_of_name topo ~flows ~load ~seed ~scale in
  let cfg =
    Config.with_workload ~name:workload
      (Ppt_workload.Dists.by_name workload) cfg
  in
  match incast with
  | None -> cfg
  | Some n -> { cfg with Config.pattern = Config.Incast { n_senders = n } }

(* ---- run ---- *)

let dump_fcts path records =
  let oc = open_out path in
  output_string oc
    "flow,size_bytes,start_ns,fct_ns,retrans,hcp_payload,lcp_payload\n";
  List.iter
    (fun (r : Ppt_stats.Fct.record) ->
       Printf.fprintf oc "%d,%d,%d,%d,%d,%d,%d\n" r.Ppt_stats.Fct.flow
         r.Ppt_stats.Fct.size r.Ppt_stats.Fct.start
         (r.Ppt_stats.Fct.finish - r.Ppt_stats.Fct.start)
         r.Ppt_stats.Fct.retrans r.Ppt_stats.Fct.hcp_payload
         r.Ppt_stats.Fct.lcp_payload)
    records;
  close_out oc

let run_cmd =
  let scheme_arg =
    let doc = "Transport scheme to run (see $(b,ppt_sim list))." in
    Arg.(value & opt string "ppt" & info [ "scheme" ] ~docv:"NAME" ~doc)
  in
  let dump_arg =
    let doc = "Write per-flow results as CSV to $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "dump-fcts" ] ~docv:"FILE" ~doc)
  in
  let trace_in_arg =
    let doc =
      "Replay a flow trace from $(docv) (CSV: id,src,dst,size_bytes,       start_ns) instead of generating one."
    in
    Arg.(value & opt (some string) None
         & info [ "trace-in" ] ~docv:"FILE" ~doc)
  in
  let trace_out_arg =
    let doc = "Write the generated flow trace as CSV to $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let trace_events_arg =
    let doc =
      "Write a structured event trace (packet lifecycle, transport \
       state, probes) to $(docv); inspect it with $(b,ppt_trace)."
    in
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_fmt_arg =
    let doc =
      "Event trace format (with $(b,--trace)): $(b,json) writes \
       canonical JSONL, $(b,bin) the compact binary encoding \
       ($(b,ppt_trace decode) turns it back into identical JSONL)."
    in
    Arg.(value
         & opt (enum [ ("json", Config.Json); ("bin", Config.Bin) ])
             Config.Json
         & info [ "trace-fmt" ] ~docv:"FMT" ~doc)
  in
  let probe_us_arg =
    let doc =
      "Queue/link/DT probe sampling interval in microseconds (with \
       $(b,--trace))."
    in
    Arg.(value & opt int 100 & info [ "probe-interval" ] ~docv:"US" ~doc)
  in
  let faults_arg =
    let doc =
      "Inject deterministic faults from $(docv), e.g. \
       'down@2ms-5ms:link:3; ber=1e-5@0ms-50ms:core'. Clauses are \
       KIND@FROM-UNTIL:SELECTOR separated by ';' — see HACKING.md \
       for the full grammar."
    in
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let read_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let run topo scheme workload load flows seed full incast dump
      trace_in trace_out trace_events trace_fmt probe_us faults verbose =
    setup_logs verbose;
    match List.assoc_opt scheme scheme_names with
    | None -> `Error (false, "unknown scheme: " ^ scheme)
    | Some s ->
      let cfg = config_of ~topo ~workload ~load ~flows ~seed ~full ~incast in
      let cfg =
        match trace_events with
        | None -> cfg
        | Some path ->
          Config.with_trace ~path ~fmt:trace_fmt
            ~probe_interval:(Ppt_engine.Units.us probe_us) cfg
      in
      (match
         Option.map Ppt_faults.Fault_spec.of_string faults
       with
       | Some (Error e) -> `Error (false, "bad --faults spec: " ^ e)
       | (None | Some (Ok _)) as parsed ->
      let cfg =
        match parsed with
        | Some (Ok spec) -> Config.with_faults spec cfg
        | _ -> cfg
      in
      let trace =
        Option.map
          (fun path -> Ppt_workload.Trace.of_csv (read_file path))
          trace_in
      in
      let r = Runner.run ?trace cfg s in
      pp_result r;
      if faults <> None then
        Format.printf "fault drops   %d@." r.Runner.fault_drops;
      (match trace_events with
       | Some path -> Format.printf "event trace written to %s@." path
       | None -> ());
      (match trace_out with
       | Some path ->
         let oc = open_out path in
         output_string oc (Ppt_workload.Trace.to_csv r.Runner.trace);
         close_out oc;
         Format.printf "trace written to %s@." path
       | None -> ());
      (match dump with
       | Some path ->
         dump_fcts path r.Runner.records;
         Format.printf "per-flow results written to %s@." path
       | None -> ());
      `Ok ())
  in
  let term =
    Term.(ret (const run $ topo_arg $ scheme_arg $ workload_arg
               $ load_arg $ flows_arg $ seed_arg $ full_arg $ incast_arg
               $ dump_arg $ trace_in_arg $ trace_out_arg
               $ trace_events_arg $ trace_fmt_arg $ probe_us_arg
               $ faults_arg $ verbose_arg))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one transport over one workload") term

(* ---- compare ---- *)

let compare_cmd =
  let run topo workload load flows seed full incast =
    let cfg = config_of ~topo ~workload ~load ~flows ~seed ~full ~incast in
    let ppf = Format.std_formatter in
    Ppt_stats.Table.header ppf
      [ "overall"; "small-avg"; "small-p99"; "large-avg" ];
    List.iter
      (fun s ->
         let r = Runner.run cfg s in
         let sm = r.Runner.summary in
         Ppt_stats.Table.row ppf r.Runner.r_scheme
           [ sm.Ppt_stats.Fct.overall_avg; sm.Ppt_stats.Fct.small_avg;
             sm.Ppt_stats.Fct.small_p99; sm.Ppt_stats.Fct.large_avg ])
      Schemes.headline;
    Format.pp_print_flush ppf ();
    `Ok ()
  in
  let term =
    Term.(ret (const run $ topo_arg $ workload_arg $ load_arg $ flows_arg
               $ seed_arg $ full_arg $ incast_arg))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run the six headline schemes over one configuration")
    term

(* ---- figure ---- *)

let figure_cmd =
  let id_arg =
    let doc = "Experiment id (fig1..fig29, tab1..tab5)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let flows_scale_arg =
    let doc = "Scale every experiment's flow count." in
    Arg.(value & opt float 1.0 & info [ "flows-scale" ] ~docv:"F" ~doc)
  in
  let run id flows_scale seed full =
    match Figures.find id with
    | None -> `Error (false, "unknown experiment id: " ^ id)
    | Some e ->
      let opts = { Figures.flows_scale; seed; full } in
      Figures.render e opts Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ();
      `Ok ()
  in
  let term =
    Term.(ret (const run $ id_arg $ flows_scale_arg $ seed_arg $ full_arg))
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures/tables")
    term

(* ---- sweep ---- *)

let sweep_cmd =
  let ids_arg =
    let doc =
      "Experiment ids to sweep (default: every registered experiment)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let flows_scale_arg =
    let doc = "Scale every experiment's flow count." in
    Arg.(value & opt float 1.0 & info [ "flows-scale" ] ~docv:"F" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker processes. 1 runs the units serially in-process; either \
       way the merged output is byte-identical."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-shard timeout in seconds; a shard exceeding it is killed \
       and retried on a fresh worker."
    in
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume from the shard journal under $(b,_sweep/): shards a \
       previous (possibly killed) sweep of the same ids and options \
       already completed are not re-run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-shard progress on stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run ids flows_scale seed full jobs timeout resume quiet =
    let ids =
      match ids with
      | [] -> List.map (fun e -> e.Figures.e_id) Figures.all
      | ids -> ids
    in
    match
      List.find_opt (fun id -> Figures.find id = None) ids
    with
    | Some id -> `Error (false, "unknown experiment id: " ^ id)
    | None ->
      let opts = { Figures.flows_scale; seed; full } in
      let progress =
        if quiet then ignore
        else fun key -> Printf.eprintf "[sweep] done %s\n%!" key
      in
      let journal = Parallel.default_journal ids opts in
      let r =
        Parallel.sweep ~jobs ?timeout ~journal ~resume ~progress ~ids
          opts
      in
      (* results on stdout — byte-identical across --jobs values;
         everything else on stderr *)
      print_string r.Parallel.output;
      flush stdout;
      Printf.eprintf
        "[sweep] %d shard(s), jobs=%d, wall=%.2fs, events=%d%s%s\n%!"
        (List.length r.Parallel.shards)
        r.Parallel.jobs r.Parallel.wall r.Parallel.events
        (if r.Parallel.resumed > 0 then
           Printf.sprintf ", resumed=%d" r.Parallel.resumed
         else "")
        (match r.Parallel.failures with
         | [] -> ""
         | fs -> Printf.sprintf ", FAILED=%d" (List.length fs));
      List.iter
        (fun (key, msg) ->
           Printf.eprintf "[sweep] failed shard %s: %s\n%!" key msg)
        r.Parallel.failures;
      if r.Parallel.failures = [] then `Ok ()
      else `Error (false, "sweep finished with failed shards")
  in
  let term =
    Term.(ret (const run $ ids_arg $ flows_scale_arg $ seed_arg
               $ full_arg $ jobs_arg $ timeout_arg $ resume_arg
               $ quiet_arg))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run experiments as a sharded sweep across worker processes")
    term

(* ---- list ---- *)

let list_cmd =
  let run () =
    Format.printf "schemes:@.";
    List.iter (fun (n, _) -> Format.printf "  %s@." n) scheme_names;
    Format.printf "topologies: testbed oversub fast non-oversub dumbbell@.";
    Format.printf "workloads: web-search data-mining memcached@.";
    Format.printf "experiments:@.";
    List.iter
      (fun e ->
         Format.printf "  %-8s %s@." e.Figures.e_id e.Figures.e_descr)
      Figures.all;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List schemes, topologies and experiments")
    Term.(ret (const run $ const ()))

let () =
  let doc = "PPT: a pragmatic transport for datacenters (simulator)" in
  let info = Cmd.info "ppt_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ run_cmd; compare_cmd; figure_cmd; sweep_cmd;
                      list_cmd ]))
