(* Unit and property tests for the network substrate: packets, the
   strict-priority queue discipline, links, topologies and routing. *)

open Ppt_engine
open Ppt_netsim

let check = Alcotest.check

let mk_pkt ?(prio = 0) ?(payload = 1000) ?(ecn = false) ?(sel_drop = false)
    ?(kind = Packet.Data) ?(seq = 0) () =
  Packet.make ~seq ~payload ~prio ~ecn_capable:ecn ~sel_drop ~flow:1
    ~src:0 ~dst:1 kind

(* --- packets --------------------------------------------------------- *)

let test_packet_sizes () =
  let d = mk_pkt ~payload:1460 () in
  check Alcotest.int "data wire size" 1500 d.Packet.wire;
  let a = mk_pkt ~kind:Packet.Ack () in
  check Alcotest.int "ack wire size" Packet.ctrl_bytes a.Packet.wire

let test_segmentation () =
  check Alcotest.int "0 bytes" 0 (Packet.segments_of_bytes 0);
  check Alcotest.int "1 byte" 1 (Packet.segments_of_bytes 1);
  check Alcotest.int "exactly one segment" 1
    (Packet.segments_of_bytes Packet.max_payload);
  check Alcotest.int "one byte over" 2
    (Packet.segments_of_bytes (Packet.max_payload + 1))

(* --- packet pool ----------------------------------------------------- *)

(* Drive the process-global pool with a random make/release schedule.
   Invariants: [make] never hands out a packet that is still live (no
   aliasing), and a recycled record comes back with every mutable field
   reset even after the previous owner dirtied it. *)
type Packet.meta += Test_meta

let prop_pool_invariants =
  QCheck.Test.make
    ~name:"packet pool: no aliasing, recycled packets are clean"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) bool)
    (fun ops ->
       let live = ref [] in
       let n = ref 0 in
       List.iter
         (fun mk ->
            if mk || !live = [] then begin
              incr n;
              let p =
                Packet.make ~seq:!n ~payload:100 ~prio:(!n mod 8)
                  ~flow:!n ~src:0 ~dst:1 Packet.Data
              in
              if p.Packet.ecn_ce || p.Packet.trimmed || p.Packet.sel_drop
                 || Packet.tel_count p <> 0
                 || p.Packet.seq <> !n || p.Packet.flow <> !n
                 || (match p.Packet.meta with
                     | Packet.No_meta -> false
                     | _ -> true)
              then failwith "stale fields on a recycled packet";
              if List.exists (fun q -> q == p) !live then
                failwith "pool handed out a live packet";
              (* dirty every resettable field so a recycle without a
                 reset is caught on the next acquire *)
              p.Packet.ecn_ce <- true;
              p.Packet.trimmed <- true;
              p.Packet.sel_drop <- true;
              p.Packet.meta <- Test_meta;
              Packet.tel_push p ~qlen:1 ~tx_bytes:2 ~ts:3 ~rate:4;
              live := p :: !live
            end
            else
              match !live with
              | p :: rest -> Packet.release p; live := rest
              | [] -> ())
         ops;
       List.iter Packet.release !live;
       true)

(* Debug mode turns ownership bugs into loud failures. *)
let test_pool_debug_checks () =
  Packet.set_debug true;
  Fun.protect ~finally:(fun () -> Packet.set_debug false)
    (fun () ->
       let p = Packet.make ~flow:1 ~src:0 ~dst:1 Packet.Data in
       Packet.release p;
       (try
          Packet.release p;
          Alcotest.fail "double release not detected"
        with Invalid_argument _ -> ());
       (try
          Packet.assert_live p;
          Alcotest.fail "use after release not detected"
        with Invalid_argument _ -> ());
       (* drain the poisoned packet back out so later tests see a
          healthy pool *)
       let q = Packet.make ~flow:2 ~src:0 ~dst:1 Packet.Data in
       Packet.assert_live q;
       check Alcotest.int "recycled with fresh identity" 2
         q.Packet.flow;
       Packet.release q)

let prop_segment_payloads_sum =
  QCheck.Test.make ~name:"segment payloads sum to the flow size"
    ~count:300
    QCheck.(int_range 1 5_000_000)
    (fun flow_bytes ->
       let n = Packet.segments_of_bytes flow_bytes in
       let total = ref 0 in
       for seq = 0 to n - 1 do
         let p = Packet.segment_payload ~flow_bytes ~seq in
         if p <= 0 || p > Packet.max_payload then raise Exit;
         total := !total + p
       done;
       !total = flow_bytes)

(* --- priority queue --------------------------------------------------- *)

let qcfg ?(buffer = 10_000) ?(thresholds = Prio_queue.no_marking)
    ?(trim = false) ?sel_drop ?lp_cap () =
  { Prio_queue.buffer_bytes = buffer;
    mark_thresholds = thresholds;
    mark_basis = Prio_queue.Port_occupancy;
    trim;
    sel_drop_threshold = sel_drop;
    lp_buffer_cap = lp_cap;
    dt_alphas = None }

let test_strict_priority_order () =
  let q = Prio_queue.create (qcfg ()) in
  let low = mk_pkt ~prio:5 () and high = mk_pkt ~prio:1 () in
  ignore (Prio_queue.enqueue q low);
  ignore (Prio_queue.enqueue q high);
  (match Prio_queue.dequeue q with
   | Some p -> check Alcotest.int "high first" 1 p.Packet.prio
   | None -> Alcotest.fail "empty");
  (match Prio_queue.dequeue q with
   | Some p -> check Alcotest.int "then low" 5 p.Packet.prio
   | None -> Alcotest.fail "empty")

let test_fifo_within_priority () =
  let q = Prio_queue.create (qcfg ()) in
  let a = mk_pkt ~seq:1 () and b = mk_pkt ~seq:2 () in
  ignore (Prio_queue.enqueue q a);
  ignore (Prio_queue.enqueue q b);
  (match Prio_queue.dequeue q with
   | Some p -> check Alcotest.int "fifo" 1 p.Packet.seq
   | None -> Alcotest.fail "empty")

let test_drop_tail () =
  let q = Prio_queue.create (qcfg ~buffer:2_500 ()) in
  check Alcotest.bool "first fits" true
    (Prio_queue.enqueue q (mk_pkt ()) = Prio_queue.Enqueued);
  check Alcotest.bool "second fits" true
    (Prio_queue.enqueue q (mk_pkt ()) = Prio_queue.Enqueued);
  check Alcotest.bool "third dropped" true
    (Prio_queue.enqueue q (mk_pkt ()) = Prio_queue.Dropped);
  check Alcotest.int "drop counter" 1 (Prio_queue.drops q)

let test_ecn_marking_bands () =
  (* each data packet below is 1000B payload = 1040B wire *)
  let thresholds = Prio_queue.mark_bands ~hp:(Some 5_000) ~lp:(Some 1_000) in
  let q = Prio_queue.create (qcfg ~buffer:100_000 ~thresholds ()) in
  let first = mk_pkt ~prio:0 ~ecn:true () in
  ignore (Prio_queue.enqueue q first);              (* occupancy 1040 *)
  check Alcotest.bool "hp packet under both thresholds unmarked" false
    first.Packet.ecn_ce;
  let lp = mk_pkt ~prio:5 ~ecn:true () in
  ignore (Prio_queue.enqueue q lp);                 (* occupancy 2080 *)
  check Alcotest.bool "lp packet marked above its threshold" true
    lp.Packet.ecn_ce;
  let hp = mk_pkt ~prio:0 ~ecn:true () in
  ignore (Prio_queue.enqueue q hp);                 (* occupancy 3120 *)
  check Alcotest.bool "hp packet below its threshold unmarked" false
    hp.Packet.ecn_ce;
  ignore (Prio_queue.enqueue q (mk_pkt ~prio:0 ~ecn:true ()));  (* 4160 *)
  let hp2 = mk_pkt ~prio:0 ~ecn:true () in
  ignore (Prio_queue.enqueue q hp2);                (* occupancy 5200 *)
  check Alcotest.bool "hp packet above threshold marked" true
    hp2.Packet.ecn_ce

let test_no_mark_without_capability () =
  let thresholds = Prio_queue.mark_bands ~hp:(Some 0) ~lp:(Some 0) in
  let q = Prio_queue.create (qcfg ~buffer:100_000 ~thresholds ()) in
  let p = mk_pkt ~ecn:false () in
  ignore (Prio_queue.enqueue q p);
  check Alcotest.bool "non-capable never marked" false p.Packet.ecn_ce

let test_trimming () =
  let q = Prio_queue.create (qcfg ~buffer:2_000 ~trim:true ()) in
  ignore (Prio_queue.enqueue q (mk_pkt ()));
  let p = mk_pkt ~prio:3 () in
  let v = Prio_queue.enqueue q p in
  check Alcotest.bool "second packet trimmed" true (v = Prio_queue.Trimmed);
  check Alcotest.bool "flag set" true p.Packet.trimmed;
  check Alcotest.int "header at top priority" 0 p.Packet.prio;
  check Alcotest.int "wire shrunk" Prio_queue.trim_wire_bytes p.Packet.wire

let test_selective_drop () =
  let q = Prio_queue.create (qcfg ~buffer:100_000 ~sel_drop:1_500 ()) in
  ignore (Prio_queue.enqueue q (mk_pkt ()));
  let p = mk_pkt ~sel_drop:true () in
  check Alcotest.bool "sel-drop packet dropped above threshold" true
    (Prio_queue.enqueue q p = Prio_queue.Dropped);
  let n = mk_pkt () in
  check Alcotest.bool "normal packet unaffected" true
    (Prio_queue.enqueue q n = Prio_queue.Enqueued)

let test_lp_buffer_cap () =
  let q = Prio_queue.create (qcfg ~buffer:100_000 ~lp_cap:2_000 ()) in
  ignore (Prio_queue.enqueue q (mk_pkt ~prio:5 ()));
  check Alcotest.bool "lp band capped" true
    (Prio_queue.enqueue q (mk_pkt ~prio:6 ()) = Prio_queue.Dropped);
  check Alcotest.bool "hp band unaffected" true
    (Prio_queue.enqueue q (mk_pkt ~prio:0 ()) = Prio_queue.Enqueued)

let test_dynamic_threshold () =
  (* alpha 1.0 on the low band: an LP queue may only hold as many
     bytes as remain free in the whole buffer *)
  let cfg =
    { (qcfg ~buffer:10_000 ()) with
      Prio_queue.dt_alphas = Some (Prio_queue.dt_bands ~hp:8.0 ~lp:1.0) }
  in
  let q = Prio_queue.create cfg in
  (* fill 7280B with high-priority traffic: free = 2720 *)
  for _ = 1 to 7 do
    ignore (Prio_queue.enqueue q (mk_pkt ~prio:0 ()))
  done;
  check Alcotest.bool "first lp packet fits (1040 <= 2720-1040...)" true
    (Prio_queue.enqueue q (mk_pkt ~prio:5 ()) = Prio_queue.Enqueued);
  (* lp queue now 1040B; free = 1640; next lp needs 2080 <= 1640 *)
  check Alcotest.bool "second lp packet squeezed out" true
    (Prio_queue.enqueue q (mk_pkt ~prio:5 ()) = Prio_queue.Dropped);
  (* high band with alpha 8 is still admitted *)
  check Alcotest.bool "hp packet still admitted" true
    (Prio_queue.enqueue q (mk_pkt ~prio:0 ()) = Prio_queue.Enqueued)

let prop_queue_byte_accounting =
  QCheck.Test.make ~name:"queue byte counters stay consistent" ~count:200
    QCheck.(list (pair (int_bound 7) (int_range 1 1460)))
    (fun ops ->
       let q = Prio_queue.create (qcfg ~buffer:1_000_000 ()) in
       List.iter
         (fun (prio, payload) ->
            ignore (Prio_queue.enqueue q (mk_pkt ~prio ~payload ())))
         ops;
       let enqueued = Prio_queue.bytes q in
       let sum = ref 0 in
       let rec drain () =
         match Prio_queue.dequeue q with
         | Some p -> sum := !sum + p.Packet.wire; drain ()
         | None -> ()
       in
       drain ();
       !sum = enqueued && Prio_queue.bytes q = 0
       && Prio_queue.lp_bytes q = 0)

(* --- queue equivalence ------------------------------------------------ *)

(* The pre-optimization queue discipline — one [Queue.t] per priority
   and a linear scan on dequeue — kept verbatim as the semantic
   reference for the ring-buffer/bitmask implementation. *)
module Ref_pq = struct
  open Prio_queue

  type t = {
    cfg : config;
    queues : Packet.t Queue.t array;
    qbytes : int array;
    mutable bytes : int;
    mutable lp_bytes : int;
    mutable enq_pkts : int;
    mutable drop_pkts : int;
    mutable drop_hp_pkts : int;
    mutable drop_lp_pkts : int;
    mutable drop_bytes : int;
    mutable trim_pkts : int;
    mutable mark_pkts : int;
  }

  let create cfg =
    { cfg;
      queues = Array.init n_prios (fun _ -> Queue.create ());
      qbytes = Array.make n_prios 0;
      bytes = 0; lp_bytes = 0;
      enq_pkts = 0; drop_pkts = 0; drop_hp_pkts = 0; drop_lp_pkts = 0;
      drop_bytes = 0; trim_pkts = 0; mark_pkts = 0 }

  let push t (p : Packet.t) =
    let prio = max 0 (min (n_prios - 1) p.Packet.prio) in
    Queue.push p t.queues.(prio);
    t.qbytes.(prio) <- t.qbytes.(prio) + p.Packet.wire;
    t.bytes <- t.bytes + p.Packet.wire;
    if prio >= lp_band_start then
      t.lp_bytes <- t.lp_bytes + p.Packet.wire;
    t.enq_pkts <- t.enq_pkts + 1;
    if p.Packet.ecn_capable then begin
      match t.cfg.mark_thresholds.(prio) with
      | Some k ->
        let occ =
          match t.cfg.mark_basis with
          | Port_occupancy -> t.bytes
          | Queue_occupancy -> t.qbytes.(prio)
        in
        if occ > k then begin
          if not p.Packet.ecn_ce then t.mark_pkts <- t.mark_pkts + 1;
          p.Packet.ecn_ce <- true
        end
      | None -> ()
    end

  let drop t (p : Packet.t) =
    t.drop_pkts <- t.drop_pkts + 1;
    if p.Packet.prio >= lp_band_start then
      t.drop_lp_pkts <- t.drop_lp_pkts + 1
    else t.drop_hp_pkts <- t.drop_hp_pkts + 1;
    t.drop_bytes <- t.drop_bytes + p.Packet.wire

  let enqueue t (p : Packet.t) =
    let fits extra = t.bytes + extra <= t.cfg.buffer_bytes in
    let dt_fits (p : Packet.t) =
      match t.cfg.dt_alphas with
      | None -> true
      | Some _ when p.Packet.sel_drop -> true
      | Some alphas ->
        let prio = max 0 (min (n_prios - 1) p.Packet.prio) in
        let free = float_of_int (t.cfg.buffer_bytes - t.bytes) in
        float_of_int (t.qbytes.(prio) + p.Packet.wire)
        <= alphas.(prio) *. free
    in
    let lp_fits extra =
      p.Packet.prio < lp_band_start
      || (match t.cfg.lp_buffer_cap with
          | None -> true
          | Some cap -> t.lp_bytes + extra <= cap)
    in
    let sel_dropped =
      p.Packet.sel_drop
      && (match t.cfg.sel_drop_threshold with
          | Some k -> t.bytes + p.Packet.wire > k
          | None -> false)
    in
    if sel_dropped then begin drop t p; Dropped end
    else if fits p.Packet.wire && lp_fits p.Packet.wire && dt_fits p
    then begin push t p; Enqueued end
    else if t.cfg.trim && p.Packet.kind = Packet.Data
            && not p.Packet.trimmed
    then begin
      p.Packet.trimmed <- true;
      p.Packet.wire <- trim_wire_bytes;
      p.Packet.prio <- 0;
      if fits p.Packet.wire then begin
        t.trim_pkts <- t.trim_pkts + 1;
        push t p;
        Trimmed
      end else begin drop t p; Dropped end
    end
    else begin drop t p; Dropped end

  let dequeue t =
    let rec find prio =
      if prio >= n_prios then None
      else if Queue.is_empty t.queues.(prio) then find (prio + 1)
      else begin
        let p = Queue.pop t.queues.(prio) in
        t.qbytes.(prio) <- t.qbytes.(prio) - p.Packet.wire;
        t.bytes <- t.bytes - p.Packet.wire;
        if prio >= lp_band_start then
          t.lp_bytes <- t.lp_bytes - p.Packet.wire;
        Some p
      end
    in
    find 0
end

(* An op is either a dequeue or an enqueue of a packet described by
   (prio 0-9 to exercise clamping, payload, flag bits: 1 = ecn-capable,
   2 = sel_drop, 4 = Ack instead of Data). Both implementations replay
   the same ops on their own packet copies (enqueue mutates packets);
   [seq] identifies packets across the two runs. *)
let replay ~enqueue ~dequeue ops =
  let obs = ref [] in
  let note x = obs := x :: !obs in
  List.iteri
    (fun i op ->
       match op with
       | None -> (
           match dequeue () with
           | None -> note (-1, 0, 0, 0)
           | Some (p : Packet.t) ->
             note
               (p.Packet.seq, p.Packet.prio, p.Packet.wire,
                (if p.Packet.trimmed then 2 else 0)
                lor (if p.Packet.ecn_ce then 1 else 0)))
       | Some (prio, payload, flags) ->
         let p =
           mk_pkt ~prio ~payload
             ~ecn:(flags land 1 <> 0)
             ~sel_drop:(flags land 2 <> 0)
             ~kind:(if flags land 4 <> 0 then Packet.Ack else Packet.Data)
             ~seq:i ()
         in
         note
           ( (match enqueue p with
              | Prio_queue.Enqueued -> 100
              | Prio_queue.Dropped -> 101
              | Prio_queue.Trimmed -> 102),
             0, 0, 0 ))
    ops;
  List.rev !obs

let equiv_configs =
  [ qcfg ~buffer:8_000 ();
    qcfg ~buffer:8_000
      ~thresholds:(Prio_queue.mark_bands ~hp:(Some 3_000) ~lp:(Some 1_000))
      ();
    { (qcfg ~buffer:8_000
         ~thresholds:
           (Prio_queue.mark_bands ~hp:(Some 2_000) ~lp:(Some 1_000)) ())
      with Prio_queue.mark_basis = Prio_queue.Queue_occupancy };
    qcfg ~buffer:6_000 ~trim:true ();
    qcfg ~buffer:8_000 ~sel_drop:2_000 ();
    qcfg ~buffer:8_000 ~lp_cap:2_500 ();
    { (qcfg ~buffer:8_000 ()) with
      Prio_queue.dt_alphas =
        Some (Prio_queue.dt_bands ~hp:8.0 ~lp:1.0) } ]

let prop_queue_matches_reference =
  QCheck.Test.make
    ~name:"ring/bitmask queue matches 8-FIFO linear-scan reference"
    ~count:100
    QCheck.(
      list
        (option (triple (int_bound 9) (int_range 1 1460) (int_bound 7))))
    (fun ops ->
       List.for_all
         (fun cfg ->
            let q = Prio_queue.create cfg in
            let r = Ref_pq.create cfg in
            let t_new =
              replay
                ~enqueue:(Prio_queue.enqueue q)
                ~dequeue:(fun () -> Prio_queue.dequeue q)
                ops
            in
            let t_ref =
              replay ~enqueue:(Ref_pq.enqueue r)
                ~dequeue:(fun () -> Ref_pq.dequeue r)
                ops
            in
            t_new = t_ref
            && Prio_queue.bytes q = r.Ref_pq.bytes
            && Prio_queue.lp_bytes q = r.Ref_pq.lp_bytes
            && Prio_queue.drops q = r.Ref_pq.drop_pkts
            && Prio_queue.drops_hp q = r.Ref_pq.drop_hp_pkts
            && Prio_queue.drops_lp q = r.Ref_pq.drop_lp_pkts
            && Prio_queue.drop_bytes q = r.Ref_pq.drop_bytes
            && Prio_queue.trims q = r.Ref_pq.trim_pkts
            && Prio_queue.marks q = r.Ref_pq.mark_pkts
            && Prio_queue.enqueues q = r.Ref_pq.enq_pkts)
         equiv_configs)

(* --- fabric ----------------------------------------------------------- *)

let test_star_delivery () =
  let sim = Sim.create () in
  let topo =
    Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 10)
      ~delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.kb 100)) ()
  in
  let got = ref [] in
  Net.register topo.Topology.net ~host:2 ~flow:7 (fun p ->
      got := p.Packet.seq :: !got);
  List.iter
    (fun seq ->
       Net.send topo.Topology.net
         (mk_pkt ~seq () |> fun p -> { p with Packet.flow = 7; dst = 2 }))
    [ 0; 1; 2 ];
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "in-order delivery" [ 0; 1; 2 ]
    (List.rev !got)

let test_serialization_timing () =
  let sim = Sim.create () in
  let topo =
    Topology.star ~sim ~n_hosts:2 ~rate:(Units.gbps 10)
      ~delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.kb 100)) ()
  in
  let arrival = ref 0 in
  Net.register topo.Topology.net ~host:1 ~flow:1 (fun _ ->
      arrival := Sim.now sim);
  let p = mk_pkt ~payload:1460 () in
  Net.send topo.Topology.net p;
  Sim.run sim;
  (* two hops: 2 x (1200ns serialization + 1000ns propagation) *)
  check Alcotest.int "arrival time" 4_400 !arrival

let test_undeliverable_counted () =
  let sim = Sim.create () in
  let topo =
    Topology.star ~sim ~n_hosts:2 ~rate:(Units.gbps 10)
      ~delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.kb 100)) ()
  in
  Net.send topo.Topology.net (mk_pkt ());
  Sim.run sim;
  check Alcotest.int "unregistered flow counted" 1
    (Net.undeliverable topo.Topology.net)

let leaf_spine () =
  let sim = Sim.create () in
  let topo =
    Topology.leaf_spine ~sim ~hosts_per_leaf:4 ~n_leaf:3 ~n_spine:2
      ~edge_rate:(Units.gbps 10) ~core_rate:(Units.gbps 40)
      ~edge_delay:(Units.us 1) ~core_delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.kb 200)) ()
  in
  (sim, topo)

let test_leaf_spine_shape () =
  let _sim, topo = leaf_spine () in
  check Alcotest.int "12 hosts" 12 (Array.length topo.Topology.hosts);
  check Alcotest.int "17 nodes" 17 (Net.n_nodes topo.Topology.net)

let test_leaf_spine_cross_rack () =
  let sim, topo = leaf_spine () in
  let got = ref 0 in
  Net.register topo.Topology.net ~host:11 ~flow:5 (fun _ -> incr got);
  (* host 0 (leaf 0) to host 11 (leaf 2): 4 hops *)
  Net.send topo.Topology.net
    (mk_pkt () |> fun p -> { p with Packet.flow = 5; src = 0; dst = 11 });
  Sim.run sim;
  check Alcotest.int "cross-rack delivery" 1 !got

let test_leaf_spine_same_rack () =
  let sim, topo = leaf_spine () in
  let got = ref 0 in
  Net.register topo.Topology.net ~host:1 ~flow:6 (fun _ -> incr got);
  Net.send topo.Topology.net
    (mk_pkt () |> fun p -> { p with Packet.flow = 6; src = 0; dst = 1 });
  Sim.run sim;
  check Alcotest.int "same-rack delivery" 1 !got

let test_ecmp_consistent_per_flow () =
  (* the spine chosen for a flow never changes: no reordering *)
  let h1 = Topology.ecmp_hash 1234 4 and h2 = Topology.ecmp_hash 1234 4 in
  check Alcotest.int "stable hash" h1 h2;
  (* and hashing spreads across spines *)
  let seen = Array.make 4 false in
  for f = 0 to 199 do seen.(Topology.ecmp_hash f 4) <- true done;
  check Alcotest.bool "all spines used" true (Array.for_all Fun.id seen)

let test_per_packet_spray_spreads () =
  (* a single flow's packets must traverse multiple spines *)
  let sim = Sim.create () in
  let topo =
    Topology.leaf_spine ~routing:Topology.Per_packet ~sim
      ~hosts_per_leaf:4 ~n_leaf:3 ~n_spine:2
      ~edge_rate:(Units.gbps 10) ~core_rate:(Units.gbps 40)
      ~edge_delay:(Units.us 1) ~core_delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.kb 200)) ()
  in
  let got = ref 0 in
  Net.register topo.Topology.net ~host:11 ~flow:5 (fun _ -> incr got);
  for seq = 0 to 63 do
    Net.send topo.Topology.net
      (mk_pkt ~seq () |> fun p -> { p with Packet.flow = 5; dst = 11 })
  done;
  Sim.run sim;
  check Alcotest.int "all sprayed packets delivered" 64 !got;
  (* both spine downlinks towards leaf 2 must have carried traffic *)
  let spine_tx s =
    (Net.port topo.Topology.net (12 + 3 + s) 2).Net.tx_bytes
  in
  check Alcotest.bool "both spines used" true
    (spine_tx 0 > 0 && spine_tx 1 > 0)

let test_flowlet_no_mid_burst_rehash () =
  (* packets of one back-to-back burst must all take the same spine *)
  let sim = Sim.create () in
  let topo =
    Topology.leaf_spine
      ~routing:(Topology.Flowlet { gap = Units.us 100 }) ~sim
      ~hosts_per_leaf:4 ~n_leaf:3 ~n_spine:2
      ~edge_rate:(Units.gbps 10) ~core_rate:(Units.gbps 40)
      ~edge_delay:(Units.us 1) ~core_delay:(Units.us 1)
      ~qcfg:(Prio_queue.default_config ~buffer_bytes:(Units.mb 1)) ()
  in
  let seqs = ref [] in
  Net.register topo.Topology.net ~host:11 ~flow:6 (fun p ->
      seqs := p.Packet.seq :: !seqs);
  for seq = 0 to 31 do
    Net.send topo.Topology.net
      (mk_pkt ~seq () |> fun p -> { p with Packet.flow = 6; dst = 11 })
  done;
  Sim.run sim;
  (* one spine, FIFO queues: in-order delivery proves no mid-burst
     path change *)
  check (Alcotest.list Alcotest.int) "in-order (single flowlet)"
    (List.init 32 Fun.id) (List.rev !seqs)

let test_all_to_all_leaf_spine_traffic () =
  let sim, topo = leaf_spine () in
  let n = Array.length topo.Topology.hosts in
  let expected = ref 0 and got = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let flow = (src * n) + dst in
        incr expected;
        Net.register topo.Topology.net ~host:dst ~flow (fun _ -> incr got);
        Net.send topo.Topology.net
          (mk_pkt ()
           |> fun p -> { p with Packet.flow; src; dst })
      end
    done
  done;
  Sim.run sim;
  check Alcotest.int "every pair delivered" !expected !got

let suite =
  [ Alcotest.test_case "packet: wire sizes" `Quick test_packet_sizes;
    Alcotest.test_case "packet: segmentation" `Quick test_segmentation;
    QCheck_alcotest.to_alcotest prop_pool_invariants;
    Alcotest.test_case "packet pool: debug-mode ownership checks"
      `Quick test_pool_debug_checks;
    QCheck_alcotest.to_alcotest prop_segment_payloads_sum;
    Alcotest.test_case "queue: strict priority" `Quick
      test_strict_priority_order;
    Alcotest.test_case "queue: fifo within priority" `Quick
      test_fifo_within_priority;
    Alcotest.test_case "queue: drop tail" `Quick test_drop_tail;
    Alcotest.test_case "queue: ecn bands" `Quick test_ecn_marking_bands;
    Alcotest.test_case "queue: ecn needs capability" `Quick
      test_no_mark_without_capability;
    Alcotest.test_case "queue: ndp trimming" `Quick test_trimming;
    Alcotest.test_case "queue: aeolus selective drop" `Quick
      test_selective_drop;
    Alcotest.test_case "queue: rc3 lp buffer cap" `Quick test_lp_buffer_cap;
    Alcotest.test_case "queue: dynamic threshold" `Quick
      test_dynamic_threshold;
    QCheck_alcotest.to_alcotest prop_queue_byte_accounting;
    QCheck_alcotest.to_alcotest prop_queue_matches_reference;
    Alcotest.test_case "net: star delivery" `Quick test_star_delivery;
    Alcotest.test_case "net: serialization timing" `Quick
      test_serialization_timing;
    Alcotest.test_case "net: undeliverable counted" `Quick
      test_undeliverable_counted;
    Alcotest.test_case "topo: leaf-spine shape" `Quick test_leaf_spine_shape;
    Alcotest.test_case "topo: cross-rack" `Quick test_leaf_spine_cross_rack;
    Alcotest.test_case "topo: same-rack" `Quick test_leaf_spine_same_rack;
    Alcotest.test_case "topo: ecmp" `Quick test_ecmp_consistent_per_flow;
    Alcotest.test_case "topo: per-packet spraying" `Quick
      test_per_packet_spray_spreads;
    Alcotest.test_case "topo: flowlet burst integrity" `Quick
      test_flowlet_no_mid_burst_rehash;
    Alcotest.test_case "topo: all-to-all delivery" `Quick
      test_all_to_all_leaf_spine_traffic ]
