(* Tests for the lib/obs tracing subsystem: event-encoding roundtrips,
   ring-sink semantics, golden-trace determinism at event granularity,
   and QCheck conservation laws that tie the emitted trace back to the
   switch queues' ground-truth counters. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport
open Ppt_obs

let check = Alcotest.check

(* --- fixtures ------------------------------------------------------ *)

let qcfg ?(buffer = Units.kb 200) ?(hp = Units.kb 60)
    ?(lp = Units.kb 40) () =
  { (Prio_queue.default_config ~buffer_bytes:buffer) with
    Prio_queue.mark_thresholds =
      Prio_queue.mark_bands ~hp:(Some hp) ~lp:(Some lp) }

(* A star network with an explicit RNG seed (unlike [Helpers.star],
   which pins seed 42). *)
let star ?(n = 4) ?(delay = Units.us 2) ?(seed = 42) ~qcfg () =
  let sim = Sim.create () in
  let topo =
    Topology.star ~sim ~n_hosts:n ~rate:(Units.gbps 10) ~delay ~qcfg ()
  in
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create seed)
      topo
  in
  (sim, topo, ctx)

let launch ctx (t : Endpoint.transport) specs =
  let sim = ctx.Context.sim in
  List.iteri
    (fun i (src, dst, size, start) ->
       let flow = Flow.create ~id:i ~src ~dst ~size ~start in
       ignore (Sim.schedule_at sim start (fun () ->
           Context.flow_started ctx flow;
           t.Endpoint.t_start flow)))
    specs

(* Run [f] with a fresh ring sink installed; returns (f's result,
   captured events). Fails the test if the ring overflowed — every
   conservation argument needs the complete trace. *)
let captured ?(capacity = 1 lsl 19) f =
  let ring = Trace.Ring.create ~capacity () in
  let r = Trace.with_sink (Trace.Ring.sink ring) f in
  check Alcotest.int "ring kept every event" 0 (Trace.Ring.dropped ring);
  (r, Trace.Ring.to_list ring)

(* --- event encoding ------------------------------------------------ *)

let gen_event =
  let open QCheck.Gen in
  let nat = int_range 0 100_000_000 in
  let kind = oneofl [ 'D'; 'A'; 'G'; 'P'; 'N'; 'C' ] in
  let loop = oneofl [ 'H'; 'L' ] in
  oneof
    [ (nat >>= fun node -> nat >>= fun port -> int_range 0 7
       >>= fun prio -> nat >>= fun flow -> nat >>= fun seq ->
       kind >>= fun kind -> nat >>= fun size -> nat >>= fun occ ->
       oneofl
         [ Event.Enqueue { node; port; prio; flow; seq; kind; size; occ };
           Event.Dequeue { node; port; prio; flow; seq; kind; size; occ };
           Event.Drop { node; port; prio; flow; seq; kind; size; occ } ]);
      (nat >>= fun node -> nat >>= fun port -> int_range 0 7
       >>= fun prio -> nat >>= fun flow -> nat >>= fun seq ->
       nat >>= fun occ -> nat >>= fun threshold ->
       return
         (Event.Ecn_mark { node; port; prio; flow; seq; occ; threshold }));
      (nat >>= fun node -> nat >>= fun port -> int_range 0 7
       >>= fun prio -> nat >>= fun flow -> nat >>= fun seq ->
       nat >>= fun cut -> nat >>= fun occ ->
       return (Event.Trim { node; port; prio; flow; seq; cut; occ }));
      (nat >>= fun flow -> nat >>= fun cwnd ->
       return (Event.Cwnd_update { flow; cwnd }));
      (nat >>= fun flow -> bool >>= fun active -> nat >>= fun window ->
       return (Event.Loop_switch { flow; active; window }));
      (nat >>= fun flow -> int_range 1 64 >>= fun backoff ->
       return (Event.Rto_fire { flow; backoff }));
      (nat >>= fun flow -> nat >>= fun seq -> loop >>= fun loop ->
       return (Event.Retransmit { flow; seq; loop }));
      (nat >>= fun flow -> nat >>= fun size ->
       return (Event.Flow_start { flow; size }));
      (nat >>= fun flow -> nat >>= fun size -> nat >>= fun fct ->
       return (Event.Flow_done { flow; size; fct }));
      (nat >>= fun node -> nat >>= fun port -> nat >>= fun occ ->
       nat >>= fun lp_occ ->
       return (Event.Probe_queue { node; port; occ; lp_occ }));
      (nat >>= fun node -> nat >>= fun port -> nat >>= fun tx_bytes ->
       nat >>= fun util_ppm ->
       return (Event.Probe_link { node; port; tx_bytes; util_ppm }));
      (nat >>= fun node -> nat >>= fun port -> nat >>= fun hp ->
       nat >>= fun lp ->
       return (Event.Probe_dt { node; port; hp; lp }));
      (nat >>= fun node -> nat >>= fun port ->
       oneofl
         [ Event.Link_down { node; port };
           Event.Link_up { node; port } ]);
      (nat >>= fun node -> nat >>= fun port -> nat >>= fun rate_ppm ->
       nat >>= fun extra_delay ->
       return
         (Event.Link_degrade { node; port; rate_ppm; extra_delay }));
      (nat >>= fun node -> nat >>= fun port -> nat >>= fun flow ->
       nat >>= fun seq -> kind >>= fun kind -> nat >>= fun size ->
       oneofl [ 'L'; 'C'; 'D' ] >>= fun reason ->
       return
         (Event.Fault_drop { node; port; flow; seq; kind; size; reason }))
    ]

let prop_json_roundtrip =
  QCheck.Test.make ~name:"event: JSONL roundtrip is lossless"
    ~count:200
    (QCheck.make
       ~print:(fun (ts, ev) -> Event.to_json_line ~ts ev)
       QCheck.Gen.(int_range 0 1_000_000_000_000 >>= fun ts ->
                   gen_event >>= fun ev -> return (ts, ev)))
    (fun (ts, ev) ->
       Event.of_json_line (Event.to_json_line ~ts ev) = Some (ts, ev))

let test_json_rejects_garbage () =
  check Alcotest.bool "empty line" true (Event.of_json_line "" = None);
  check Alcotest.bool "not json" true
    (Event.of_json_line "hello world" = None);
  check Alcotest.bool "unknown tag" true
    (Event.of_json_line {|{"t":1,"ev":"martian","flow":1}|} = None);
  check Alcotest.bool "missing field" true
    (Event.of_json_line {|{"t":1,"ev":"cwnd_update","flow":1}|} = None)

(* --- binary trace encoding ----------------------------------------- *)

let encode_stream events =
  let b = Buffer.create 4096 in
  List.iter (fun (ts, ev) -> Event.add_binary b ~ts ev) events;
  Buffer.contents b

let decode_stream s =
  let pos = ref 0 in
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Event.of_binary s pos with
    | Some tev -> acc := tev :: !acc
    | None -> continue := false
  done;
  List.rev !acc

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"event: binary roundtrip is lossless"
    ~count:300
    (QCheck.make
       ~print:(fun (ts, ev) -> Event.to_json_line ~ts ev)
       QCheck.Gen.(int_range 0 1_000_000_000_000 >>= fun ts ->
                   gen_event >>= fun ev -> return (ts, ev)))
    (fun (ts, ev) ->
       decode_stream (encode_stream [ (ts, ev) ]) = [ (ts, ev) ])

(* Control packets carry seq = -1, and zigzag must round-trip the whole
   int range, not just the naturals the generator produces. *)
let test_binary_negative_ints () =
  let evs =
    [ (0,
       Event.Enqueue
         { node = 0; port = 0; prio = 0; flow = 7; seq = -1; kind = 'A';
           size = 64; occ = 64 });
      (1, Event.Retransmit { flow = 0; seq = -1; loop = 'H' });
      (2, Event.Flow_done { flow = max_int; size = min_int; fct = -1 });
      (max_int, Event.Cwnd_update { flow = -1; cwnd = max_int }) ]
  in
  check Alcotest.bool "negative and extreme ints roundtrip" true
    (decode_stream (encode_stream evs) = evs)

(* --- sink plumbing ------------------------------------------------- *)

let test_ring_overwrite () =
  let ring = Trace.Ring.create ~capacity:4 () in
  let sink = Trace.Ring.sink ring in
  for i = 1 to 6 do sink i (Event.Flow_start { flow = i; size = i }) done;
  check Alcotest.int "length capped" 4 (Trace.Ring.length ring);
  check Alcotest.int "total counts everything" 6 (Trace.Ring.total ring);
  check Alcotest.int "dropped = overflow" 2 (Trace.Ring.dropped ring);
  check (Alcotest.list Alcotest.int) "keeps the newest, oldest first"
    [ 3; 4; 5; 6 ]
    (List.map fst (Trace.Ring.to_list ring))

let test_disabled_by_default_and_restored () =
  check Alcotest.bool "tracing off by default" false !Trace.enabled;
  (try
     Trace.with_sink (fun _ _ -> ()) (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "cleared after exception" false !Trace.enabled;
  let n = ref 0 in
  Trace.with_sink (fun _ _ -> incr n) (fun () ->
      check Alcotest.bool "enabled inside" true !Trace.enabled;
      Trace.emit 0 (Event.Flow_start { flow = 0; size = 0 }));
  check Alcotest.int "sink saw the event" 1 !n;
  check Alcotest.bool "cleared after with_sink" false !Trace.enabled

(* --- golden-trace determinism -------------------------------------- *)

(* A canonical 2-host DCTCP config: same seed => the trace must match
   event for event, run after run (PR 1's calendar-queue determinism
   claim, now at trace granularity instead of summary granularity). *)
let dctcp_2host_events seed =
  let _, events =
    captured (fun () ->
        let sim, _topo, ctx = star ~n:2 ~seed ~qcfg:(qcfg ()) () in
        let t = Dctcp.make () ctx in
        launch ctx t
          [ (0, 1, 200_000, 0); (1, 0, 150_000, 5_000);
            (0, 1, 60_000, 10_000) ];
        Sim.run ~until:(Units.sec 5) sim;
        check Alcotest.int "all flows done" 3 ctx.Context.completed)
  in
  events

(* 4-host PPT with enough BDP headroom that the LCP opens. *)
let ppt_4host_events seed =
  let _, events =
    captured (fun () ->
        let sim, _topo, ctx =
          star ~n:4 ~delay:(Units.us 20) ~seed ~qcfg:(qcfg ()) ()
        in
        let t = Ppt_core.Ppt.make () ctx in
        launch ctx t
          [ (0, 3, 1_000_000, 0); (1, 3, 40_000, 20_000);
            (2, 0, 600_000, 50_000) ];
        Sim.run ~until:(Units.sec 5) sim;
        check Alcotest.int "all flows done" 3 ctx.Context.completed)
  in
  events

let jsonl_of events =
  String.concat "\n"
    (List.map (fun (ts, ev) -> Event.to_json_line ~ts ev) events)

(* The binary stream must reproduce the JSONL encoding byte for byte
   once decoded and re-rendered — that is what lets `ppt_trace decode`
   inherit the golden-trace guarantees. *)
let test_binary_decode_matches_jsonl () =
  let events = dctcp_2host_events 1 in
  check Alcotest.bool "trace nonempty" true (List.length events > 100);
  let direct = jsonl_of events in
  let decoded = decode_stream (encode_stream events) in
  check Alcotest.bool "decode(encode(trace)) = trace as JSONL" true
    (String.equal direct (jsonl_of decoded))

(* --- packet pooling is invisible ----------------------------------- *)

(* Recycling packets must not change a single event: the same runs with
   the free list disabled have to produce byte-identical traces. *)
let test_pooling_invisible () =
  let with_pooling b f =
    Packet.set_pooling b;
    Fun.protect ~finally:(fun () -> Packet.set_pooling true) f
  in
  let dctcp_on = with_pooling true (fun () -> dctcp_2host_events 1) in
  let dctcp_off = with_pooling false (fun () -> dctcp_2host_events 1) in
  check Alcotest.bool "dctcp: pooling on/off traces identical" true
    (String.equal (jsonl_of dctcp_on) (jsonl_of dctcp_off));
  let ppt_on = with_pooling true (fun () -> ppt_4host_events 1) in
  let ppt_off = with_pooling false (fun () -> ppt_4host_events 1) in
  check Alcotest.bool "ppt: pooling on/off traces identical" true
    (String.equal (jsonl_of ppt_on) (jsonl_of ppt_off))

(* --- uid reset across in-process runs ------------------------------ *)

(* Packet spraying hashes the packet uid, so rerunning an experiment in
   the same process only reproduces the first trace if the uid
   sequence restarts with each run ([Context.create] resets it). The
   interleaved unrelated run perturbs the counter between the two
   measured runs. *)
let spray_events () =
  let _, events =
    captured (fun () ->
        let sim = Sim.create () in
        let topo =
          Topology.leaf_spine ~routing:Topology.Per_packet ~sim
            ~hosts_per_leaf:4 ~n_leaf:2 ~n_spine:2
            ~edge_rate:(Units.gbps 10) ~core_rate:(Units.gbps 10)
            ~edge_delay:(Units.us 2) ~core_delay:(Units.us 2)
            ~qcfg:(qcfg ()) ()
        in
        let ctx =
          Context.of_topology ~rto_min:(Units.ms 1)
            ~rng:(Rng.create 7) topo
        in
        let t = Dctcp.make () ctx in
        launch ctx t [ (0, 5, 300_000, 0); (1, 6, 200_000, 3_000) ];
        Sim.run ~until:(Units.sec 5) sim;
        check Alcotest.int "spray flows done" 2 ctx.Context.completed)
  in
  events

let test_uid_reset_reruns () =
  let a = spray_events () in
  ignore (dctcp_2host_events 9);   (* perturb the global uid counter *)
  let b = spray_events () in
  check Alcotest.bool "spray trace nonempty" true (List.length a > 100);
  check Alcotest.bool "rerun is byte-identical despite interleaved run"
    true
    (String.equal (jsonl_of a) (jsonl_of b))

let test_golden_dctcp () =
  List.iter
    (fun seed ->
       let a = dctcp_2host_events seed in
       let b = dctcp_2host_events seed in
       check Alcotest.bool "trace nonempty" true (List.length a > 100);
       check Alcotest.bool
         (Printf.sprintf "seed %d: identical event-for-event" seed)
         true (a = b);
       check Alcotest.bool
         (Printf.sprintf "seed %d: identical JSONL" seed)
         true (String.equal (jsonl_of a) (jsonl_of b)))
    [ 1; 2; 3 ]

let test_golden_ppt_lcp () =
  List.iter
    (fun seed ->
       let a = ppt_4host_events seed in
       let b = ppt_4host_events seed in
       check Alcotest.bool
         (Printf.sprintf "seed %d: identical event-for-event" seed)
         true (a = b);
       (* the trace must actually show the dual-loop dynamics: an LCP
          loop opened, and opportunistic (low-band) data hit the wire *)
       let opened =
         List.exists
           (function
             | _, Event.Loop_switch { active = true; window; _ } ->
               window > 0
             | _ -> false)
           a
       in
       let lp_data =
         List.exists
           (function
             | _, Event.Enqueue { prio; kind = 'D'; _ } ->
               prio >= Prio_queue.lp_band_start
             | _ -> false)
           a
       in
       check Alcotest.bool "LCP loop opened in trace" true opened;
       check Alcotest.bool "low-priority data in trace" true lp_data)
    [ 1; 2 ]

(* --- conservation laws over traces --------------------------------- *)

(* Tie the trace to the queues' ground truth. For every port queue:
     enqueued bytes (incl. trimmed headers) - dequeued bytes
       = final occupancy,
   per-event counts match the Prio_queue counters, occupancy never
   exceeds that port's configured buffer, and every ECN mark was
   emitted at an occupancy strictly above its threshold. Finally,
   every dropped data packet of a completed flow must correspond to a
   surviving retransmission: transmissions at the source NIC exceed
   total in-network deaths of that (flow, seq). *)
let conservation_checks ~net ~n_flows ~src_of events =
  let tbl = Hashtbl.create 256 in
  let get k = try Hashtbl.find tbl k with Not_found -> 0 in
  let add k v = Hashtbl.replace tbl k (get k + v) in
  let buffer node port =
    Prio_queue.buffer_bytes (Ppt_netsim.Net.port net node port).Net.q
  in
  List.iter
    (fun (_ts, ev) ->
       match (ev : Event.t) with
       | Event.Enqueue { node; port; prio; flow; seq; kind; size; occ }
         ->
         add (`Enq (node, port, prio)) size;
         add (`EnqCnt (node, port)) 1;
         if occ > buffer node port then
           failwith "enqueue occupancy exceeds buffer";
         if kind = 'D' then add (`Tx (flow, seq, node)) 1
       | Event.Trim { node; port; prio; flow; seq; occ; _ } ->
         add (`Enq (node, port, prio)) Prio_queue.trim_wire_bytes;
         add (`EnqCnt (node, port)) 1;
         add (`TrimCnt (node, port)) 1;
         add (`Dead (flow, seq)) 1;
         if occ > buffer node port then
           failwith "trim occupancy exceeds buffer"
       | Event.Dequeue { node; port; prio; size; occ; _ } ->
         add (`Deq (node, port, prio)) size;
         if occ > buffer node port then
           failwith "dequeue occupancy exceeds buffer"
       | Event.Drop { node; port; flow; seq; kind; occ; _ } ->
         add (`DropCnt (node, port)) 1;
         if occ > buffer node port then
           failwith "drop occupancy exceeds buffer";
         if kind = 'D' then begin
           add (`Dead (flow, seq)) 1;
           add (`Tx (flow, seq, node)) 1
         end
       | Event.Ecn_mark { node; port; occ; threshold; _ } ->
         add (`MarkCnt (node, port)) 1;
         if occ <= threshold then
           failwith "ecn mark below its threshold"
       | _ -> ())
    events;
  (* per-queue byte conservation + counter equality vs ground truth *)
  for nid = 0 to Net.n_nodes net - 1 do
    Array.iter
      (fun (p : Net.port) ->
         let q = p.Net.q in
         let pix = p.Net.pix in
         for prio = 0 to Prio_queue.n_prios - 1 do
           let traced =
             get (`Enq (nid, pix, prio)) - get (`Deq (nid, pix, prio))
           in
           if traced <> Prio_queue.queue_bytes q prio then
             failwith
               (Printf.sprintf
                  "queue (%d,%d,p%d): enq-deq=%d but occupancy=%d" nid
                  pix prio traced (Prio_queue.queue_bytes q prio))
         done;
         if get (`EnqCnt (nid, pix)) <> Prio_queue.enqueues q then
           failwith "enqueue count mismatch vs queue counter";
         if get (`DropCnt (nid, pix)) <> Prio_queue.drops q then
           failwith "drop count mismatch vs queue counter";
         if get (`TrimCnt (nid, pix)) <> Prio_queue.trims q then
           failwith "trim count mismatch vs queue counter";
         if get (`MarkCnt (nid, pix)) <> Prio_queue.marks q then
           failwith "mark count mismatch vs queue counter")
      (Net.node net nid).Net.ports
  done;
  (* every dead data byte was retransmitted: for each (flow, seq) the
     source NIC carried strictly more transmissions than in-network
     deaths, so at least one copy survived to the receiver *)
  Hashtbl.iter
    (fun k deaths ->
       match k with
       | `Dead (flow, seq) ->
         let src = src_of flow in
         let tx = get (`Tx (flow, seq, src)) in
         if tx < deaths + 1 then
           failwith
             (Printf.sprintf
                "flow %d seq %d: %d transmissions for %d deaths" flow
                seq tx deaths)
       | _ -> ())
    (Hashtbl.copy tbl);
  ignore n_flows;
  true

let conservation_prop name factory =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "%s: trace conservation laws under drop-tail loss" name)
    ~count:30
    QCheck.(pair (int_range 0 1_000)
              (list_of_size (Gen.int_range 1 6) (int_range 1 250_000)))
    (fun (seed, sizes) ->
       let sim, _topo, ctx =
         star ~n:4 ~seed
           ~qcfg:(qcfg ~buffer:(Units.kb 30) ~hp:(Units.kb 18)
                    ~lp:(Units.kb 12) ())
           ()
       in
       let t = factory ctx in
       List.iteri
         (fun i size ->
            let flow =
              Flow.create ~id:i ~src:(i mod 3) ~dst:3 ~size
                ~start:(i * 1_000)
            in
            ignore (Sim.schedule_at sim flow.Flow.start (fun () ->
                t.Endpoint.t_start flow)))
         sizes;
       let ring = Trace.Ring.create ~capacity:(1 lsl 19) () in
       Trace.with_sink (Trace.Ring.sink ring) (fun () ->
           Sim.run ~until:(Units.sec 30) sim);
       if Trace.Ring.dropped ring > 0 then failwith "ring overflow";
       if ctx.Context.completed <> List.length sizes then
         failwith "not all flows completed";
       conservation_checks ~net:ctx.Context.net
         ~n_flows:(List.length sizes)
         ~src_of:(fun flow -> flow mod 3)
         (Trace.Ring.to_list ring))

(* --- fig8-small through the harness -------------------------------- *)

(* The acceptance scenario: a scaled-down fig8 run (testbed fabric,
   web-search workload) with tracing + probes enabled must write a
   byte-identical JSONL trace on every run, and the trace must parse
   and satisfy the count-level conservation laws. *)
let test_fig8_small_jsonl () =
  let run path =
    let cfg =
      Ppt_harness.Config.testbed ~n_flows:25 ~load:0.5 ()
      |> Ppt_harness.Config.with_trace ~path
           ~probe_interval:(Units.ms 1)
    in
    ignore (Ppt_harness.Runner.run cfg Ppt_harness.Schemes.ppt)
  in
  let pa = Filename.temp_file "ppt_fig8a" ".jsonl" in
  let pb = Filename.temp_file "ppt_fig8b" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove pa; Sys.remove pb)
    (fun () ->
       run pa;
       run pb;
       let read path =
         let ic = open_in path in
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         close_in ic; s
       in
       let a = read pa and b = read pb in
       check Alcotest.bool "trace written" true (String.length a > 0);
       check Alcotest.bool "byte-identical across runs" true
         (String.equal a b);
       (* every line parses; count-level conservation over the parsed
          events *)
       let events =
         String.split_on_char '\n' a
         |> List.filter (fun l -> l <> "")
         |> List.map (fun l ->
             match Event.of_json_line l with
             | Some tev -> tev
             | None -> Alcotest.fail ("unparseable line: " ^ l))
       in
       let enq = Hashtbl.create 64 in
       let get t k = try Hashtbl.find t k with Not_found -> 0 in
       List.iter
         (fun (_, ev) ->
            match (ev : Event.t) with
            | Event.Enqueue { node; port; prio; size; _ } ->
              Hashtbl.replace enq (node, port, prio)
                (get enq (node, port, prio) + size)
            | Event.Dequeue { node; port; prio; size; _ } ->
              Hashtbl.replace enq (node, port, prio)
                (get enq (node, port, prio) - size)
            | Event.Ecn_mark { occ; threshold; _ } ->
              check Alcotest.bool "mark above threshold" true
                (occ > threshold)
            | _ -> ())
         events;
       Hashtbl.iter
         (fun _ leftover ->
            check Alcotest.bool "queue never over-drained" true
              (leftover >= 0))
         enq;
       let s = Summary.of_list events in
       check Alcotest.bool "flows completed in trace" true
         (s.Summary.flows_done = 25);
       check Alcotest.bool "probes sampled" true
         (List.mem_assoc "probe_queue" s.Summary.by_tag))

let suite =
  [ QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_binary_roundtrip;
    Alcotest.test_case "event: binary negatives and extremes" `Quick
      test_binary_negative_ints;
    Alcotest.test_case "event: binary decode reproduces JSONL" `Quick
      test_binary_decode_matches_jsonl;
    Alcotest.test_case "packet pool: recycling is trace-invisible"
      `Quick test_pooling_invisible;
    Alcotest.test_case "packet uids: reset per run (spray rerun)" `Quick
      test_uid_reset_reruns;
    Alcotest.test_case "event: parser rejects garbage" `Quick
      test_json_rejects_garbage;
    Alcotest.test_case "ring: bounded overwrite" `Quick
      test_ring_overwrite;
    Alcotest.test_case "trace: disabled by default, restored" `Quick
      test_disabled_by_default_and_restored;
    Alcotest.test_case "golden: dctcp 2-host, 3 seeds" `Quick
      test_golden_dctcp;
    Alcotest.test_case "golden: ppt 4-host with LCP, 2 seeds" `Quick
      test_golden_ppt_lcp;
    QCheck_alcotest.to_alcotest (conservation_prop "dctcp" (Dctcp.make ()));
    QCheck_alcotest.to_alcotest
      (conservation_prop "ppt" (Ppt_core.Ppt.make ()));
    Alcotest.test_case "harness: fig8-small deterministic JSONL" `Quick
      test_fig8_small_jsonl ]
