(* Tests for the PPT core: tagging, identification, the LCP loop and
   the assembled transport. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport
open Ppt_core

let check = Alcotest.check

(* --- mirror-symmetric tagging (§4.2) ------------------------------- *)

let test_tagging_identified () =
  let t = Tagging.make ~identified_large:true () in
  check Alcotest.int "HCP lowest of band" 3
    (Tagging.prio t ~loop:Packet.H ~bytes_sent:0);
  check Alcotest.int "LCP lowest of band" 7
    (Tagging.prio t ~loop:Packet.L ~bytes_sent:0);
  check Alcotest.int "stays at P3 regardless of bytes" 3
    (Tagging.prio t ~loop:Packet.H ~bytes_sent:50_000_000)

let test_tagging_demotion () =
  let t =
    Tagging.make ~demotion:[| 100; 1_000; 10_000 |]
      ~identified_large:false ()
  in
  let h b = Tagging.prio t ~loop:Packet.H ~bytes_sent:b in
  let l b = Tagging.prio t ~loop:Packet.L ~bytes_sent:b in
  check (Alcotest.list Alcotest.int) "hcp demotes 0->3"
    [ 0; 1; 2; 3; 3 ] [ h 0; h 100; h 1_000; h 10_000; h 99_999_999 ];
  check (Alcotest.list Alcotest.int) "lcp mirrors at +4"
    [ 4; 5; 6; 7; 7 ] [ l 0; l 100; l 1_000; l 10_000; l 99_999_999 ]

let test_tagging_mirror_property =
  QCheck.Test.make ~name:"tagging: LCP = HCP + 4 at every byte count"
    ~count:300
    QCheck.(pair bool (int_bound 50_000_000))
    (fun (identified_large, bytes_sent) ->
       let t = Tagging.make ~identified_large () in
       Tagging.prio t ~loop:Packet.L ~bytes_sent
       = Tagging.prio t ~loop:Packet.H ~bytes_sent + 4)

let test_tagging_validation () =
  Alcotest.check_raises "descending thresholds rejected"
    (Invalid_argument "Tagging.make: thresholds must ascend")
    (fun () ->
       ignore (Tagging.make ~demotion:[| 5; 3; 10 |]
                 ~identified_large:false ()))

(* --- buffer-aware identification (§4.1) ----------------------------- *)

let test_ident_accuracy () =
  (* the syscall model must reproduce the paper's ~86.7% accuracy on
     large flows and never misidentify genuinely small flows *)
  let ident = Flow_ident.make ~threshold:1_000 () in
  let rng = Rng.create 3 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Flow_ident.identify ident rng ~flow_size:50_000 then incr hits
  done;
  let acc = float_of_int !hits /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "accuracy %.3f ~ 0.867" acc) true
    (abs_float (acc -. 0.867) < 0.02);
  for _ = 1 to 1_000 do
    if Flow_ident.identify ident rng ~flow_size:500 then
      Alcotest.fail "small flow identified as large"
  done

let test_ident_buffer_cap () =
  (* a tiny send buffer caps the first syscall below the threshold *)
  let model = Sendbuf.make ~capacity:800 ~single_write_prob:1.0 () in
  let ident = Flow_ident.make ~threshold:1_000 ~model () in
  let rng = Rng.create 4 in
  check Alcotest.bool "capacity-capped write escapes identification"
    false
    (Flow_ident.identify ident rng ~flow_size:1_000_000)

let test_sendbuf_validation () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Sendbuf.make: probability out of range")
    (fun () -> ignore (Sendbuf.make ~single_write_prob:1.5 ()))

(* --- the assembled PPT transport ------------------------------------ *)

(* With a long RTT the startup phase dominates: PPT's case-1 LCP loop
   must beat plain DCTCP clearly (§2.3 "spare bandwidth in the first
   few RTTs"). *)
let startup_fct transport_of =
  (* RTT = 2*(2*(20us+1.2us)) ~ 85us; BDP at 10G ~ 106KB *)
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let transport = transport_of ctx in
  Helpers.run_flows ctx transport [ (0, 1, 500_000, 0) ];
  Option.get (Helpers.fct_of ctx 0)

let test_ppt_beats_dctcp_startup () =
  let dctcp = startup_fct (Dctcp.make ()) in
  let ppt = startup_fct (Ppt.make ()) in
  check Alcotest.bool
    (Printf.sprintf "ppt=%dns < dctcp=%dns" ppt dctcp)
    true (ppt < dctcp)

let test_ppt_uses_lcp () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Ppt.make () ctx) [ (0, 1, 500_000, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "lcp carried bytes" true
    (r.Ppt_stats.Fct.lcp_payload > 0);
  check Alcotest.bool "hcp carried bytes" true
    (r.Ppt_stats.Fct.hcp_payload > 0)

let test_ppt_many_flows_complete () =
  let _sim, _topo, ctx = Helpers.star ~n:8 () in
  let specs =
    List.init 60 (fun i ->
        (i mod 7, 7, 2_000 + ((i * 7919) mod 400_000), i * 20_000))
  in
  Helpers.run_flows ctx (Ppt.make () ctx) specs;
  check Alcotest.int "all complete" 60 (Ppt_stats.Fct.count ctx.Context.fct)

let test_ppt_variants_complete () =
  List.iter
    (fun factory ->
       let _sim, _topo, ctx = Helpers.star ~n:5 () in
       let t = factory ctx in
       let specs = List.init 12 (fun i -> (i mod 4, 4, 150_000, i * 40_000)) in
       Helpers.run_flows ctx t specs;
       check Alcotest.int
         (Printf.sprintf "%s: all complete" t.Endpoint.t_name) 12
         (Ppt_stats.Fct.count ctx.Context.fct))
    [ Ppt.without_lcp_ecn (); Ppt.without_ewd ();
      Ppt.without_scheduling (); Ppt.without_identification ();
      Ppt.with_sendbuf (Units.kb 128) ]

(* LCP must not harm HCP: with heavy congestion, PPT's small flows may
   not be slower than DCTCP's by any large factor. *)
let test_ppt_no_hcp_harm () =
  let run factory =
    let _sim, _topo, ctx = Helpers.star ~n:8 () in
    let specs =
      (* 6 senders of large flows + frequent small flows to one sink *)
      List.concat
        [ List.init 6 (fun i -> (i, 7, 3_000_000, 0));
          List.init 20 (fun i -> (i mod 6, 7, 5_000, 100_000 + (i * 80_000))) ]
    in
    Helpers.run_flows ctx (factory ctx) specs;
    Ppt_stats.Fct.summarize ctx.Context.fct
  in
  let d = run (Dctcp.make ()) in
  let p = run (Ppt.make ()) in
  check Alcotest.bool
    (Printf.sprintf "small flows: ppt=%.3fms dctcp=%.3fms"
       p.Ppt_stats.Fct.small_avg d.Ppt_stats.Fct.small_avg)
    true
    (p.Ppt_stats.Fct.small_avg < 2. *. d.Ppt_stats.Fct.small_avg)

(* The LCP loop unit behaviour: a loop opens for a fresh flow and the
   dual-loop split sends tail segments from the end of the buffer. *)
let test_lcp_case1_window () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let flow = Flow.create ~id:0 ~src:0 ~dst:1 ~size:400_000 ~start:0 in
  let snd = Reliable.create ctx flow (Reliable.default_params ()) in
  let view = Dctcp.attach snd in
  let lcp = Lcp.create ctx snd view ~identified_large:false () in
  check Alcotest.bool "case-1 window is BDP - IW" true
    (Lcp.case1_window lcp = ctx.Context.bdp
                            - int_of_float (Reliable.cwnd snd))

let test_lcp_opens_and_closes () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let transport =
    { Endpoint.t_name = "ppt-probe";
      t_start = (fun flow ->
          let params = Reliable.default_params () in
          Endpoint.launch_window_flow ctx ~params
            ~rcv_cfg:{ Receiver.ack_prio = 0; lcp_batch = 2;
                       lcp_ack_prio = `Echo }
            ~setup:(fun snd _rcv ->
                let view = Dctcp.attach snd in
                let lcp = Lcp.create ctx snd view
                    ~identified_large:false () in
                Lcp.start lcp;
                fun () ->
                  check Alcotest.bool "at least one loop opened" true
                    (Lcp.loops_opened lcp >= 1);
                  Lcp.shutdown lcp)
            flow) }
  in
  Helpers.run_flows ctx transport [ (0, 1, 600_000, 0) ]

(* Identified-large flows must not open their case-1 loop before the
   2nd RTT (§3.1): small flows own the first RTT. *)
let test_lcp_delayed_for_large () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let sim = ctx.Context.sim in
  let flow = Flow.create ~id:0 ~src:0 ~dst:1 ~size:2_000_000 ~start:0 in
  let snd = Reliable.create ctx flow (Reliable.default_params ()) in
  let view = Dctcp.attach snd in
  let lcp = Lcp.create ctx snd view ~identified_large:true () in
  Lcp.start lcp;
  let opened_at_half_rtt = ref None in
  ignore (Sim.schedule sim ~after:(ctx.Context.base_rtt / 2) (fun () ->
      opened_at_half_rtt := Some (Lcp.is_open lcp)));
  Sim.run ~until:(2 * ctx.Context.base_rtt) sim;
  check Alcotest.bool "closed during the 1st RTT" false
    (Option.get !opened_at_half_rtt);
  Lcp.shutdown lcp;
  Reliable.shutdown snd

(* Wire-level check of the mirror-symmetric tagging: a flow identified
   as large must emit HCP data at P3 and LCP data at P7. *)
let test_wire_priorities () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let flow = Flow.create ~id:9 ~src:0 ~dst:1 ~size:900_000 ~start:0 in
  let tag = Tagging.make ~identified_large:true () in
  let tagger ~bytes_sent ~loop = Tagging.prio tag ~loop ~bytes_sent in
  let snd =
    Reliable.create ctx flow (Reliable.default_params ~tagger ())
  in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  let view = Dctcp.attach snd in
  let lcp = Lcp.create ctx snd view ~identified_large:true () in
  Lcp.start lcp;
  let seen_h = ref [] and seen_l = ref [] in
  Ppt_netsim.Net.register ctx.Context.net ~host:1 ~flow:9 (fun p ->
      (match p.Ppt_netsim.Packet.kind, p.Ppt_netsim.Packet.loop with
       | Ppt_netsim.Packet.Data, Ppt_netsim.Packet.H ->
         seen_h := p.Ppt_netsim.Packet.prio :: !seen_h
       | Ppt_netsim.Packet.Data, Ppt_netsim.Packet.L ->
         seen_l := p.Ppt_netsim.Packet.prio :: !seen_l
       | _ -> ());
      Receiver.on_data rcv p);
  Ppt_netsim.Net.register ctx.Context.net ~host:0 ~flow:9 (fun p ->
      if p.Ppt_netsim.Packet.kind = Ppt_netsim.Packet.Ack then
        Reliable.on_ack snd p);
  rcv.Receiver.on_done <- (fun () ->
      Lcp.shutdown lcp; Reliable.shutdown snd);
  ignore (Sim.schedule_at ctx.Context.sim 0 (fun () ->
      Reliable.start snd));
  Sim.run ~until:(Units.sec 5) ctx.Context.sim;
  check Alcotest.bool "identified flow HCP data all P3" true
    (!seen_h <> [] && List.for_all (fun p -> p = 3) !seen_h);
  check Alcotest.bool "identified flow LCP data all P7" true
    (!seen_l <> [] && List.for_all (fun p -> p = 7) !seen_l)

let test_pace_interval_rounds () =
  (* the testbed numbers: 80us RTT, one 1460B segment of a 300-segment
     window -> 80_000 * 1460 / 438_000 = 266.67 ticks. Truncation gave
     266, pacing the whole window systematically early. *)
  check Alcotest.int "rounds up past the half" 267
    (Lcp.pace_interval ~rtt:80_000 ~sent:1460 ~window:438_000);
  (* 116_800_000 / 439_000 = 266.06: below the half, stays 266 *)
  check Alcotest.int "rounds down below the half" 266
    (Lcp.pace_interval ~rtt:80_000 ~sent:1460 ~window:439_000);
  check Alcotest.int "never below one tick" 1
    (Lcp.pace_interval ~rtt:10 ~sent:1 ~window:1_000);
  (* exact division is untouched by rounding *)
  check Alcotest.int "exact division unchanged" 400
    (Lcp.pace_interval ~rtt:80_000 ~sent:1460 ~window:292_000)

let suite =
  [ Alcotest.test_case "tagging: identified large" `Quick
      test_tagging_identified;
    Alcotest.test_case "tagging: demotion ladder" `Quick
      test_tagging_demotion;
    QCheck_alcotest.to_alcotest test_tagging_mirror_property;
    Alcotest.test_case "tagging: validation" `Quick test_tagging_validation;
    Alcotest.test_case "ident: accuracy ~86.7%" `Quick test_ident_accuracy;
    Alcotest.test_case "ident: buffer cap" `Quick test_ident_buffer_cap;
    Alcotest.test_case "sendbuf: validation" `Quick test_sendbuf_validation;
    Alcotest.test_case "ppt: beats dctcp in startup" `Quick
      test_ppt_beats_dctcp_startup;
    Alcotest.test_case "ppt: lcp carries bytes" `Quick test_ppt_uses_lcp;
    Alcotest.test_case "ppt: many flows" `Quick test_ppt_many_flows_complete;
    Alcotest.test_case "ppt: ablation variants run" `Quick
      test_ppt_variants_complete;
    Alcotest.test_case "ppt: no harm to small flows" `Quick
      test_ppt_no_hcp_harm;
    Alcotest.test_case "lcp: case-1 window" `Quick test_lcp_case1_window;
    Alcotest.test_case "lcp: opens during flow" `Quick
      test_lcp_opens_and_closes;
    Alcotest.test_case "lcp: delayed to 2nd RTT for large" `Quick
      test_lcp_delayed_for_large;
    Alcotest.test_case "lcp: pacer interval rounds" `Quick
      test_pace_interval_rounds;
    Alcotest.test_case "tagging: wire priorities" `Quick
      test_wire_priorities ]
