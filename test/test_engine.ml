(* Unit and property tests for the discrete-event engine. *)

open Ppt_engine

let check = Alcotest.check

let test_heap_order () =
  let h = Heap.create ~dummy:(-1) in
  List.iteri (fun i k -> Heap.push h ~key:k ~tie:i i)
    [ 5; 3; 8; 1; 9; 3; 0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) -> order := k :: !order; drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 3; 3; 5; 8; 9 ]
    (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:(-1) in
  Heap.push h ~key:7 ~tie:0 100;
  Heap.push h ~key:7 ~tie:1 200;
  Heap.push h ~key:7 ~tie:2 300;
  let vals = List.init 3 (fun _ ->
      match Heap.pop h with Some (_, v) -> v | None -> -1)
  in
  check (Alcotest.list Alcotest.int) "fifo" [ 100; 200; 300 ] vals

(* The allocation-free hot-loop entry points: [top_key] peeks without
   an option, [pop_exn] pops without one (and must refuse an empty
   heap). *)
let test_heap_top_pop_exn () =
  let h = Heap.create ~dummy:0 in
  (try
     ignore (Heap.pop_exn h);
     Alcotest.fail "pop_exn on empty heap did not raise"
   with Invalid_argument _ -> ());
  Heap.push h ~key:5 ~tie:0 50;
  Heap.push h ~key:3 ~tie:1 31;
  Heap.push h ~key:9 ~tie:2 90;
  Heap.push h ~key:3 ~tie:3 32;
  Heap.push h ~key:1 ~tie:4 10;
  check Alcotest.int "top_key is the minimum" 1 (Heap.top_key h);
  let order = List.init 5 (fun _ -> Heap.pop_exn h) in
  check (Alcotest.list Alcotest.int)
    "pop_exn ascending with FIFO ties" [ 10; 31; 32; 50; 90 ] order;
  check Alcotest.bool "drained" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order"
    ~count:200
    QCheck.(list small_int)
    (fun keys ->
       let h = Heap.create ~dummy:0 in
       List.iteri (fun i k -> Heap.push h ~key:k ~tie:i k) keys;
       let rec drain acc =
         match Heap.pop h with
         | Some (k, _) -> drain (k :: acc)
         | None -> List.rev acc
       in
       let popped = drain [] in
       popped = List.sort compare keys)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim 30 (fun () -> log := 3 :: !log));
  ignore (Sim.schedule_at sim 10 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule_at sim 20 (fun () -> log := 2 :: !log));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let t = Sim.schedule_at sim 10 (fun () -> fired := true) in
  Sim.cancel t;
  Sim.run sim;
  check Alcotest.bool "cancelled timer must not fire" false !fired

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let rec tick n () =
    incr hits;
    if n > 0 then ignore (Sim.schedule sim ~after:5 (tick (n - 1)))
  in
  ignore (Sim.schedule_at sim 0 (tick 9));
  Sim.run sim;
  check Alcotest.int "chain of events" 10 !hits;
  check Alcotest.int "final time" 45 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim (i * 10) (fun () -> incr fired))
  done;
  Sim.run ~until:50 sim;
  check Alcotest.int "only events before horizon" 5 !fired

(* Regression: an event beyond [until] must survive the horizon check
   (it used to be popped and discarded), so a later [run] resumes
   exactly where the previous one stopped. *)
let test_sim_until_resume () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.schedule_at sim 60 (fun () -> fired := 60 :: !fired));
  ignore (Sim.schedule_at sim 40 (fun () -> fired := 40 :: !fired));
  Sim.run ~until:50 sim;
  check (Alcotest.list Alcotest.int) "only pre-horizon events" [ 40 ]
    (List.rev !fired);
  check Alcotest.int "clock parked at horizon" 50 (Sim.now sim);
  check Alcotest.int "post-horizon event still pending" 1
    (Sim.pending sim);
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "resumed run fires it" [ 40; 60 ]
    (List.rev !fired);
  check Alcotest.int "clock at last event" 60 (Sim.now sim)

let test_sim_cancel_accounting () =
  let sim = Sim.create () in
  let ts = List.init 10 (fun i -> Sim.schedule_at sim (10 + i) ignore) in
  List.iteri (fun i t -> if i mod 2 = 0 then Sim.cancel t) ts;
  check Alcotest.int "live timers" 5 (Sim.pending sim);
  check Alcotest.int "dead slots" 5 (Sim.cancelled_pending sim);
  Sim.run sim;
  check Alcotest.int "drained" 0 (Sim.pending sim);
  check Alcotest.int "dead slots reclaimed" 0 (Sim.cancelled_pending sim)

(* Model-based scheduler test: drive the same randomized scenario —
   near/far/tied timers, nested scheduling from callbacks, random
   cancellations and a mass-cancel burst large enough to trigger
   compaction — through [Sim] and through a naive sorted-list reference
   scheduler, and require the exact same fire log. This pins down the
   total (time, insertion-order) event order across the calendar
   queue's current-bucket heap, wheel buckets and overflow tier. *)
module Ref_sched = struct
  type ev = {
    key : int;
    tie : int;
    mutable alive : bool;
    fire : unit -> unit;
  }

  type t = { mutable evs : ev list; mutable now : int; mutable tie : int }

  let create () = { evs = []; now = 0; tie = 0 }

  let schedule t key fire =
    if key < t.now then invalid_arg "Ref_sched: past";
    let ev = { key; tie = t.tie; alive = true; fire } in
    t.tie <- t.tie + 1;
    t.evs <- ev :: t.evs;
    fun () -> ev.alive <- false

  let run t =
    let rec loop () =
      let best =
        List.fold_left
          (fun acc ev ->
             if not ev.alive then acc
             else
               match acc with
               | None -> Some ev
               | Some b ->
                 if (ev.key, ev.tie) < (b.key, b.tie) then Some ev
                 else acc)
          None t.evs
      in
      match best with
      | None -> ()
      | Some ev ->
        ev.alive <- false;
        t.now <- ev.key;
        ev.fire ();
        loop ()
    in
    loop ()
end

(* Generate the scenario through an abstract (schedule, now) pair; as
   long as both schedulers fire events in the same order, every random
   draw happens at the same point and the logs coincide. *)
let drive ~schedule ~now seed =
  let rng = Rng.create seed in
  let log = ref [] in
  let cancels = ref [||] in
  let push c = cancels := Array.append !cancels [| c |] in
  let n_id = ref 0 in
  let rec spawn depth () =
    let id = !n_id in
    incr n_id;
    fun () ->
      log := (id, now ()) :: !log;
      if depth < 3 then begin
        for _ = 1 to Rng.int rng 3 do
          let dt =
            match Rng.int rng 4 with
            | 0 -> 0                                  (* tie with now *)
            | 1 -> Rng.int rng 50                     (* same bucket *)
            | 2 -> Rng.int rng 5_000                  (* within wheel *)
            | _ -> 300_000 + Rng.int rng 1_000_000    (* overflow *)
          in
          push (schedule (now () + dt) (spawn (depth + 1) ()))
        done;
        if Rng.int rng 3 = 0 && Array.length !cancels > 0 then
          !cancels.(Rng.int rng (Array.length !cancels)) ()
      end
  in
  for _ = 1 to 200 do
    push (schedule (Rng.int rng 2_000_000) (spawn 0 ()))
  done;
  (* Burst of far-future timers cancelled on the spot: enough dead
     slots to push Sim over its compaction threshold. *)
  let (_ : unit -> unit) =
    schedule 1_000_000 (fun () ->
        let cs =
          List.init 1500 (fun i ->
              schedule (5_000_000 + i) (fun () ->
                  log := (-1, now ()) :: !log))
        in
        List.iter (fun c -> c ()) cs)
  in
  log

let prop_sim_matches_reference =
  QCheck.Test.make ~name:"sim pops match sorted-list reference"
    ~count:10 QCheck.small_int
    (fun seed ->
       let sim = Sim.create () in
       let sim_log =
         drive
           ~schedule:(fun k f ->
               let tm = Sim.schedule_at sim k f in
               fun () -> Sim.cancel tm)
           ~now:(fun () -> Sim.now sim)
           seed
       in
       Sim.run sim;
       let r = Ref_sched.create () in
       let ref_log =
         drive ~schedule:(Ref_sched.schedule r)
           ~now:(fun () -> r.Ref_sched.now) seed
       in
       Ref_sched.run r;
       List.length !sim_log > 200
       && !sim_log = !ref_log
       && Sim.compactions sim > 0
       && Sim.pending sim = 0)

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim 10 (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Sim.schedule_at: 5 is in the past (now=10)")
    (fun () -> ignore (Sim.schedule_at sim 5 ignore))

let test_units_tx_time () =
  (* 1500 bytes at 10 Gbps = 1200 ns *)
  check Alcotest.int "mtu at 10G" 1200
    (Units.tx_time ~rate:(Units.gbps 10) ~bytes:1500);
  (* rounding up *)
  check Alcotest.int "1 byte at 10G" 1
    (Units.tx_time ~rate:(Units.gbps 10) ~bytes:1)

let test_units_bdp () =
  (* 40 Gbps * 8 us = 40 KB *)
  check Alcotest.int "bdp 40G x 8us" 40_000
    (Units.bdp ~rate:(Units.gbps 40) ~rtt:(Units.us 8))

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.float a) in
  let ys = List.init 100 (fun _ -> Rng.float b) in
  check Alcotest.bool "same seed, same stream" true (xs = ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let sub = Rng.split a in
  let before = Rng.float a in
  let a2 = Rng.create 7 in
  let _sub2 = Rng.split a2 in
  let before2 = Rng.float a2 in
  ignore (Rng.float sub);
  check (Alcotest.float 0.) "parent unaffected by split usage"
    before before2

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng floats live in [0,1)" ~count:500
    QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 50 do
         let x = Rng.float rng in
         if x < 0. || x >= 1. then ok := false
       done;
       !ok)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng ints live in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 50 do
         let x = Rng.int rng bound in
         if x < 0 || x >= bound then ok := false
       done;
       !ok)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential variates are non-negative"
    ~count:200
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, mean) ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 20 do
         if Rng.exponential rng ~mean < 0. then ok := false
       done;
       !ok)

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do sum := !sum +. Rng.exponential rng ~mean:100. done;
  let m = !sum /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "sample mean %.2f within 2%% of 100" m)
    true (abs_float (m -. 100.) < 2.)

let suite =
  [ Alcotest.test_case "heap: pop order" `Quick test_heap_order;
    Alcotest.test_case "heap: fifo tie-break" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap: top_key / pop_exn" `Quick
      test_heap_top_pop_exn;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "sim: event ordering" `Quick test_sim_ordering;
    Alcotest.test_case "sim: cancel" `Quick test_sim_cancel;
    Alcotest.test_case "sim: nested scheduling" `Quick
      test_sim_nested_schedule;
    Alcotest.test_case "sim: run until horizon" `Quick test_sim_until;
    Alcotest.test_case "sim: horizon event survives and resumes" `Quick
      test_sim_until_resume;
    Alcotest.test_case "sim: cancelled-timer accounting" `Quick
      test_sim_cancel_accounting;
    QCheck_alcotest.to_alcotest prop_sim_matches_reference;
    Alcotest.test_case "sim: past scheduling raises" `Quick
      test_sim_past_raises;
    Alcotest.test_case "units: tx time" `Quick test_units_tx_time;
    Alcotest.test_case "units: bdp" `Quick test_units_bdp;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick
      test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_float_range;
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_exponential_positive;
    Alcotest.test_case "rng: exponential mean" `Quick
      test_exponential_mean ]
