(* Tests for the experiment harness: configurations, the runner and
   the figure generators (smoke level — the heavy sweeps are exercised
   by bench/main.exe). *)

open Ppt_engine
open Ppt_harness

let check = Alcotest.check

let tiny_cfg ?(pattern = Config.All_to_all) ?(n_flows = 40)
    ?(load = 0.4) () =
  { (Config.oversub ~scale:2 ~n_flows ~load ()) with
    Config.pattern;
    rto_min = Units.ms 1 }

let test_config_shapes () =
  let t = Config.testbed () in
  check Alcotest.int "testbed hosts" 15 (Config.n_hosts t);
  let o = Config.oversub ~scale:9 () in
  check Alcotest.int "full fabric hosts" 144 (Config.n_hosts o);
  let s = Config.oversub ~scale:4 () in
  check Alcotest.int "scaled fabric hosts" 32 (Config.n_hosts s);
  let f = Config.fast () in
  check Alcotest.bool "fast fabric named" true
    (f.Config.name = "oversub-100/400G")

let test_runner_completes_all_schemes () =
  List.iter
    (fun scheme ->
       let r = Runner.run (tiny_cfg ()) scheme in
       check Alcotest.int
         (scheme.Schemes.s_name ^ " completes the trace")
         r.Runner.requested r.Runner.completed)
    (Schemes.headline @ [ Schemes.pias; Schemes.hpcc; Schemes.swift;
                          Schemes.ppt_swift ])

let test_runner_determinism () =
  let run () =
    let r = Runner.run (tiny_cfg ()) Schemes.ppt in
    (r.Runner.summary.Ppt_stats.Fct.overall_avg, r.Runner.events)
  in
  check Alcotest.bool "same seed, same result" true (run () = run ())

let test_runner_seed_changes_result () =
  let run seed =
    let cfg = { (tiny_cfg ()) with Config.seed } in
    (Runner.run cfg Schemes.ppt).Runner.events
  in
  check Alcotest.bool "different seed, different run" true
    (run 1 <> run 2)

(* Determinism guard for the scheduler rework: a scaled-down fig8-style
   run (testbed fabric, web-search workload) repeated with the same seed
   must reproduce the full FCT summary, the events-processed count and
   the fabric-wide drop/mark totals, for every scheme fig8 sweeps. *)
let test_fig8_determinism () =
  let cfg = Config.testbed ~n_flows:60 ~load:0.5 () in
  List.iter
    (fun scheme ->
       let snap () =
         let r = Runner.run cfg scheme in
         (r.Runner.summary, r.Runner.events, r.Runner.drops,
          r.Runner.marks)
       in
       let (s1, e1, d1, m1) = snap () and (s2, e2, d2, m2) = snap () in
       let name = scheme.Schemes.s_name in
       check Alcotest.bool (name ^ ": identical fct summary") true
         (s1 = s2);
       check Alcotest.int (name ^ ": identical events") e1 e2;
       check Alcotest.int (name ^ ": identical drops") d1 d2;
       check Alcotest.int (name ^ ": identical marks") m1 m2)
    Schemes.testbed_set

let test_runner_incast () =
  let cfg = tiny_cfg ~pattern:(Config.Incast { n_senders = 8 }) () in
  let r = Runner.run cfg Schemes.ppt in
  check Alcotest.int "incast completes" r.Runner.requested
    r.Runner.completed

let test_runner_lp_cap () =
  let r =
    Runner.run ~lp_buffer_cap:(Units.kb 24) (tiny_cfg ()) Schemes.rc3
  in
  check Alcotest.int "rc3 with capped lp buffer completes"
    r.Runner.requested r.Runner.completed

let test_runner_efficiency_bounds () =
  let r = Runner.run (tiny_cfg ()) Schemes.ppt in
  check Alcotest.bool "efficiency in (0, 1]" true
    (r.Runner.efficiency > 0. && r.Runner.efficiency <= 1.0)

let test_ablations_direction () =
  (* disabling the whole LCP must not make overall FCT better than the
     full design under a startup-dominated workload *)
  let cfg = tiny_cfg ~n_flows:60 () in
  let full = Runner.run cfg Schemes.ppt in
  let no_sched = Runner.run cfg Schemes.ppt_no_sched in
  let small r = r.Runner.summary.Ppt_stats.Fct.small_avg in
  check Alcotest.bool
    (Printf.sprintf "scheduling helps small flows: %.4f <= %.4f x1.5"
       (small full) (small no_sched))
    true
    (small full <= 1.5 *. small no_sched)

(* The headline reproduction shape, as a regression test: on the
   web-search fabric PPT must beat DCTCP on overall and small-flow FCT
   (the paper's central claim, Fig. 12). *)
let test_paper_shape_ppt_vs_dctcp () =
  let cfg = { (Config.oversub ~scale:2 ~n_flows:200 ~load:0.5 ()) with
              Config.rto_min = Units.ms 1 } in
  let d = (Runner.run cfg Schemes.dctcp).Runner.summary in
  let p = (Runner.run cfg Schemes.ppt).Runner.summary in
  check Alcotest.bool
    (Printf.sprintf "overall: ppt=%.3f < dctcp=%.3f"
       p.Ppt_stats.Fct.overall_avg d.Ppt_stats.Fct.overall_avg)
    true (p.Ppt_stats.Fct.overall_avg < d.Ppt_stats.Fct.overall_avg);
  check Alcotest.bool
    (Printf.sprintf "small avg: ppt=%.4f < dctcp=%.4f"
       p.Ppt_stats.Fct.small_avg d.Ppt_stats.Fct.small_avg)
    true (p.Ppt_stats.Fct.small_avg < d.Ppt_stats.Fct.small_avg);
  check Alcotest.bool
    (Printf.sprintf "small p99: ppt=%.4f < dctcp=%.4f"
       p.Ppt_stats.Fct.small_p99 d.Ppt_stats.Fct.small_p99)
    true (p.Ppt_stats.Fct.small_p99 < d.Ppt_stats.Fct.small_p99)

let test_figures_registry () =
  check Alcotest.int "36 experiments registered" 36
    (List.length Figures.all);
  List.iter
    (fun id ->
       check Alcotest.bool (id ^ " findable") true
         (Figures.find id <> None))
    [ "fig1"; "fig12"; "fig29"; "tab1"; "tab5"; "ext1"; "ext3";
      "chaos" ];
  check Alcotest.bool "unknown id rejected" true
    (Figures.find "fig99" = None);
  (* the static tables are flagged print-only; everything else
     simulates *)
  List.iter
    (fun e ->
       let expect_sim =
         not (List.mem e.Figures.e_id
                [ "tab1"; "tab2"; "tab3"; "tab4"; "tab5" ])
       in
       check Alcotest.bool (e.Figures.e_id ^ " sim flag") expect_sim
         e.Figures.e_sim)
    Figures.all

(* The decomposition contract: unit keys are unique within each
   experiment, and the multi-unit experiments really decompose. *)
let test_figures_units_unique () =
  List.iter
    (fun e ->
       let units = e.Figures.e_units Figures.default_opts in
       let names = List.map (fun u -> u.Figures.u_name) units in
       check Alcotest.bool (e.Figures.e_id ^ ": has units") true
         (units <> []);
       check Alcotest.int
         (e.Figures.e_id ^ ": unit names unique")
         (List.length names)
         (List.length (List.sort_uniq compare names)))
    Figures.all;
  let n_units id =
    match Figures.find id with
    | Some e -> List.length (e.Figures.e_units Figures.default_opts)
    | None -> Alcotest.fail ("missing " ^ id)
  in
  check Alcotest.int "fig12 = head + 6 headline schemes" 7
    (n_units "fig12");
  check Alcotest.int "fig8 = head + 4 loads x (head + 4 schemes)" 21
    (n_units "fig8");
  check Alcotest.bool "tab2 is a single unit" true (n_units "tab2" = 1)

let test_static_tables_print () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun id ->
       match Figures.find id with
       | Some e -> Figures.render e Figures.default_opts ppf
       | None -> Alcotest.fail ("missing " ^ id))
    [ "tab1"; "tab2"; "tab3"; "tab4"; "tab5" ];
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec go i =
      i + n <= h && (String.sub out i n = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
       check Alcotest.bool (needle ^ " printed") true (contains needle))
    [ "ppt"; "web-search"; "data-mining"; "RTO_min"; "transport control";
      "RAFT consensus" ]

let suite =
  [ Alcotest.test_case "config: topology shapes" `Quick test_config_shapes;
    Alcotest.test_case "runner: all schemes complete" `Slow
      test_runner_completes_all_schemes;
    Alcotest.test_case "runner: determinism" `Quick test_runner_determinism;
    Alcotest.test_case "runner: fig8 determinism guard" `Slow
      test_fig8_determinism;
    Alcotest.test_case "runner: seed sensitivity" `Quick
      test_runner_seed_changes_result;
    Alcotest.test_case "runner: incast pattern" `Quick test_runner_incast;
    Alcotest.test_case "runner: rc3 lp cap" `Quick test_runner_lp_cap;
    Alcotest.test_case "runner: efficiency bounds" `Quick
      test_runner_efficiency_bounds;
    Alcotest.test_case "ablation: scheduling direction" `Slow
      test_ablations_direction;
    Alcotest.test_case "paper shape: ppt beats dctcp" `Slow
      test_paper_shape_ppt_vs_dctcp;
    Alcotest.test_case "figures: registry" `Quick test_figures_registry;
    Alcotest.test_case "figures: unit decomposition" `Quick
      test_figures_units_unique;
    Alcotest.test_case "figures: static tables" `Quick
      test_static_tables_print ]
