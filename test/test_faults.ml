(* Tests for lib/faults: spec parsing/printing roundtrips, injector
   semantics on a live fabric, RTO backoff under a blackout, chaos
   QCheck properties (liveness + fault-drop conservation across five
   transports), and seed-matrix determinism guarding that the fault
   layer never perturbs unfaulted runs. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport
open Ppt_obs
module F = Ppt_faults.Fault_spec
module Injector = Ppt_faults.Injector

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected parse error: " ^ e)

(* --- fixtures (mirrors test_obs) ----------------------------------- *)

let star ?(n = 4) ?(delay = Units.us 2) ?(seed = 42) ?qcfg () =
  let sim = Sim.create () in
  let qcfg =
    match qcfg with Some q -> q | None -> Helpers.default_qcfg ()
  in
  let topo =
    Topology.star ~sim ~n_hosts:n ~rate:(Units.gbps 10) ~delay ~qcfg ()
  in
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create seed)
      topo
  in
  (sim, topo, ctx)

let install topo ~seed spec =
  Injector.install ~net:topo.Topology.net ~hosts:topo.Topology.hosts
    ~to_host_port:topo.Topology.to_host_port ~seed spec

let launch ctx (t : Endpoint.transport) specs =
  let sim = ctx.Context.sim in
  List.iteri
    (fun i (src, dst, size, start) ->
       let flow = Flow.create ~id:i ~src ~dst ~size ~start in
       ignore (Sim.schedule_at sim start (fun () ->
           Context.flow_started ctx flow;
           t.Endpoint.t_start flow)))
    specs

let captured ?(capacity = 1 lsl 19) f =
  let ring = Trace.Ring.create ~capacity () in
  let r = Trace.with_sink (Trace.Ring.sink ring) f in
  check Alcotest.int "ring kept every event" 0 (Trace.Ring.dropped ring);
  (r, Trace.Ring.to_list ring)

(* --- spec parsing and printing ------------------------------------- *)

let test_parse_basic () =
  let spec = ok (F.of_string "down@2ms-5ms:link:3") in
  check Alcotest.bool "one clause" true
    (spec
     = [ { F.kind = F.Down; from_t = Units.ms 2; until_t = Units.ms 5;
           sel = F.Link 3 } ]);
  let multi =
    ok (F.of_string
          " ber=1e-5@0ms-50ms:core ;rate=0.5@100us-2ms:node:4:1; \
           delay+=150us@1ms-3ms:all; loss=0.25@0us-800us:tohost:2")
  in
  check Alcotest.int "four clauses" 4 (List.length multi);
  check Alcotest.bool "ber clause" true
    (List.nth multi 0
     = { F.kind = F.Ber 1e-5; from_t = 0; until_t = Units.ms 50;
         sel = F.Core });
  check Alcotest.bool "rate clause" true
    (List.nth multi 1
     = { F.kind = F.Rate 0.5; from_t = Units.us 100;
         until_t = Units.ms 2; sel = F.Port { node = 4; port = 1 } });
  check Alcotest.bool "delay clause" true
    (List.nth multi 2
     = { F.kind = F.Extra_delay (Units.us 150); from_t = Units.ms 1;
         until_t = Units.ms 3; sel = F.All });
  check Alcotest.bool "loss clause" true
    (List.nth multi 3
     = { F.kind = F.Loss 0.25; from_t = 0; until_t = Units.us 800;
         sel = F.To_host 2 });
  (* 'pause' is an alias for 'down' *)
  check Alcotest.bool "pause alias" true
    (ok (F.of_string "pause@1ms-2ms:host:0")
     = ok (F.of_string "down@1ms-2ms:host:0"));
  (* empty specs are pristine, not errors *)
  check Alcotest.bool "empty string" true (F.of_string "" = Ok []);
  check Alcotest.bool "only separators" true
    (F.of_string " ; ; " = Ok [])

let test_parse_rejects () =
  List.iter
    (fun s ->
       match F.of_string s with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ "down@5ms-2ms:link:0";        (* empty window *)
      "down@2ms-2ms:link:0";        (* empty window *)
      "loss=1.5@0ms-1ms:all";       (* loss outside [0,1] *)
      "ber=0.5@0ms-1ms:all";        (* ber outside [0,1e-2] *)
      "rate=0@0ms-1ms:all";         (* rate outside (0,1] *)
      "rate=1.2@0ms-1ms:all";
      "delay+=5@0ms-1ms:all";       (* time without unit *)
      "down@1ms:all";               (* no FROM-UNTIL window *)
      "down@1ms-2ms";               (* no selector *)
      "frob@0ms-1ms:all";           (* unknown kind *)
      "down@1ms-2ms:rack:3";        (* unknown selector *)
      "down@1ms-2ms:host:-1" ]

let test_print_canonical () =
  check Alcotest.string "canonical form survives"
    "down@2ms-5ms:link:3"
    (F.to_string (ok (F.of_string "down@2ms-5ms:link:3")));
  check Alcotest.string "times reduce to the largest exact unit"
    "delay+=1500us@1us-1s:all"
    (F.to_string
       (ok (F.of_string "delay+=1500000ns@1000ns-1000ms:all")))

let gen_clause =
  let open QCheck.Gen in
  let time =
    oneof
      [ int_range 0 9_999;
        map (fun n -> Units.us n) (int_range 0 9_999);
        map (fun n -> Units.ms n) (int_range 0 5_000) ]
  in
  let sel =
    oneof
      [ map (fun h -> F.Host h) (int_range 0 64);
        map (fun h -> F.To_host h) (int_range 0 64);
        map (fun h -> F.Link h) (int_range 0 64);
        (int_range 0 64 >>= fun node -> int_range 0 8 >>= fun port ->
         return (F.Port { node; port }));
        oneofl [ F.Core; F.Edge; F.All ] ]
  in
  let kind =
    oneof
      [ return F.Down;
        map (fun n -> F.Loss (float_of_int n /. 1_000_000.))
          (int_range 0 1_000_000);
        map (fun n -> F.Ber (float_of_int n *. 1e-9))
          (int_range 0 10_000);
        map (fun n -> F.Rate (float_of_int n /. 1_000.))
          (int_range 1 1_000);
        map (fun n -> F.Extra_delay n) (int_range 0 1_000_000) ]
  in
  kind >>= fun kind -> time >>= fun from_t ->
  time >>= fun dur -> sel >>= fun sel ->
  return { F.kind; from_t; until_t = from_t + dur + 1; sel }

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"fault spec: to_string/of_string roundtrip"
    ~count:300
    (QCheck.make ~print:F.to_string
       QCheck.Gen.(list_size (int_range 1 4) gen_clause))
    (fun spec -> F.of_string (F.to_string spec) = Ok spec)

let test_scenarios_parse () =
  List.iter
    (fun core ->
       List.iter
         (fun (name, s) ->
            match F.of_string s with
            | Ok (_ :: _) -> ()
            | Ok [] -> Alcotest.fail (name ^ ": empty scenario")
            | Error e -> Alcotest.fail (name ^ ": " ^ e))
         (F.scenarios ~receiver:1 ~spike:(Units.us 180) ~core))
    [ false; true ]

(* --- injector semantics on a live fabric ---------------------------- *)

(* A link flap mid-transfer: both ports of host 1's link report down at
   exactly 2ms and up at exactly 5ms, traffic into the downed egress
   surfaces as reason-'D' fault drops, and the flow still completes —
   necessarily after the window closes. *)
let test_flap_mid_transfer () =
  let sim, topo, ctx = star () in
  install topo ~seed:1 (ok (F.of_string "down@2ms-5ms:link:1"));
  let t = Dctcp.make () ctx in
  (* ~4ms of line-rate transfer, so the flow is mid-flight when the
     2ms-5ms window opens *)
  let (), events =
    captured (fun () ->
        launch ctx t [ (0, 1, 5_000_000, 0) ];
        Sim.run ~until:(Units.sec 30) sim)
  in
  Helpers.assert_drained sim;
  check Alcotest.int "flow completed" 1 ctx.Context.completed;
  let downs =
    List.filter_map
      (function ts, Event.Link_down _ -> Some ts | _ -> None)
      events
  and ups =
    List.filter_map
      (function ts, Event.Link_up _ -> Some ts | _ -> None)
      events
  in
  check (Alcotest.list Alcotest.int) "both link ports down at 2ms"
    [ Units.ms 2; Units.ms 2 ] downs;
  check (Alcotest.list Alcotest.int) "both link ports up at 5ms"
    [ Units.ms 5; Units.ms 5 ] ups;
  let discards =
    List.length
      (List.filter
         (function
           | _, Event.Fault_drop { reason = 'D'; _ } -> true
           | _ -> false)
         events)
  in
  check Alcotest.bool "downed egress discarded traffic" true
    (discards > 0);
  check Alcotest.int "ground-truth counter matches trace" discards
    (Net.total_fault_drops ctx.Context.net);
  let fct = Option.get (Helpers.fct_of ctx 0) in
  check Alcotest.bool "completion pushed past the window" true
    (fct > Units.ms 5)

(* A window that opens only after the flow has finished must leave the
   run untouched: the faulted trace minus its link transitions equals
   the pristine trace event for event. *)
let test_window_after_flow_is_noop () =
  let run faulted =
    let sim, topo, ctx = star () in
    if faulted then
      install topo ~seed:1 (ok (F.of_string "down@10ms-11ms:link:1"));
    let t = Dctcp.make () ctx in
    let (), events =
      captured (fun () ->
          launch ctx t [ (0, 1, 50_000, 0) ];
          Sim.run ~until:(Units.sec 30) sim)
    in
    Helpers.assert_drained sim;
    check Alcotest.int "flow completed" 1 ctx.Context.completed;
    events
  in
  let plain = run false in
  let faulted =
    List.filter
      (function
        | _, (Event.Link_down _ | Event.Link_up _) -> false
        | _ -> true)
      (run true)
  in
  check Alcotest.bool "identical up to link transitions" true
    (plain = faulted)

let fct_under spec =
  let sim, topo, ctx = star () in
  (match spec with
   | Some s -> install topo ~seed:1 (ok (F.of_string s))
   | None -> ());
  launch ctx (Dctcp.make () ctx) [ (0, 1, 500_000, 0) ];
  Sim.run ~until:(Units.sec 30) sim;
  Helpers.assert_drained sim;
  Option.get (Helpers.fct_of ctx 0)

let test_degrade_slows () =
  let plain = fct_under None in
  let degraded = fct_under (Some "rate=0.1@0us-1s:link:1") in
  check Alcotest.bool
    (Printf.sprintf "10%%-rate link: %dns > 2x %dns" degraded plain)
    true
    (degraded > 2 * plain)

let test_delay_spike_slows () =
  let plain = fct_under None in
  let spiked = fct_under (Some "delay+=500us@0us-1s:link:1") in
  check Alcotest.bool
    (Printf.sprintf "delay spike: %dns > %dns + 500us" spiked plain)
    true
    (spiked > plain + Units.us 500)

(* Random loss and corruption surface with their own reasons, and the
   flow still completes once the window closes. *)
let reasons_under spec =
  let sim, topo, ctx = star () in
  install topo ~seed:7 (ok (F.of_string spec));
  let t = Dctcp.make () ctx in
  let (), events =
    captured (fun () ->
        launch ctx t [ (0, 1, 2_000_000, 0) ];
        Sim.run ~until:(Units.sec 30) sim)
  in
  Helpers.assert_drained sim;
  check Alcotest.int "flow completed" 1 ctx.Context.completed;
  List.filter_map
    (function _, Event.Fault_drop { reason; _ } -> Some reason
            | _ -> None)
    events

let test_loss_reason () =
  let rs = reasons_under "loss=1@1ms-2ms:tohost:1" in
  check Alcotest.bool "loss kills surfaced as 'L'" true
    (rs <> [] && List.for_all (fun r -> r = 'L') rs)

let test_ber_reason () =
  let rs = reasons_under "ber=1e-4@0ms-2ms:tohost:1" in
  check Alcotest.bool "corruption kills surfaced as 'C'" true
    (rs <> [] && List.for_all (fun r -> r = 'C') rs)

(* Same seed, same spec => identical traces, including every random
   loss draw. *)
let test_injector_deterministic () =
  let run () =
    let sim, topo, ctx = star () in
    install topo ~seed:9
      (ok (F.of_string "loss=0.3@0ms-3ms:link:1; ber=1e-5@0ms-3ms:all"));
    let t = Ppt_core.Ppt.make () ctx in
    let (), events =
      captured (fun () ->
          launch ctx t [ (0, 1, 800_000, 0); (2, 1, 200_000, 50_000) ];
          Sim.run ~until:(Units.sec 30) sim)
    in
    Helpers.assert_drained sim;
    check Alcotest.int "flows completed" 2 ctx.Context.completed;
    events
  in
  let a = run () and b = run () in
  check Alcotest.bool "loss draws present" true
    (List.exists
       (function _, Event.Fault_drop _ -> true | _ -> false)
       a);
  check Alcotest.bool "identical event-for-event" true (a = b)

let test_install_rejects () =
  let _sim, topo, _ctx = star () in
  Alcotest.check_raises "out-of-range host"
    (Invalid_argument "fault selector host:9: no such host")
    (fun () ->
       install topo ~seed:1 (ok (F.of_string "down@1ms-2ms:host:9")));
  Alcotest.check_raises "core on a star matches nothing"
    (Invalid_argument
       "fault selector core matches no ports on this topology")
    (fun () ->
       install topo ~seed:1 (ok (F.of_string "down@1ms-2ms:core")))

(* --- Reliable RTO semantics under a blackout ------------------------ *)

(* Black-hole the sender's NIC for 300ms. The emitted Rto_fire backoffs
   (pre-doubling) must walk 1,2,4,...,64 and then sit at the 64x cap;
   the first ACK after recovery resets the backoff to 1; completing the
   flow cancels the timer. *)
let test_rto_backoff_blackout () =
  let sim, topo, ctx = star () in
  install topo ~seed:1 (ok (F.of_string "down@30us-300ms:host:0"));
  let flow = Flow.create ~id:7 ~src:0 ~dst:1 ~size:200_000 ~start:0 in
  let snd = Reliable.create ctx flow (Reliable.default_params ()) in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  let done_ = ref false in
  Net.register ctx.Context.net ~host:1 ~flow:7 (fun p ->
      Receiver.on_data rcv p);
  Net.register ctx.Context.net ~host:0 ~flow:7 (fun p ->
      if p.Packet.kind = Packet.Ack then Reliable.on_ack snd p);
  rcv.Receiver.on_done <- (fun () ->
      done_ := true;
      Reliable.shutdown snd);
  let (), events =
    captured (fun () ->
        ignore (Sim.schedule_at sim 0 (fun () -> Reliable.start snd));
        Sim.run ~until:(Units.sec 2) sim)
  in
  Helpers.assert_drained sim;
  check Alcotest.bool "flow completed after recovery" true !done_;
  let backoffs =
    List.filter_map
      (function
        | _, Event.Rto_fire { flow = 7; backoff } -> Some backoff
        | _ -> None)
      events
  in
  check Alcotest.bool
    (Printf.sprintf "enough fires to reach the cap (%d)"
       (List.length backoffs))
    true
    (List.length backoffs >= 8);
  let prefix l n = List.filteri (fun i _ -> i < n) l in
  check (Alcotest.list Alcotest.int) "backoff doubles then caps at 64"
    [ 1; 2; 4; 8; 16; 32; 64; 64 ] (prefix backoffs 8);
  check Alcotest.bool "never exceeds the cap" true
    (List.for_all (fun b -> b <= 64) backoffs);
  check Alcotest.int "backoff reset to 1 by the recovery ACK" 1
    snd.Reliable.rto_backoff;
  check Alcotest.bool "timer cancelled on completion" true
    (snd.Reliable.rto_timer = None)

(* Without any fault the timer must also be gone after a clean run. *)
let test_rto_timer_cancelled_clean () =
  let sim, _topo, ctx = star () in
  let flow = Flow.create ~id:3 ~src:0 ~dst:1 ~size:60_000 ~start:0 in
  let snd = Reliable.create ctx flow (Reliable.default_params ()) in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  Net.register ctx.Context.net ~host:1 ~flow:3 (fun p ->
      Receiver.on_data rcv p);
  Net.register ctx.Context.net ~host:0 ~flow:3 (fun p ->
      if p.Packet.kind = Packet.Ack then Reliable.on_ack snd p);
  rcv.Receiver.on_done <- (fun () -> Reliable.shutdown snd);
  ignore (Sim.schedule_at sim 0 (fun () -> Reliable.start snd));
  Sim.run ~until:(Units.sec 2) sim;
  Helpers.assert_drained sim;
  check Alcotest.int "no RTO ever fired (backoff untouched)" 1
    snd.Reliable.rto_backoff;
  check Alcotest.bool "timer cancelled" true
    (snd.Reliable.rto_timer = None)

(* --- chaos property: liveness + conservation ------------------------ *)

(* Every fault-killed data packet of a completed flow must be covered
   by a surviving retransmission. Counting at the source NIC:

     attempts(flow, seq) = data enqueues at the source host
                         + reason-'D' kills at the source host
                           (a downed NIC discards instead of enqueuing)

   while every data Fault_drop anywhere in the fabric consumed one of
   those attempts (trimmed headers, wire size <= trim_wire_bytes, carry
   no payload and are exempt). Completion therefore needs strictly more
   attempts than fault deaths. Also cross-checks the trace against the
   ground-truth [Net.total_fault_drops] counter. *)
let fault_conservation ~net ~src_of events =
  let tbl = Hashtbl.create 256 in
  let get k = try Hashtbl.find tbl k with Not_found -> 0 in
  let add k v = Hashtbl.replace tbl k (get k + v) in
  let total_fault_events = ref 0 in
  List.iter
    (fun (_ts, ev) ->
       match (ev : Event.t) with
       | Event.Enqueue { node; flow; seq; kind = 'D'; _ }
         when node = src_of flow ->
         add (`Attempt (flow, seq)) 1
       | Event.Fault_drop { node; flow; seq; kind; size; reason; _ } ->
         incr total_fault_events;
         if kind = 'D' then begin
           if reason = 'D' && node = src_of flow then
             add (`Attempt (flow, seq)) 1;
           if size > Prio_queue.trim_wire_bytes then
             add (`FaultDead (flow, seq)) 1
         end
       | _ -> ())
    events;
  if !total_fault_events <> Net.total_fault_drops net then
    failwith "Fault_drop events disagree with Net.total_fault_drops";
  Hashtbl.iter
    (fun k deaths ->
       match k with
       | `FaultDead (flow, seq) ->
         let attempts = get (`Attempt (flow, seq)) in
         if attempts < deaths + 1 then
           failwith
             (Printf.sprintf
                "flow %d seq %d: %d attempts for %d fault deaths" flow
                seq attempts deaths)
       | _ -> ())
    (Hashtbl.copy tbl)

(* Bounded random fault specs on a 4-host star: windows close by 6ms,
   loss <= 30%, BER <= 4e-6, rate >= 25%, spikes <= 500us — severe but
   always recoverable. Every transport must then complete every flow
   (liveness), leave no pending timers (the sim drains), and satisfy
   the conservation law above. *)
let gen_chaos_spec =
  let open QCheck.Gen in
  let sel =
    oneof
      [ map (fun h -> F.Host h) (int_range 0 3);
        map (fun h -> F.To_host h) (int_range 0 3);
        map (fun h -> F.Link h) (int_range 0 3);
        return F.All ]
  in
  let kind =
    oneof
      [ return F.Down;
        map (fun n -> F.Loss (float_of_int n /. 100.)) (int_range 1 30);
        map (fun n -> F.Ber (float_of_int n *. 1e-7)) (int_range 1 40);
        map (fun n -> F.Rate (float_of_int n /. 100.))
          (int_range 25 100);
        map (fun n -> F.Extra_delay (Units.us n)) (int_range 10 500) ]
  in
  let clause =
    kind >>= fun kind -> int_range 0 3_000 >>= fun from_us ->
    int_range 100 3_000 >>= fun dur_us -> sel >>= fun sel ->
    return
      { F.kind; from_t = Units.us from_us;
        until_t = Units.us (from_us + dur_us); sel }
  in
  list_size (int_range 1 3) clause

let chaos_prop (name, factory, trim) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "%s: liveness + conservation under random faults" name)
    ~count:10
    (QCheck.make
       ~print:(fun (seed, sizes, spec) ->
         Printf.sprintf "seed=%d sizes=[%s] spec=%S" seed
           (String.concat ";" (List.map string_of_int sizes))
           (F.to_string spec))
       QCheck.Gen.(
         int_range 0 1_000 >>= fun seed ->
         list_size (int_range 3 5) (int_range 2_000 150_000)
         >>= fun sizes ->
         gen_chaos_spec >>= fun spec -> return (seed, sizes, spec)))
    (fun (seed, sizes, spec) ->
       let qcfg =
         if trim then
           { (Helpers.default_qcfg ()) with Prio_queue.trim = true }
         else Helpers.default_qcfg ()
       in
       let sim, topo, ctx = star ~seed ~qcfg () in
       install topo ~seed spec;
       let t = factory ctx in
       let src_of flow = flow mod 4 in
       let (), events =
         captured (fun () ->
             launch ctx t
               (List.mapi
                  (fun i size ->
                     (src_of i, (i + 1) mod 4, size, i * 100_000))
                  sizes);
             Sim.run ~until:(Units.sec 30) sim)
       in
       if ctx.Context.completed <> List.length sizes then
         failwith
           (Printf.sprintf "liveness: %d/%d flows completed"
              ctx.Context.completed (List.length sizes));
       if Sim.pending sim <> 0 then
         failwith
           (Printf.sprintf "timer leak: %d pending after quiescence"
              (Sim.pending sim));
       fault_conservation ~net:ctx.Context.net ~src_of events;
       true)

let chaos_transports =
  [ ("tcp", Tcp.make (), false);
    ("dctcp", Dctcp.make (), false);
    ("ppt", Ppt_core.Ppt.make (), false);
    ("ndp", Ndp.make (), true);
    ("homa", Homa.make (), false) ]

(* --- the canonical flap through the harness ------------------------- *)

(* ISSUE acceptance: under the canonical link flap every transport of
   the chaos set completes 100% of its flows, and the trace shows the
   link transitions. *)
let test_flap_all_schemes () =
  let spec = ok (F.of_string "down@2ms-5ms:link:3") in
  List.iter
    (fun scheme ->
       let cfg =
         Ppt_harness.Config.testbed ~n_flows:20 ~load:0.5 ()
         |> Ppt_harness.Config.with_faults spec
       in
       let r, events =
         captured (fun () -> Ppt_harness.Runner.run cfg scheme)
       in
       check Alcotest.int
         (r.Ppt_harness.Runner.r_scheme ^ ": all flows completed")
         r.Ppt_harness.Runner.requested
         r.Ppt_harness.Runner.completed;
       let s = Summary.of_list events in
       check Alcotest.bool
         (r.Ppt_harness.Runner.r_scheme ^ ": link transitions traced")
         true
         (match List.assoc_opt "link_down" s.Summary.by_tag with
          | Some n -> n >= 2
          | None -> false))
    Ppt_harness.Schemes.chaos_set

(* --- seed-matrix determinism ---------------------------------------- *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic; s

let traced_run ?faults ~seed scheme path =
  let cfg =
    Ppt_harness.Config.testbed ~n_flows:12 ~load:0.5 ~seed ()
    |> Ppt_harness.Config.with_trace ~path
  in
  let cfg =
    match faults with
    | None -> cfg
    | Some s -> Ppt_harness.Config.with_faults s cfg
  in
  Ppt_harness.Runner.run cfg scheme

(* fig8-small under seeds 1..5 for dctcp and ppt: two runs of the same
   seed must produce a byte-identical JSONL trace and an identical FCT
   record table — the golden guard that new Rng fault draws can never
   perturb existing streams. *)
let test_seed_matrix () =
  List.iter
    (fun scheme ->
       List.iter
         (fun seed ->
            let pa = Filename.temp_file "ppt_seed_a" ".jsonl" in
            let pb = Filename.temp_file "ppt_seed_b" ".jsonl" in
            Fun.protect
              ~finally:(fun () -> Sys.remove pa; Sys.remove pb)
              (fun () ->
                 let ra = traced_run ~seed scheme pa in
                 let rb = traced_run ~seed scheme pb in
                 let tag =
                   Printf.sprintf "%s seed %d"
                     ra.Ppt_harness.Runner.r_scheme seed
                 in
                 check Alcotest.int (tag ^ ": all completed")
                   ra.Ppt_harness.Runner.requested
                   ra.Ppt_harness.Runner.completed;
                 check Alcotest.bool (tag ^ ": byte-identical trace")
                   true
                   (String.equal (read_file pa) (read_file pb));
                 check Alcotest.bool (tag ^ ": identical FCT records")
                   true
                   (ra.Ppt_harness.Runner.records
                    = rb.Ppt_harness.Runner.records)))
         [ 1; 2; 3; 4; 5 ])
    [ Ppt_harness.Schemes.dctcp; Ppt_harness.Schemes.ppt ]

(* An empty spec is the pristine fabric, byte for byte; and a real spec
   must not perturb workload generation (same flow trace in and out of
   chaos). *)
let test_faults_off_is_pristine () =
  let pa = Filename.temp_file "ppt_pristine" ".jsonl" in
  let pb = Filename.temp_file "ppt_empty_spec" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove pa; Sys.remove pb)
    (fun () ->
       let r_plain = traced_run ~seed:3 Ppt_harness.Schemes.ppt pa in
       let r_empty =
         traced_run ~faults:[] ~seed:3 Ppt_harness.Schemes.ppt pb
       in
       check Alcotest.bool "faults=[] is byte-identical to no faults"
         true
         (String.equal (read_file pa) (read_file pb));
       let r_chaos =
         traced_run
           ~faults:(ok (F.of_string "down@2ms-4ms:link:2"))
           ~seed:3 Ppt_harness.Schemes.ppt pb
       in
       check Alcotest.bool
         "fault spec leaves the generated flow trace unchanged" true
         (r_plain.Ppt_harness.Runner.trace
          = r_chaos.Ppt_harness.Runner.trace);
       check Alcotest.int "chaos run still completes"
         r_chaos.Ppt_harness.Runner.requested
         r_chaos.Ppt_harness.Runner.completed;
       ignore r_empty)

let suite =
  [ Alcotest.test_case "spec: parses clauses and aliases" `Quick
      test_parse_basic;
    Alcotest.test_case "spec: rejects malformed clauses" `Quick
      test_parse_rejects;
    Alcotest.test_case "spec: canonical printing" `Quick
      test_print_canonical;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    Alcotest.test_case "spec: canned scenarios parse" `Quick
      test_scenarios_parse;
    Alcotest.test_case "injector: link flap mid-transfer" `Quick
      test_flap_mid_transfer;
    Alcotest.test_case "injector: window after flow is a no-op" `Quick
      test_window_after_flow_is_noop;
    Alcotest.test_case "injector: rate degrade slows the flow" `Quick
      test_degrade_slows;
    Alcotest.test_case "injector: delay spike slows the flow" `Quick
      test_delay_spike_slows;
    Alcotest.test_case "injector: loss kills tagged 'L'" `Quick
      test_loss_reason;
    Alcotest.test_case "injector: corruption kills tagged 'C'" `Quick
      test_ber_reason;
    Alcotest.test_case "injector: deterministic across reruns" `Quick
      test_injector_deterministic;
    Alcotest.test_case "injector: rejects bad selectors" `Quick
      test_install_rejects;
    Alcotest.test_case "rto: backoff ladder under blackout" `Quick
      test_rto_backoff_blackout;
    Alcotest.test_case "rto: timer cancelled on clean completion"
      `Quick test_rto_timer_cancelled_clean ]
  @ List.map (fun t -> QCheck_alcotest.to_alcotest (chaos_prop t))
      chaos_transports
  @ [ Alcotest.test_case "harness: flap across the chaos set" `Quick
        test_flap_all_schemes;
      Alcotest.test_case "harness: seed-matrix determinism" `Quick
        test_seed_matrix;
      Alcotest.test_case "harness: faults off is pristine" `Quick
        test_faults_off_is_pristine ]
