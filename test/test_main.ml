let () =
  Alcotest.run "ppt"
    [ ("engine", Test_engine.suite);
      ("netsim", Test_netsim.suite);
      ("workload", Test_workload.suite);
      ("stats", Test_stats.suite);
      ("transport", Test_transport.suite);
      ("core", Test_core.suite);
      ("baselines", Test_baselines.suite);
      ("harness", Test_harness.suite);
      ("sweep", Test_sweep.suite);
      ("invariants", Test_invariants.suite);
      ("obs", Test_obs.suite);
      ("faults", Test_faults.suite) ]
