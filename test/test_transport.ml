(* End-to-end tests for the reliable sender core and DCTCP. *)

open Ppt_engine
open Ppt_transport

let check = Alcotest.check

(* One 100KB DCTCP flow on an idle network completes at roughly
   line rate. *)
let test_single_flow_completes () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 100_000, 0) ];
  match Helpers.fct_of ctx 0 with
  | None -> Alcotest.fail "flow did not complete"
  | Some fct ->
    (* 100KB at 10G is 80us of serialization; allow ramp-up slack. *)
    check Alcotest.bool
      (Printf.sprintf "fct=%dns plausible" fct)
      true
      (fct > 80_000 && fct < 2_000_000)

let test_tiny_flow_completes () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 1, 0) ];
  check Alcotest.bool "1-byte flow finishes" true
    (Helpers.fct_of ctx 0 <> None)

let test_many_flows_complete () =
  let _sim, _topo, ctx = Helpers.star ~n:6 () in
  let dctcp = Dctcp.make () ctx in
  let specs =
    List.init 30 (fun i ->
        let src = i mod 5 in
        (src, 5, 10_000 + (i * 997), i * 10_000))
  in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all flows complete" 30
    (Ppt_stats.Fct.count ctx.Context.fct)

(* Two long flows sharing a bottleneck should finish in about twice the
   solo time each: a fairness sanity check. *)
let test_two_flow_sharing () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp
    [ (0, 2, 2_000_000, 0); (1, 2, 2_000_000, 0) ];
  let f0 = Option.get (Helpers.fct_of ctx 0) in
  let f1 = Option.get (Helpers.fct_of ctx 1) in
  (* solo time ~1.6ms; shared both should take ~3.2ms, and neither
     should be starved (>4x the other). *)
  check Alcotest.bool
    (Printf.sprintf "f0=%d f1=%d both near fair share" f0 f1)
    true
    (f0 > 2_400_000 && f1 > 2_400_000
     && f0 < 8_000_000 && f1 < 8_000_000)

(* Losses are repaired: shrink the switch buffer so overflow happens
   and verify all data still arrives. *)
let test_loss_recovery () =
  let qcfg =
    Helpers.default_qcfg ~buffer:(Units.kb 15) ~hp_thresh:(Units.kb 200)
      ~lp_thresh:(Units.kb 200) ()
    (* marking thresholds above the buffer: pure drop-tail, no ECN *)
  in
  let _sim, _topo, ctx = Helpers.star ~n:5 ~qcfg () in
  let dctcp = Dctcp.make () ctx in
  let specs = List.init 4 (fun i -> (i, 4, 500_000, 0)) in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all complete despite drops" 4
    (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.bool "drops actually happened" true
    (Ppt_netsim.Net.total_drops ctx.Context.net > 0)

(* ECN marking keeps the queue short: with DCTCP the bottleneck should
   see zero drops where plain drop-tail would overflow. *)
let test_ecn_prevents_drops () =
  let _sim, _topo, ctx = Helpers.star ~n:5 () in
  let dctcp = Dctcp.make () ctx in
  let specs = List.init 4 (fun i -> (i, 4, 1_000_000, 0)) in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all complete" 4 (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.int "no drops with ECN" 0
    (Ppt_netsim.Net.total_drops ctx.Context.net);
  check Alcotest.bool "marks happened" true
    (Ppt_netsim.Net.total_marks ctx.Context.net > 0)

(* The DCTCP view exposes alpha decaying towards zero on an
   uncongested path and wmax tracking the top window. *)
let test_dctcp_view () =
  let _sim, _topo, ctx = Helpers.star () in
  let seen_alpha = ref 2.0 in
  let transport =
    { Endpoint.t_name = "dctcp-probe";
      t_start = (fun flow ->
          let params = Reliable.default_params () in
          Endpoint.launch_window_flow ctx ~params
            ~rcv_cfg:Receiver.default_config
            ~setup:(fun snd _rcv ->
                let view = Dctcp.attach snd in
                fun () -> seen_alpha := view.Dctcp.alpha ())
            flow) }
  in
  Helpers.run_flows ctx transport [ (0, 1, 3_000_000, 0) ];
  (* alpha starts at 1.0; a long-running flow must have updated it to a
     genuine congestion estimate strictly inside (0, 1). *)
  check Alcotest.bool
    (Printf.sprintf "alpha=%f updated and bounded" !seen_alpha)
    true (!seen_alpha > 0. && !seen_alpha < 0.9)

let test_flow_counters () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 123_456, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "hcp payload covers flow" true
    (r.Ppt_stats.Fct.hcp_payload >= 123_456);
  check Alcotest.int "no lcp bytes for plain dctcp" 0
    r.Ppt_stats.Fct.lcp_payload

let test_determinism () =
  let run () =
    let _sim, _topo, ctx = Helpers.star ~n:6 () in
    let dctcp = Dctcp.make () ctx in
    let specs =
      List.init 20 (fun i -> (i mod 5, 5, 40_000 + (i * 321), i * 5_000))
    in
    Helpers.run_flows ctx dctcp specs;
    List.map (fun r -> (r.Ppt_stats.Fct.flow, r.Ppt_stats.Fct.finish))
      (Ppt_stats.Fct.records ctx.Context.fct)
  in
  check Alcotest.bool "identical runs" true (run () = run ())

(* --- wire.ml: protocol metadata accessors --- *)

let test_wire_meta () =
  let module Packet = Ppt_netsim.Packet in
  let data =
    Packet.make ~seq:7 ~payload:1460
      ~meta:(Wire.Data_meta { tx = 12_345; first_rtt = true })
      ~flow:1 ~src:0 ~dst:1 Packet.Data
  in
  check (Alcotest.option Alcotest.int) "data_tx_time" (Some 12_345)
    (Wire.data_tx_time data);
  check Alcotest.bool "first-rtt flag carried" true
    (Wire.is_first_rtt data);
  let later =
    Packet.make ~seq:9
      ~meta:(Wire.Data_meta { tx = 99; first_rtt = false })
      ~flow:1 ~src:0 ~dst:1 Packet.Data
  in
  check Alcotest.bool "past the first rtt" false
    (Wire.is_first_rtt later);
  let ack =
    Packet.make
      ~meta:(Wire.Ack_meta
               { cum = 4; sacks = [ 6; 5 ]; ece = true; data_tx = 77 })
      ~flow:1 ~src:1 ~dst:0 Packet.Ack
  in
  (match Wire.ack_meta ack with
   | Some (cum, sacks, ece, data_tx) ->
     check Alcotest.int "cum" 4 cum;
     check (Alcotest.list Alcotest.int) "sacks" [ 6; 5 ] sacks;
     check Alcotest.bool "ece echo" true ece;
     check Alcotest.int "data_tx echo" 77 data_tx;
     check Alcotest.bool "no telemetry" true (Packet.tel_count ack = 0)
   | None -> Alcotest.fail "ack_meta failed to destructure");
  check Alcotest.bool "accessors reject foreign metas" true
    (Wire.data_tx_time ack = None
     && Wire.ack_meta data = None
     && not (Wire.is_first_rtt ack))

(* --- tcp.ml: slow start / loss recovery state machine --- *)

let ack_info ?(newly = 0) () =
  { Reliable.ai_cum = 0; ai_sacks = []; ai_ece = false; ai_data_tx = 0;
    ai_tel = Ppt_netsim.Packet.dummy; ai_newly_acked = newly;
    ai_cum_advanced = true }

let test_tcp_congestion_control () =
  let _sim, _topo, ctx = Helpers.star () in
  let flow = Flow.create ~id:0 ~src:0 ~dst:1 ~size:1_000_000 ~start:0 in
  let mss = Ppt_netsim.Packet.max_payload in
  let fmss = float_of_int mss in
  let params =
    Reliable.default_params ~initial_cwnd:(3 * mss) ~ecn_capable:false ()
  in
  let s = Reliable.create ctx flow params in
  Tcp.attach s;
  let eps = Alcotest.float 0.01 in
  (* slow start: every newly acked byte grows cwnd by one byte *)
  s.Reliable.hook_on_ack s (ack_info ~newly:mss ());
  check eps "slow start grows one seg per acked seg" (4. *. fmss)
    (Reliable.cwnd s);
  (* fast-retransmit loss: window halves *)
  Reliable.set_cwnd s (20. *. fmss);
  s.Reliable.hook_on_loss s;
  check eps "loss halves the window" (10. *. fmss) (Reliable.cwnd s);
  (* now above ssthresh: congestion avoidance, additive growth *)
  let before = Reliable.cwnd s in
  s.Reliable.hook_on_ack s (ack_info ~newly:mss ());
  let growth = Reliable.cwnd s -. before in
  check Alcotest.bool
    (Printf.sprintf "additive growth (%.1fB) well below a segment"
       growth)
    true
    (growth > 0. && growth < fmss /. 2.);
  (* halving is floored at two segments *)
  Reliable.set_cwnd s (2. *. fmss);
  s.Reliable.hook_on_loss s;
  check eps "ssthresh floored at 2 mss" (2. *. fmss) (Reliable.cwnd s);
  (* timeout: back to one segment, then slow start resumes *)
  Reliable.set_cwnd s (20. *. fmss);
  s.Reliable.hook_on_timeout s;
  check eps "timeout resets to 1 mss" fmss (Reliable.cwnd s);
  s.Reliable.hook_on_ack s (ack_info ~newly:mss ());
  check eps "slow start resumes below ssthresh" (2. *. fmss)
    (Reliable.cwnd s)

(* End to end: no ECN, shallow shared buffer, an incast -- TCP must
   lose packets and still complete every flow via retransmission. *)
let test_tcp_loss_recovery_e2e () =
  let qcfg =
    { (Helpers.default_qcfg ~buffer:(Units.kb 30) ()) with
      Ppt_netsim.Prio_queue.mark_thresholds =
        Ppt_netsim.Prio_queue.no_marking }
  in
  let _sim, _topo, ctx = Helpers.star ~qcfg () in
  let tcp = Tcp.make () ctx in
  Helpers.run_flows ctx tcp
    [ (0, 3, 400_000, 0); (1, 3, 400_000, 0); (2, 3, 400_000, 0) ];
  check Alcotest.int "all flows complete" 3 ctx.Context.completed;
  let records = Ppt_stats.Fct.records ctx.Context.fct in
  let retrans =
    List.fold_left (fun a r -> a + r.Ppt_stats.Fct.retrans) 0 records
  in
  check Alcotest.bool "drops repaired by retransmission" true
    (retrans > 0)

(* --- halfback.ml: pace-out + replay --- *)

let test_halfback_replay_small_flow () =
  let _sim, _topo, ctx = Helpers.star () in
  let hb = Halfback.make () ctx in
  (* below the 141KB burst threshold: paced out in one RTT, tail
     proactively replayed on the low-priority loop *)
  Helpers.run_flows ctx hb [ (0, 1, 100_000, 0) ];
  check Alcotest.bool "flow completed" true (Helpers.fct_of ctx 0 <> None);
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "replayed tail rides the low loop" true
    (r.Ppt_stats.Fct.lcp_payload > 0);
  check Alcotest.bool "replay bounded by replay_segs" true
    (r.Ppt_stats.Fct.lcp_payload
     <= Halfback.default_params.Halfback.replay_segs
        * Ppt_netsim.Packet.max_payload)

let test_halfback_large_flow_plain () =
  let _sim, _topo, ctx = Helpers.star () in
  let hb = Halfback.make () ctx in
  Helpers.run_flows ctx hb [ (0, 1, 1_000_000, 0) ];
  check Alcotest.bool "flow completed" true (Helpers.fct_of ctx 0 <> None);
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.int "no replay for large flows" 0
    r.Ppt_stats.Fct.lcp_payload

let suite =
  [ Alcotest.test_case "dctcp: single flow" `Quick
      test_single_flow_completes;
    Alcotest.test_case "dctcp: tiny flow" `Quick test_tiny_flow_completes;
    Alcotest.test_case "dctcp: many flows" `Quick test_many_flows_complete;
    Alcotest.test_case "dctcp: fair sharing" `Quick test_two_flow_sharing;
    Alcotest.test_case "dctcp: loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "dctcp: ecn prevents drops" `Quick
      test_ecn_prevents_drops;
    Alcotest.test_case "dctcp: view state" `Quick test_dctcp_view;
    Alcotest.test_case "dctcp: flow counters" `Quick test_flow_counters;
    Alcotest.test_case "dctcp: determinism" `Quick test_determinism;
    Alcotest.test_case "wire: meta accessors" `Quick test_wire_meta;
    Alcotest.test_case "tcp: slow start and loss recovery" `Quick
      test_tcp_congestion_control;
    Alcotest.test_case "tcp: loss recovery end to end" `Quick
      test_tcp_loss_recovery_e2e;
    Alcotest.test_case "halfback: small-flow replay" `Quick
      test_halfback_replay_small_flow;
    Alcotest.test_case "halfback: large flow stays plain" `Quick
      test_halfback_large_flow_plain ]
