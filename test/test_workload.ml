(* Tests for the workload substrate: CDFs, the paper's distributions
   (Table 2) and trace generation. *)

open Ppt_engine
open Ppt_workload

let check = Alcotest.check

let test_cdf_validation () =
  Alcotest.check_raises "first prob must be 0"
    (Invalid_argument "Cdf: first probability must be 0")
    (fun () -> ignore (Cdf.create [ (0., 0.5); (10., 1.) ]));
  Alcotest.check_raises "last prob must be 1"
    (Invalid_argument "Cdf: last probability must be 1")
    (fun () -> ignore (Cdf.create [ (0., 0.); (10., 0.9) ]));
  Alcotest.check_raises "must increase"
    (Invalid_argument "Cdf: points must increase")
    (fun () -> ignore (Cdf.create [ (0., 0.); (10., 0.5); (5., 1.) ]))

let test_cdf_mean_uniform () =
  (* uniform on [0, 100]: mean 50 *)
  let c = Cdf.create [ (0., 0.); (100., 1.) ] in
  check (Alcotest.float 1e-9) "uniform mean" 50. (Cdf.mean c)

let test_cdf_fraction_below () =
  let c = Cdf.create [ (0., 0.); (100., 0.5); (200., 1.) ] in
  check (Alcotest.float 1e-9) "below 100" 0.5 (Cdf.fraction_below c 100);
  check (Alcotest.float 1e-9) "below 150" 0.75 (Cdf.fraction_below c 150);
  check (Alcotest.float 1e-9) "below 0" 0. (Cdf.fraction_below c 0);
  check (Alcotest.float 1e-9) "below max" 1. (Cdf.fraction_below c 500)

let prop_samples_in_support =
  QCheck.Test.make ~name:"cdf samples stay in the support" ~count:100
    QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let c = Dists.web_search in
       let ok = ref true in
       for _ = 1 to 100 do
         let x = Cdf.sample c rng in
         if x < 1 || x > Cdf.max_size c then ok := false
       done;
       !ok)

let sample_stats cdf n =
  let rng = Rng.create 99 in
  let small = ref 0 and sum = ref 0. in
  for _ = 1 to n do
    let x = Cdf.sample cdf rng in
    if x <= Dists.small_flow_cutoff then incr small;
    sum := !sum +. float_of_int x
  done;
  (float_of_int !small /. float_of_int n, !sum /. float_of_int n)

(* Table 2 of the paper: the computed statistics of our distributions
   must match the published ones. *)
let test_web_search_table2 () =
  let frac_small = Cdf.fraction_below Dists.web_search 100_000 in
  check Alcotest.bool
    (Printf.sprintf "62%% small (got %.1f%%)" (100. *. frac_small))
    true (abs_float (frac_small -. 0.62) < 0.02);
  let mean = Cdf.mean Dists.web_search in
  check Alcotest.bool
    (Printf.sprintf "1.6MB mean (got %.2fMB)" (mean /. 1e6))
    true (abs_float (mean -. 1.6e6) < 0.25e6)

let test_data_mining_table2 () =
  let frac_small = Cdf.fraction_below Dists.data_mining 100_000 in
  check Alcotest.bool
    (Printf.sprintf "83%% small (got %.1f%%)" (100. *. frac_small))
    true (abs_float (frac_small -. 0.83) < 0.02);
  let mean = Cdf.mean Dists.data_mining in
  check Alcotest.bool
    (Printf.sprintf "7.41MB mean (got %.2fMB)" (mean /. 1e6))
    true (abs_float (mean -. 7.41e6) < 1.2e6)

let test_memcached_shape () =
  (* >70% of flows below 1000B; everything at most 100KB *)
  let below_1k = Cdf.fraction_below Dists.memcached 1_000 in
  check Alcotest.bool
    (Printf.sprintf ">70%% under 1KB (got %.1f%%)" (100. *. below_1k))
    true (below_1k > 0.70);
  check Alcotest.int "max 100KB" 100_000 (Cdf.max_size Dists.memcached)

let test_sampling_matches_analytics () =
  let frac, mean = sample_stats Dists.web_search 100_000 in
  check Alcotest.bool
    (Printf.sprintf "sampled small frac %.3f ~ analytic" frac)
    true (abs_float (frac -. Cdf.fraction_below Dists.web_search 100_000)
          < 0.01);
  check Alcotest.bool
    (Printf.sprintf "sampled mean %.0f ~ analytic" mean)
    true
    (abs_float (mean -. Cdf.mean Dists.web_search)
     < 0.05 *. Cdf.mean Dists.web_search)

(* Regression: [sample] rounds the interpolated size to nearest. With
   truncation the uniform-on-[0,10] CDF sampled to a mean of ~4.6
   (floor loses half a byte per draw, and the [max 1] floor turns the
   whole bottom decile into 1s); rounded sampling centres on ~5.05. *)
let test_cdf_sample_rounds () =
  let c = Cdf.create [ (0., 0.); (10., 1.) ] in
  let rng = Rng.create 7 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do sum := !sum + Cdf.sample c rng done;
  let mean = float_of_int !sum /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "rounded mean %.3f ~ 5.0" mean)
    true
    (abs_float (mean -. 5.0) < 0.2)

(* Every built-in workload's empirical mean converges on the analytic
   [Cdf.mean], whatever the seed. The data-mining tail is heavy (its
   std-of-mean is ~3.5%% at 50k draws), hence the 15%% tolerance. *)
let prop_sample_mean_converges =
  QCheck.Test.make ~name:"cdf empirical mean matches Cdf.mean" ~count:5
    QCheck.small_int
    (fun seed ->
       List.for_all
         (fun { Dists.cdf; _ } ->
            let rng = Rng.create (seed + 1) in
            let n = 50_000 in
            let sum = ref 0. in
            for _ = 1 to n do
              sum := !sum +. float_of_int (Cdf.sample cdf rng)
            done;
            let mean = !sum /. float_of_int n in
            abs_float (mean -. Cdf.mean cdf) < 0.15 *. Cdf.mean cdf)
         Dists.all)

let test_by_name () =
  check Alcotest.bool "lookup works" true
    (Dists.by_name "web-search" == Dists.web_search);
  Alcotest.check_raises "unknown workload"
    (Invalid_argument "Dists.by_name: unknown workload nope")
    (fun () -> ignore (Dists.by_name "nope"))

(* --- trace generation -------------------------------------------------- *)

let test_trace_poisson_load () =
  (* the generated trace's offered load must approximate the target *)
  let rng = Rng.create 5 in
  let hosts = Array.init 16 Fun.id in
  let edge_rate = Units.gbps 10 in
  let load = 0.5 in
  let specs =
    Trace.generate ~rng ~cdf:Dists.web_search
      ~pattern:(Trace.All_to_all hosts) ~edge_rate ~load ~n_flows:4000 ()
  in
  let bytes = Trace.total_bytes specs in
  let span =
    (List.nth specs (List.length specs - 1)).Trace.start
    - (List.hd specs).Trace.start
  in
  let offered =
    float_of_int (bytes * 8)
    /. (float_of_int span /. 1e9)
    /. float_of_int (16 * edge_rate)
  in
  check Alcotest.bool
    (Printf.sprintf "offered load %.3f ~ 0.5" offered)
    true (abs_float (offered -. load) < 0.1)

let test_trace_sorted_and_valid () =
  let rng = Rng.create 6 in
  let hosts = Array.init 8 Fun.id in
  let specs =
    Trace.generate ~rng ~cdf:Dists.memcached
      ~pattern:(Trace.All_to_all hosts) ~edge_rate:(Units.gbps 10)
      ~load:0.3 ~n_flows:500 ()
  in
  check Alcotest.int "count" 500 (List.length specs);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Trace.start <= b.Trace.start && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted by start" true (sorted specs);
  List.iter
    (fun s ->
       if s.Trace.src = s.Trace.dst then Alcotest.fail "self flow";
       if s.Trace.size < 1 then Alcotest.fail "empty flow")
    specs

let test_trace_incast_pattern () =
  let rng = Rng.create 7 in
  let senders = Array.init 14 (fun i -> i) in
  let specs =
    Trace.generate ~rng ~cdf:Dists.web_search
      ~pattern:(Trace.Incast { senders; receiver = 14 })
      ~edge_rate:(Units.gbps 10) ~load:0.5 ~n_flows:200 ()
  in
  List.iter
    (fun s ->
       check Alcotest.int "receiver fixed" 14 s.Trace.dst;
       check Alcotest.bool "sender in set" true (s.Trace.src < 14))
    specs

let test_trace_csv_roundtrip () =
  let rng = Rng.create 8 in
  let specs =
    Trace.generate ~rng ~cdf:Dists.web_search
      ~pattern:(Trace.All_to_all (Array.init 6 Fun.id))
      ~edge_rate:(Units.gbps 10) ~load:0.5 ~n_flows:200 ()
  in
  let parsed = Trace.of_csv (Trace.to_csv specs) in
  check Alcotest.bool "round trip preserves the trace" true
    (parsed = specs)

let test_trace_csv_validation () =
  let bad body =
    try ignore (Trace.of_csv (Trace.csv_header ^ "\n" ^ body)); false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "missing fields rejected" true (bad "1,2,3");
  check Alcotest.bool "non-numeric rejected" true (bad "a,0,1,10,0");
  check Alcotest.bool "self flow rejected" true (bad "0,3,3,10,0");
  check Alcotest.bool "empty size rejected" true (bad "0,0,1,0,0");
  check Alcotest.bool "valid row accepted" true
    (Trace.of_csv (Trace.csv_header ^ "\n0,0,1,10,5\n")
     = [ { Trace.id = 0; src = 0; dst = 1; size = 10; start = 5 } ])

let test_trace_determinism () =
  let gen seed =
    Trace.generate ~rng:(Rng.create seed) ~cdf:Dists.web_search
      ~pattern:(Trace.All_to_all (Array.init 4 Fun.id))
      ~edge_rate:(Units.gbps 10) ~load:0.5 ~n_flows:100 ()
  in
  check Alcotest.bool "same seed, same trace" true (gen 1 = gen 1);
  check Alcotest.bool "different seed, different trace" true
    (gen 1 <> gen 2)

let suite =
  [ Alcotest.test_case "cdf: validation" `Quick test_cdf_validation;
    Alcotest.test_case "cdf: uniform mean" `Quick test_cdf_mean_uniform;
    Alcotest.test_case "cdf: fraction below" `Quick test_cdf_fraction_below;
    QCheck_alcotest.to_alcotest prop_samples_in_support;
    Alcotest.test_case "dists: web search Table 2" `Quick
      test_web_search_table2;
    Alcotest.test_case "dists: data mining Table 2" `Quick
      test_data_mining_table2;
    Alcotest.test_case "dists: memcached shape" `Quick test_memcached_shape;
    Alcotest.test_case "dists: sampling matches analytics" `Quick
      test_sampling_matches_analytics;
    Alcotest.test_case "cdf: sample rounds to nearest" `Quick
      test_cdf_sample_rounds;
    QCheck_alcotest.to_alcotest prop_sample_mean_converges;
    Alcotest.test_case "dists: lookup by name" `Quick test_by_name;
    Alcotest.test_case "trace: poisson load" `Quick test_trace_poisson_load;
    Alcotest.test_case "trace: sorted and valid" `Quick
      test_trace_sorted_and_valid;
    Alcotest.test_case "trace: incast pattern" `Quick
      test_trace_incast_pattern;
    Alcotest.test_case "trace: csv round trip" `Quick
      test_trace_csv_roundtrip;
    Alcotest.test_case "trace: csv validation" `Quick
      test_trace_csv_validation;
    Alcotest.test_case "trace: determinism" `Quick test_trace_determinism ]
