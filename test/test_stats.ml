(* Tests for the statistics library. *)

open Ppt_stats

let check = Alcotest.check

let rc ?(flow = 0) ?(size = 1_000) ?(start = 0) ~finish () =
  { Fct.flow; size; start; finish; retrans = 0; hcp_payload = size;
    lcp_payload = 0; hcp_delivered = size; lcp_delivered = 0 }

let test_avg () =
  let t = Fct.create () in
  Fct.add t (rc ~finish:1_000_000 ());          (* 1 ms *)
  Fct.add t (rc ~finish:3_000_000 ());          (* 3 ms *)
  check (Alcotest.float 1e-9) "avg" 2.0 (Fct.avg t)

let test_size_bins () =
  let t = Fct.create () in
  Fct.add t (rc ~size:50_000 ~finish:1_000_000 ());
  Fct.add t (rc ~size:500_000 ~finish:9_000_000 ());
  let s = Fct.summarize t in
  check (Alcotest.float 1e-9) "small avg" 1.0 s.Fct.small_avg;
  check (Alcotest.float 1e-9) "large avg" 9.0 s.Fct.large_avg;
  check (Alcotest.float 1e-9) "overall avg" 5.0 s.Fct.overall_avg

let test_boundary_is_inclusive () =
  (* exactly 100KB counts as small: the paper's (0, 100KB] bin *)
  let t = Fct.create () in
  Fct.add t (rc ~size:100_000 ~finish:2_000_000 ());
  let s = Fct.summarize t in
  check (Alcotest.float 1e-9) "100KB is small" 2.0 s.Fct.small_avg;
  check Alcotest.bool "no large flows" true (Float.is_nan s.Fct.large_avg)

let test_percentile () =
  let t = Fct.create () in
  for i = 1 to 100 do
    Fct.add t (rc ~flow:i ~finish:(i * 1_000_000) ())
  done;
  let p99 = Fct.percentile t 99. in
  check Alcotest.bool (Printf.sprintf "p99=%.2f" p99) true
    (p99 > 98.9 && p99 <= 100.);
  let p50 = Fct.percentile t 50. in
  check Alcotest.bool (Printf.sprintf "p50=%.2f" p50) true
    (p50 > 49. && p50 < 52.)

let test_empty_is_nan () =
  let t = Fct.create () in
  check Alcotest.bool "avg of empty" true (Float.is_nan (Fct.avg t));
  check Alcotest.bool "pct of empty" true
    (Float.is_nan (Fct.percentile t 99.))

let test_invalid_record_rejected () =
  let t = Fct.create () in
  Alcotest.check_raises "finish before start"
    (Invalid_argument "Fct.add: finish before start")
    (fun () -> Fct.add t (rc ~start:10 ~finish:5 ()))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 50) (int_range 1 1_000_000))
    (fun fcts ->
       let t = Fct.create () in
       List.iteri (fun i f -> Fct.add t (rc ~flow:i ~finish:f ())) fcts;
       let ps = [ 10.; 25.; 50.; 75.; 90.; 99. ] in
       let vals = List.map (Fct.percentile t) ps in
       let rec mono = function
         | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
         | _ -> true
       in
       mono vals)

let prop_avg_between_min_max =
  QCheck.Test.make ~name:"average lies between min and max" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 1_000_000))
    (fun fcts ->
       let t = Fct.create () in
       List.iteri (fun i f -> Fct.add t (rc ~flow:i ~finish:f ())) fcts;
       let ms = List.map (fun f -> float_of_int f /. 1e6) fcts in
       let mn = List.fold_left min infinity ms in
       let mx = List.fold_left max neg_infinity ms in
       let avg = Fct.avg t in
       avg >= mn -. 1e-9 && avg <= mx +. 1e-9)

let test_slowdown () =
  (* 1460B at 10G = ~1.2us serialization; base RTT 10us; ideal ~11.2us *)
  let r = rc ~size:1_460 ~finish:22_336 () in
  let s =
    Fct.slowdown ~rate:(Ppt_engine.Units.gbps 10) ~base_rtt:10_000 r
  in
  check (Alcotest.float 1e-6) "slowdown of exactly 2x ideal" 2.0 s

let test_slowdown_stats_filtering () =
  let t = Fct.create () in
  Fct.add t (rc ~flow:0 ~size:1_000 ~finish:100_000 ());
  Fct.add t (rc ~flow:1 ~size:1_000_000 ~finish:100_000_000 ());
  let rate = Ppt_engine.Units.gbps 10 and base_rtt = 10_000 in
  let _, p99_small =
    Fct.slowdown_stats ~hi:100_000 ~rate ~base_rtt t
  in
  let _, p99_all = Fct.slowdown_stats ~rate ~base_rtt t in
  check Alcotest.bool "filtered differs from unfiltered" true
    (p99_small <> p99_all || Float.is_nan p99_small = false)

let test_slowdown_p99_interpolates () =
  let rate = Ppt_engine.Units.gbps 10 and base_rtt = 1_000_000 in
  let ideal = Ppt_engine.Units.tx_time ~rate ~bytes:1 + base_rtt in
  let t = Fct.create () in
  for i = 1 to 100 do
    Fct.add t (rc ~flow:i ~size:1 ~finish:(i * ideal) ())
  done;
  let mean, p99 = Fct.slowdown_stats ~rate ~base_rtt t in
  check (Alcotest.float 1e-6) "mean of 1..100" 50.5 mean;
  (* interpolated rank 0.99*(n-1) between the 99th and 100th order
     statistics; the former index formula 0.99*n degenerated to the
     sample maximum (here 100.0) for every n <= 100 *)
  check (Alcotest.float 1e-6) "interpolated p99" 99.01 p99

let test_percentile_of_values () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-6) "p99 of 1..100" 99.01
    (Fct.percentile_of_values 99. xs);
  check (Alcotest.float 1e-6) "p50 of 1..100" 50.5
    (Fct.percentile_of_values 50. xs);
  check (Alcotest.float 1e-6) "p100 is the max" 100.
    (Fct.percentile_of_values 100. xs);
  check Alcotest.bool "empty is nan" true
    (Float.is_nan (Fct.percentile_of_values 99. []))

let test_jain_fairness () =
  let t = Fct.create () in
  (* equal throughputs: index 1.0 *)
  Fct.add t (rc ~flow:0 ~size:1_000 ~finish:1_000 ());
  Fct.add t (rc ~flow:1 ~size:2_000 ~finish:2_000 ());
  check (Alcotest.float 1e-9) "equal rates fair" 1.0 (Fct.jain_fairness t);
  (* add a starved flow: index drops *)
  Fct.add t (rc ~flow:2 ~size:1_000 ~finish:1_000_000 ());
  check Alcotest.bool "starvation lowers the index" true
    (Fct.jain_fairness t < 0.9)

(* --- time series -------------------------------------------------------- *)

let test_series_sampling () =
  let sim = Ppt_engine.Sim.create () in
  let counter = ref 0 in
  let s =
    Series.sample_every sim ~start:0 ~interval:100 ~until:1_000
      (fun () -> incr counter; float_of_int !counter)
  in
  Ppt_engine.Sim.run sim;
  check Alcotest.int "11 samples (0..1000 inclusive)" 11 (Series.count s);
  check (Alcotest.float 1e-9) "mean of 1..11" 6.0 (Series.mean s)

let test_utilization_probe () =
  let bytes = ref 0 in
  let probe =
    Series.utilization_probe ~rate:(Ppt_engine.Units.gbps 10)
      ~interval:(Ppt_engine.Units.us 100) (fun () -> !bytes)
  in
  ignore (probe ());
  (* 10G for 100us = 125000 bytes; deliver half of it *)
  bytes := 62_500;
  check (Alcotest.float 1e-6) "50% utilization" 0.5 (probe ());
  bytes := 62_500 + 125_000;
  check (Alcotest.float 1e-6) "100% utilization" 1.0 (probe ())

let suite =
  [ Alcotest.test_case "fct: average" `Quick test_avg;
    Alcotest.test_case "fct: size bins" `Quick test_size_bins;
    Alcotest.test_case "fct: 100KB boundary" `Quick
      test_boundary_is_inclusive;
    Alcotest.test_case "fct: percentile" `Quick test_percentile;
    Alcotest.test_case "fct: empty is nan" `Quick test_empty_is_nan;
    Alcotest.test_case "fct: invalid record" `Quick
      test_invalid_record_rejected;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_avg_between_min_max;
    Alcotest.test_case "slowdown: definition" `Quick test_slowdown;
    Alcotest.test_case "slowdown: filtering" `Quick
      test_slowdown_stats_filtering;
    Alcotest.test_case "slowdown: p99 interpolates" `Quick
      test_slowdown_p99_interpolates;
    Alcotest.test_case "percentile: raw values" `Quick
      test_percentile_of_values;
    Alcotest.test_case "fairness: jain index" `Quick test_jain_fairness;
    Alcotest.test_case "series: sampling" `Quick test_series_sampling;
    Alcotest.test_case "series: utilization probe" `Quick
      test_utilization_probe ]
