(* Tests for the fork-based sweep runner (lib/sweep) and its harness
   glue (Parallel): frame codec, shard ordering, crash/timeout retry,
   journal resume, and the serial-vs-parallel byte-equality contract. *)

open Ppt_sweep
open Ppt_harness

let check = Alcotest.check

let tmp_path suffix =
  let p = Filename.temp_file "ppt_sweep_test" suffix in
  Sys.remove p;
  p

let value_of = function
  | Sweep.Done v -> v
  | Sweep.Failed msg -> Alcotest.fail ("unexpected failure: " ^ msg)

(* --- frame codec ------------------------------------------------------- *)

let test_frame_roundtrip () =
  (* several frames fed to the decoder in awkward chunk sizes *)
  let values = [ "alpha"; ""; String.make 100_000 'x'; "omega" ] in
  let bytes =
    String.concat "" (List.map (fun v -> Bytes.to_string (Frame.encode v))
                        values)
  in
  List.iter
    (fun chunk_size ->
       let d = Frame.decoder () in
       let got = ref [] in
       let i = ref 0 in
       let len = String.length bytes in
       while !i < len do
         let n = min chunk_size (len - !i) in
         Frame.feed d (Bytes.of_string (String.sub bytes !i n)) n;
         let rec drain () =
           match Frame.next d with
           | Some (v : string) -> got := v :: !got; drain ()
           | None -> ()
         in
         drain ();
         i := !i + n
       done;
       check Alcotest.bool
         (Printf.sprintf "roundtrip at chunk=%d" chunk_size)
         true
         (List.rev !got = values))
    [ 1; 3; 4096; 1_000_000 ]

(* --- ordering and the serial path -------------------------------------- *)

let specs_of l =
  List.map (fun (k, f) -> { Sweep.key = k; run = f }) l

let test_canonical_order () =
  (* whatever order units finish in, shards come back in input order *)
  let mk jobs =
    let r =
      Sweep.run ~jobs
        (specs_of
           [ ("c", fun () -> Unix.sleepf 0.05; 3);
             ("a", fun () -> 1);
             ("b", fun () -> Unix.sleepf 0.02; 2) ])
    in
    List.map (fun s -> (s.Sweep.s_key, value_of s.Sweep.s_outcome))
      r.Sweep.shards
  in
  let expect = [ ("c", 3); ("a", 1); ("b", 2) ] in
  check Alcotest.bool "serial order" true (mk 1 = expect);
  check Alcotest.bool "parallel order" true (mk 3 = expect)

let test_duplicate_keys_rejected () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Sweep.run: duplicate unit key a")
    (fun () ->
       ignore (Sweep.run (specs_of [ ("a", fun () -> 0);
                                     ("a", fun () -> 1) ])))

(* --- crash isolation and retry ----------------------------------------- *)

let test_retry_after_worker_death () =
  (* first attempt SIGKILLs its own worker; the retry (fresh worker,
     marker file now present) succeeds *)
  let marker = tmp_path ".marker" in
  let unit_run () =
    if Sys.file_exists marker then 42
    else begin
      let oc = open_out marker in
      close_out oc;
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0 (* unreachable *)
    end
  in
  let r =
    Sweep.run ~jobs:2 ~retries:1
      (specs_of [ ("steady", (fun () -> 7)); ("crasher", unit_run) ])
  in
  (try Sys.remove marker with Sys_error _ -> ());
  let shard k =
    List.find (fun s -> s.Sweep.s_key = k) r.Sweep.shards
  in
  check Alcotest.int "steady unit unaffected" 7
    (value_of (shard "steady").Sweep.s_outcome);
  check Alcotest.int "crasher succeeds on retry" 42
    (value_of (shard "crasher").Sweep.s_outcome);
  check Alcotest.int "crasher took two attempts" 2
    (shard "crasher").Sweep.s_attempts

let test_retries_exhausted () =
  (* a unit that dies every time ends Failed, not fatal to the sweep *)
  let r =
    Sweep.run ~jobs:2 ~retries:1
      (specs_of
         [ ("ok", (fun () -> 1));
           ("dead", fun () -> Unix.kill (Unix.getpid ()) Sys.sigkill; 0) ])
  in
  let shard k =
    List.find (fun s -> s.Sweep.s_key = k) r.Sweep.shards
  in
  check Alcotest.int "healthy unit still completes" 1
    (value_of (shard "ok").Sweep.s_outcome);
  (match (shard "dead").Sweep.s_outcome with
   | Sweep.Failed _ -> ()
   | Sweep.Done _ -> Alcotest.fail "dead unit cannot succeed")

let test_timeout_kills_shard () =
  let r =
    Sweep.run ~jobs:2 ~timeout:0.3 ~retries:0
      (specs_of
         [ ("fast", (fun () -> 1));
           ("stuck", fun () -> Unix.sleepf 30.; 2) ])
  in
  let shard k =
    List.find (fun s -> s.Sweep.s_key = k) r.Sweep.shards
  in
  check Alcotest.int "fast unit completes" 1
    (value_of (shard "fast").Sweep.s_outcome);
  (match (shard "stuck").Sweep.s_outcome with
   | Sweep.Failed msg ->
     check Alcotest.bool "reason mentions the timeout" true
       (String.length msg >= 9
        && String.sub msg (String.length msg - 9) 9 = "timed out")
   | Sweep.Done _ -> Alcotest.fail "stuck unit cannot succeed")

let test_exception_is_failed_without_retry () =
  List.iter
    (fun jobs ->
       let r =
         Sweep.run ~jobs ~retries:3
           (specs_of
              [ ("boom", fun () -> if true then failwith "kaput") ])
       in
       let s = List.hd r.Sweep.shards in
       (match s.Sweep.s_outcome with
        | Sweep.Failed msg ->
          check Alcotest.bool
            (Printf.sprintf "jobs=%d: exception text kept" jobs)
            true
            (String.length msg > 0)
        | Sweep.Done () -> Alcotest.fail "exception cannot succeed");
       check Alcotest.int
         (Printf.sprintf "jobs=%d: deterministic failure, one attempt"
            jobs)
         1 s.Sweep.s_attempts)
    [ 1; 2 ]

(* --- journal and resume ------------------------------------------------ *)

let test_resume_skips_completed () =
  let path = tmp_path ".journal" in
  (* first sweep: two units succeed (journaled), one fails (not) *)
  let r1 =
    Sweep.run ~journal:path
      (specs_of
         [ ("a", (fun () -> 1)); ("b", (fun () -> 2));
           ("c", fun () -> failwith "broken") ])
  in
  check Alcotest.int "nothing resumed on a fresh journal" 0
    r1.Sweep.r_resumed;
  (* second sweep, resumed: a and b come from the journal (sentinels
     prove they never re-ran), c runs for real this time *)
  let r2 =
    Sweep.run ~journal:path ~resume:true
      (specs_of
         [ ("a", (fun () -> 99)); ("b", (fun () -> 99));
           ("c", fun () -> 3) ])
  in
  check Alcotest.int "two shards resumed" 2 r2.Sweep.r_resumed;
  let got =
    List.map
      (fun s ->
         (s.Sweep.s_key, value_of s.Sweep.s_outcome, s.Sweep.s_cached))
      r2.Sweep.shards
  in
  check Alcotest.bool "cached values, fresh c" true
    (got = [ ("a", 1, true); ("b", 2, true); ("c", 3, false) ]);
  Sys.remove path

let test_resume_tolerates_corrupt_tail () =
  let path = tmp_path ".journal" in
  let r1 =
    Sweep.run ~journal:path
      (specs_of [ ("a", (fun () -> 1)); ("b", fun () -> 2) ])
  in
  check Alcotest.int "both journaled" 2
    (List.length
       (List.filter
          (fun s -> s.Sweep.s_outcome = Sweep.Done 1
                    || s.Sweep.s_outcome = Sweep.Done 2)
          r1.Sweep.shards));
  (* simulate a sweep killed mid-append: garbage after the last
     complete entry *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x00\x00\x01garbage-tail";
  close_out oc;
  let r2 =
    Sweep.run ~journal:path ~resume:true
      (specs_of [ ("a", (fun () -> 99)); ("b", fun () -> 99) ])
  in
  check Alcotest.int "complete entries recovered" 2 r2.Sweep.r_resumed;
  Sys.remove path

let test_resume_rejects_mismatched_keys () =
  let path = tmp_path ".journal" in
  ignore (Sweep.run ~journal:path (specs_of [ ("a", fun () -> 1) ]));
  (* different unit list: the journal must not be trusted *)
  let r =
    Sweep.run ~journal:path ~resume:true
      (specs_of [ ("a", (fun () -> 5)); ("b", fun () -> 6) ])
  in
  check Alcotest.int "nothing resumed across unit lists" 0
    r.Sweep.r_resumed;
  check Alcotest.bool "units re-ran" true
    (List.map (fun s -> value_of s.Sweep.s_outcome) r.Sweep.shards
     = [ 5; 6 ]);
  Sys.remove path

let test_resume_after_midrun_kill () =
  (* a sweep driver killed mid-run leaves a journal a later --resume
     can pick up. The driver runs in a fork; its third unit SIGKILLs
     the driver from inside a worker once the first unit is safely
     journaled. *)
  let path = tmp_path ".journal" in
  flush stdout; flush stderr;
  (match Unix.fork () with
   | 0 ->
     (* sweep driver: a completes instantly; "slow" keeps one worker
        busy; "killer" shoots the driver *)
     ignore
       (Sweep.run ~jobs:2 ~journal:path
          (specs_of
             [ ("a", (fun () -> 1));
               ("slow", (fun () -> Unix.sleepf 30.; 2));
               ("killer",
                fun () ->
                  Unix.sleepf 0.3;
                  Unix.kill (Unix.getppid ()) Sys.sigkill;
                  Unix.sleepf 30.;
                  3) ]));
     Unix._exit 0
   | pid ->
     let _, status = Unix.waitpid [] pid in
     check Alcotest.bool "driver was killed" true
       (status = Unix.WSIGNALED Sys.sigkill));
  let r =
    Sweep.run ~resume:true ~journal:path
      (specs_of
         [ ("a", (fun () -> 99));
           ("slow", (fun () -> 2));
           ("killer", fun () -> 3) ])
  in
  check Alcotest.int "finished shard survived the kill" 1
    r.Sweep.r_resumed;
  check Alcotest.bool "resumed run completes the rest" true
    (List.map (fun s -> value_of s.Sweep.s_outcome) r.Sweep.shards
     = [ 1; 2; 3 ]);
  Sys.remove path

(* --- harness glue: byte equality --------------------------------------- *)

let test_parallel_byte_equality () =
  (* the tentpole contract: `figure`, `sweep --jobs 1` and
     `sweep --jobs 4` emit byte-identical output *)
  let opts = { Figures.default_opts with Figures.flows_scale = 0.1 } in
  let serial = Parallel.sweep ~jobs:1 ~ids:[ "fig10" ] opts in
  let par = Parallel.sweep ~jobs:4 ~ids:[ "fig10" ] opts in
  check Alcotest.string "serial = parallel, byte for byte"
    serial.Parallel.output par.Parallel.output;
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  (match Figures.find "fig10" with
   | Some e -> Figures.render e opts ppf
   | None -> Alcotest.fail "fig10 missing");
  Format.pp_print_flush ppf ();
  check Alcotest.string "figure render = sweep output"
    (Buffer.contents buf) serial.Parallel.output;
  check Alcotest.bool "events counted across processes" true
    (par.Parallel.events > 0
     && par.Parallel.events = serial.Parallel.events)

let test_parallel_unknown_id () =
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Parallel.sweep: unknown experiment fig99")
    (fun () ->
       ignore
         (Parallel.sweep ~ids:[ "fig99" ] Figures.default_opts))

let suite =
  [ Alcotest.test_case "frame: roundtrip in chunks" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "sweep: canonical shard order" `Quick
      test_canonical_order;
    Alcotest.test_case "sweep: duplicate keys rejected" `Quick
      test_duplicate_keys_rejected;
    Alcotest.test_case "sweep: retry after worker death" `Quick
      test_retry_after_worker_death;
    Alcotest.test_case "sweep: retries exhausted" `Quick
      test_retries_exhausted;
    Alcotest.test_case "sweep: timeout kills shard" `Quick
      test_timeout_kills_shard;
    Alcotest.test_case "sweep: exception fails without retry" `Quick
      test_exception_is_failed_without_retry;
    Alcotest.test_case "journal: resume skips completed" `Quick
      test_resume_skips_completed;
    Alcotest.test_case "journal: corrupt tail tolerated" `Quick
      test_resume_tolerates_corrupt_tail;
    Alcotest.test_case "journal: mismatched keys rejected" `Quick
      test_resume_rejects_mismatched_keys;
    Alcotest.test_case "journal: resume after mid-run kill" `Quick
      test_resume_after_midrun_kill;
    Alcotest.test_case "parallel: byte equality" `Slow
      test_parallel_byte_equality;
    Alcotest.test_case "parallel: unknown id" `Quick
      test_parallel_unknown_id ]
