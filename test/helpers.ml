(* Shared fixtures for the test suites: small topologies with known
   parameters, and helpers to run flows to completion. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport

let default_qcfg ?(buffer = Units.kb 200) ?(hp_thresh = Units.kb 60)
    ?(lp_thresh = Units.kb 40) () =
  { (Prio_queue.default_config ~buffer_bytes:buffer) with
    Prio_queue.mark_thresholds =
      Prio_queue.mark_bands ~hp:(Some hp_thresh) ~lp:(Some lp_thresh) }

(* A small star network: [n] hosts at [rate] with per-link [delay]. *)
let star ?(n = 4) ?(rate = Units.gbps 10) ?(delay = Units.us 2) ?qcfg
    ?(collect_int = false) () =
  let sim = Sim.create () in
  let qcfg = match qcfg with Some q -> q | None -> default_qcfg () in
  let topo =
    Topology.star ~collect_int ~sim ~n_hosts:n ~rate ~delay ~qcfg ()
  in
  let rng = Rng.create 42 in
  let ctx = Context.of_topology ~rto_min:(Units.ms 1) ~rng topo in
  (sim, topo, ctx)

(* After a run to quiescence every scheduled event must have fired or
   been cancelled. A non-zero count is a timer leak: some pacer or RTO
   outlived its flow and would keep a longer simulation spinning. *)
let assert_drained sim =
  Alcotest.(check int) "sim drained (pending timers)" 0
    (Sim.pending sim)

(* Launch the given (src, dst, size) flows on a transport and run the
   simulation to quiescence. Returns the context for inspection.
   Every e2e test going through here also gets the drain check. *)
let run_flows ctx (transport : Endpoint.transport) specs =
  let sim = ctx.Context.sim in
  List.iteri
    (fun i (src, dst, size, start) ->
       let flow = Flow.create ~id:i ~src ~dst ~size ~start in
       ignore (Sim.schedule_at sim start (fun () ->
           transport.Endpoint.t_start flow)))
    specs;
  Sim.run ~until:(Units.sec 30) sim;
  assert_drained sim

let fct_of ctx id =
  let recs = Ppt_stats.Fct.records ctx.Context.fct in
  match List.find_opt (fun r -> r.Ppt_stats.Fct.flow = id) recs with
  | Some r -> Some (r.Ppt_stats.Fct.finish - r.Ppt_stats.Fct.start)
  | None -> None
