(* Tests for the baseline transports the paper compares against:
   RC3, PIAS, Swift, HPCC, Homa, Aeolus, NDP and the hypothetical
   fill-to-MW DCTCP. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport

let check = Alcotest.check

let completes ?(n_hosts = 5) ?(flows = 8) ?qcfg ?(collect_int = false)
    factory =
  let _sim, _topo, ctx = Helpers.star ~n:n_hosts ?qcfg ~collect_int () in
  let t = factory ctx in
  let sink = n_hosts - 1 in
  let specs =
    List.init flows (fun i ->
        (i mod (n_hosts - 1), sink, 5_000 + ((i * 37_813) mod 600_000),
         i * 30_000))
  in
  Helpers.run_flows ctx t specs;
  (ctx, t.Endpoint.t_name)

let test_completion name factory () =
  let ctx, _ = completes factory in
  check Alcotest.int (name ^ ": all flows complete") 8
    (Ppt_stats.Fct.count ctx.Context.fct)

(* --- RC3 ------------------------------------------------------------ *)

let test_rc3_low_loop_priorities () =
  let p = Rc3.default_params in
  check Alcotest.int "first tail packet at P4" 4 (Rc3.lp_prio p 0);
  check Alcotest.int "packet 39 still P4" 4 (Rc3.lp_prio p 39);
  check Alcotest.int "packet 40 demotes to P5" 5 (Rc3.lp_prio p 40);
  check Alcotest.int "packet 1639 still P5" 5 (Rc3.lp_prio p 1639);
  check Alcotest.int "packet 1640 at P6" 6 (Rc3.lp_prio p 1640);
  check Alcotest.int "deep tail at P7" 7 (Rc3.lp_prio p 10_000_000)

let test_rc3_sends_low_priority_bytes () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Rc3.make () ctx) [ (0, 1, 400_000, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "rc3 low loop carried bytes" true
    (r.Ppt_stats.Fct.lcp_payload > 0)

(* RC3's defining flaw (§3 Remarks): its low loop keeps pushing without
   protecting the primary loop, so under contention it occupies far
   more low-priority buffer than PPT. *)
let test_rc3_aggressive_vs_ppt () =
  let lp_bytes factory =
    let _sim, topo, ctx = Helpers.star ~n:5 () in
    let t = factory ctx in
    let specs = List.init 4 (fun i -> (i, 4, 2_000_000, 0)) in
    List.iteri
      (fun i (src, dst, size, start) ->
         let flow = Ppt_transport.Flow.create ~id:i ~src ~dst ~size ~start in
         ignore (Sim.schedule_at ctx.Context.sim start (fun () ->
             t.Endpoint.t_start flow)))
      specs;
    (* sample the peak low-priority occupancy of the bottleneck port *)
    let node, pix = topo.Topology.to_host_port 4 in
    let port = Net.port ctx.Context.net node pix in
    let peak = ref 0 in
    let rec sample () =
      peak := max !peak (Prio_queue.lp_bytes port.Net.q);
      if Sim.now ctx.Context.sim < Units.ms 4 then
        ignore (Sim.schedule ctx.Context.sim ~after:(Units.us 10) sample)
    in
    ignore (Sim.schedule_at ctx.Context.sim 0 sample);
    Sim.run ~until:(Units.sec 10) ctx.Context.sim;
    !peak
  in
  let rc3 = lp_bytes (Rc3.make ()) in
  let ppt = lp_bytes (Ppt_core.Ppt.make ()) in
  check Alcotest.bool
    (Printf.sprintf "rc3 low-prio peak %dB > ppt %dB" rc3 ppt)
    true (rc3 > ppt)

(* --- PIAS ------------------------------------------------------------ *)

let test_pias_demotion () =
  let p = Pias.default_params in
  check Alcotest.int "starts at P0" 0 (Pias.prio_of p ~bytes_sent:0);
  check Alcotest.int "demotes" 3 (Pias.prio_of p ~bytes_sent:150_000);
  check Alcotest.int "bottoms out at P7" 7
    (Pias.prio_of p ~bytes_sent:999_999_999)

(* --- Swift ----------------------------------------------------------- *)

let test_swift_keeps_delay_low () =
  (* a single saturating flow: DCTCP queues up to the marking threshold,
     Swift should keep the bottleneck queue near its target instead *)
  let run factory =
    let _sim, topo, ctx = Helpers.star () in
    let t = factory ctx in
    let flow = Flow.create ~id:0 ~src:0 ~dst:1 ~size:4_000_000 ~start:0 in
    ignore (Sim.schedule_at ctx.Context.sim 0 (fun () ->
        t.Endpoint.t_start flow));
    let node, pix = topo.Topology.to_host_port 1 in
    let port = Net.port ctx.Context.net node pix in
    let peak = ref 0 in
    let rec sample () =
      peak := max !peak (Prio_queue.bytes port.Net.q);
      if Sim.now ctx.Context.sim < Units.ms 3 then
        ignore (Sim.schedule ctx.Context.sim ~after:(Units.us 5) sample)
    in
    ignore (Sim.schedule_at ctx.Context.sim 0 sample);
    Sim.run ~until:(Units.sec 10) ctx.Context.sim;
    !peak
  in
  let swift_peak = run (Swift.make ()) in
  check Alcotest.bool
    (Printf.sprintf "swift peak queue %dB bounded" swift_peak)
    true (swift_peak < Units.kb 100)

(* --- HPCC ------------------------------------------------------------ *)

let test_hpcc_needs_int () =
  let ctx, _ = completes ~collect_int:true (Hpcc.make ()) in
  check Alcotest.int "hpcc: all flows complete" 8
    (Ppt_stats.Fct.count ctx.Context.fct)

let test_hpcc_controls_queue () =
  let _sim, topo, ctx = Helpers.star ~collect_int:true () in
  let t = Hpcc.make () ctx in
  List.iter
    (fun (id, src) ->
       let flow = Flow.create ~id ~src ~dst:3 ~size:2_000_000 ~start:0 in
       ignore (Sim.schedule_at ctx.Context.sim 0 (fun () ->
           t.Endpoint.t_start flow)))
    [ (0, 0); (1, 1); (2, 2) ];
  let node, pix = topo.Topology.to_host_port 3 in
  let port = Net.port ctx.Context.net node pix in
  let peak = ref 0 in
  let rec sample () =
    peak := max !peak (Prio_queue.bytes port.Net.q);
    if Sim.now ctx.Context.sim < Units.ms 4 then
      ignore (Sim.schedule ctx.Context.sim ~after:(Units.us 5) sample)
  in
  ignore (Sim.schedule_at ctx.Context.sim 0 sample);
  Sim.run ~until:(Units.sec 10) ctx.Context.sim;
  check Alcotest.int "all complete" 3 (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.bool
    (Printf.sprintf "hpcc peak queue %dB stays under buffer" !peak)
    true (!peak < Units.kb 150)

(* --- Homa / Aeolus ---------------------------------------------------- *)

let test_homa_small_flow_one_rtt () =
  (* a flow within RTTbytes completes in about one RTT: all unscheduled *)
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let t = Homa.make () ctx in
  Helpers.run_flows ctx t [ (0, 1, 20_000, 0) ];
  let fct = Option.get (Helpers.fct_of ctx 0) in
  check Alcotest.bool
    (Printf.sprintf "fct=%dns within ~2 RTT" fct)
    true (fct < 2 * ctx.Context.base_rtt)

let test_homa_grants_large_flows () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  let t = Homa.make () ctx in
  Helpers.run_flows ctx t [ (0, 1, 800_000, 0) ];
  check Alcotest.bool "large flow completes via grants" true
    (Helpers.fct_of ctx 0 <> None)

let test_homa_srpt_preference () =
  (* under contention for one receiver, the short message should finish
     far sooner than the long one (SRPT grants + priorities) *)
  let _sim, _topo, ctx = Helpers.star ~n:5 ~delay:(Units.us 20) () in
  let t = Homa.make () ctx in
  Helpers.run_flows ctx t
    [ (0, 4, 4_000_000, 0); (1, 4, 4_000_000, 0); (2, 4, 60_000, 50_000) ];
  let short = Option.get (Helpers.fct_of ctx 2) in
  let long0 = Option.get (Helpers.fct_of ctx 0) in
  check Alcotest.bool
    (Printf.sprintf "short=%dns much faster than long=%dns" short long0)
    true (short * 5 < long0)

let test_aeolus_unscheduled_dropped_early () =
  (* with a selective-drop threshold, a heavy burst of first-RTT aeolus
     packets dies at the switch instead of filling the buffer *)
  let qcfg =
    { (Helpers.default_qcfg ()) with
      Prio_queue.sel_drop_threshold = Some (Units.kb 30) }
  in
  let _sim, _topo, ctx = Helpers.star ~n:9 ~qcfg () in
  let t = Homa.make_aeolus () ctx in
  let specs = List.init 8 (fun i -> (i, 8, 300_000, 0)) in
  Helpers.run_flows ctx t specs;
  check Alcotest.int "all complete despite selective drops" 8
    (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.bool "selective drops happened" true
    (Net.total_drops ctx.Context.net > 0)

(* --- NDP -------------------------------------------------------------- *)

let ndp_qcfg () = { (Helpers.default_qcfg ~buffer:(Units.kb 40) ()) with
                    Prio_queue.trim = true }

let test_ndp_completes_with_trimming () =
  let _sim, _topo, ctx = Helpers.star ~n:7 ~qcfg:(ndp_qcfg ()) () in
  let t = Ndp.make () ctx in
  let specs = List.init 6 (fun i -> (i, 6, 400_000, 0)) in
  Helpers.run_flows ctx t specs;
  check Alcotest.int "all complete" 6 (Ppt_stats.Fct.count ctx.Context.fct);
  (* trimming must have replaced at least some drops *)
  let trims =
    let node = Net.node ctx.Context.net 7 in
    Array.fold_left
      (fun acc p -> acc + Prio_queue.trims p.Net.q) 0 node.Net.ports
  in
  check Alcotest.bool "payloads were trimmed" true (trims > 0)

let test_ndp_single_flow () =
  let _sim, _topo, ctx = Helpers.star ~qcfg:(ndp_qcfg ()) () in
  Helpers.run_flows ctx (Ndp.make () ctx) [ (0, 1, 250_000, 0) ];
  check Alcotest.bool "flow completes" true (Helpers.fct_of ctx 0 <> None)

(* --- hypothetical DCTCP ----------------------------------------------- *)

let test_hypothetical_two_pass () =
  let specs = [ (0, 1, 500_000, 0); (2, 1, 500_000, 10_000) ] in
  (* pass 1: record MW *)
  let mw_table, rec_factory = Hypothetical.record_pass () in
  let _sim, _topo, ctx1 = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx1 (rec_factory ctx1) specs;
  check Alcotest.int "mw recorded for both flows" 2
    (Hashtbl.length mw_table);
  (* pass 2: fill to MW; must be no slower overall than plain DCTCP *)
  let _sim, _topo, ctx2 = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx2 (Hypothetical.make ~mw_table () ctx2) specs;
  let d = Ppt_stats.Fct.summarize ctx1.Context.fct in
  let h = Ppt_stats.Fct.summarize ctx2.Context.fct in
  check Alcotest.bool
    (Printf.sprintf "hypo=%.3fms <= dctcp=%.3fms x1.05"
       h.Ppt_stats.Fct.overall_avg d.Ppt_stats.Fct.overall_avg)
    true
    (h.Ppt_stats.Fct.overall_avg
     <= 1.05 *. d.Ppt_stats.Fct.overall_avg)

(* --- TCP / TCP-10 / Halfback / ExpressPass ----------------------------- *)

let test_tcp10_faster_startup () =
  (* with no losses, IW10 beats IW3 on a startup-bound flow *)
  let fct factory =
    let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
    Helpers.run_flows ctx (factory ctx) [ (0, 1, 120_000, 0) ];
    Option.get (Helpers.fct_of ctx 0)
  in
  let t3 = fct (Tcp.make ()) and t10 = fct (Tcp.make_tcp10 ()) in
  check Alcotest.bool
    (Printf.sprintf "tcp10=%dns < tcp=%dns" t10 t3) true (t10 < t3)

let test_halfback_small_flow_one_rtt () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Halfback.make () ctx) [ (0, 1, 100_000, 0) ];
  let fct = Option.get (Helpers.fct_of ctx 0) in
  (* 100KB ~ BDP: the pace-out burst completes in about one RTT *)
  check Alcotest.bool
    (Printf.sprintf "fct=%dns within ~2.5 RTT" fct)
    true (fct < 5 * ctx.Context.base_rtt / 2)

let test_halfback_large_flow_falls_back () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Halfback.make () ctx) [ (0, 1, 2_000_000, 0) ];
  check Alcotest.bool "large flow still completes" true
    (Helpers.fct_of ctx 0 <> None)

let test_expresspass_first_rtt_idle () =
  (* credit-gated: even a tiny flow needs a request round trip, so its
     FCT must exceed one base RTT *)
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Expresspass.make () ctx) [ (0, 1, 3_000, 0) ];
  let fct = Option.get (Helpers.fct_of ctx 0) in
  check Alcotest.bool
    (Printf.sprintf "fct=%dns > 1 base RTT" fct)
    true (fct > ctx.Context.base_rtt)

let test_expresspass_completes_many () =
  let _sim, _topo, ctx = Helpers.star ~n:6 () in
  let specs =
    List.init 20 (fun i -> (i mod 5, 5, 4_000 + (i * 9_001), i * 15_000))
  in
  Helpers.run_flows ctx (Expresspass.make () ctx) specs;
  check Alcotest.int "all complete" 20
    (Ppt_stats.Fct.count ctx.Context.fct)

(* --- PPT over HPCC (appendix B) ----------------------------------------- *)

let test_ppt_hpcc_completes_and_fills () =
  let _sim, _topo, ctx =
    Helpers.star ~delay:(Units.us 20) ~collect_int:true ()
  in
  Helpers.run_flows ctx (Ppt_core.Ppt_hpcc.make () ctx)
    [ (0, 1, 600_000, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "flow completes" true
    (Helpers.fct_of ctx 0 <> None);
  check Alcotest.bool "lcp carried bytes over hpcc" true
    (r.Ppt_stats.Fct.lcp_payload > 0)

(* --- PPT over Swift ---------------------------------------------------- *)

let test_ppt_swift_completes () =
  let ctx, _ = completes (Ppt_core.Ppt_swift.make ()) in
  check Alcotest.int "ppt-swift: all flows complete" 8
    (Ppt_stats.Fct.count ctx.Context.fct)

let test_ppt_swift_uses_lcp () =
  let _sim, _topo, ctx = Helpers.star ~delay:(Units.us 20) () in
  Helpers.run_flows ctx (Ppt_core.Ppt_swift.make () ctx)
    [ (0, 1, 600_000, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "lcp carried bytes over swift" true
    (r.Ppt_stats.Fct.lcp_payload > 0)

let suite =
  [ Alcotest.test_case "rc3: completes" `Quick
      (test_completion "rc3" (Rc3.make ()));
    Alcotest.test_case "rc3: low-loop priorities" `Quick
      test_rc3_low_loop_priorities;
    Alcotest.test_case "rc3: low loop carries bytes" `Quick
      test_rc3_sends_low_priority_bytes;
    Alcotest.test_case "rc3: more aggressive than ppt" `Quick
      test_rc3_aggressive_vs_ppt;
    Alcotest.test_case "pias: completes" `Quick
      (test_completion "pias" (Pias.make ()));
    Alcotest.test_case "pias: demotion ladder" `Quick test_pias_demotion;
    Alcotest.test_case "swift: completes" `Quick
      (test_completion "swift" (Swift.make ()));
    Alcotest.test_case "swift: delay stays low" `Quick
      test_swift_keeps_delay_low;
    Alcotest.test_case "hpcc: completes with INT" `Quick test_hpcc_needs_int;
    Alcotest.test_case "hpcc: queue control" `Quick test_hpcc_controls_queue;
    Alcotest.test_case "homa: completes" `Quick
      (test_completion "homa" (Homa.make ()));
    Alcotest.test_case "homa: small flow in one RTT" `Quick
      test_homa_small_flow_one_rtt;
    Alcotest.test_case "homa: grants large flows" `Quick
      test_homa_grants_large_flows;
    Alcotest.test_case "homa: SRPT preference" `Quick
      test_homa_srpt_preference;
    Alcotest.test_case "aeolus: completes" `Quick
      (test_completion "aeolus" (Homa.make_aeolus ()));
    Alcotest.test_case "aeolus: selective dropping" `Quick
      test_aeolus_unscheduled_dropped_early;
    Alcotest.test_case "ndp: single flow" `Quick test_ndp_single_flow;
    Alcotest.test_case "ndp: completes with trimming" `Quick
      test_ndp_completes_with_trimming;
    Alcotest.test_case "hypothetical: two-pass fill to MW" `Quick
      test_hypothetical_two_pass;
    Alcotest.test_case "tcp: iw10 faster startup" `Quick
      test_tcp10_faster_startup;
    Alcotest.test_case "halfback: small flow in one RTT" `Quick
      test_halfback_small_flow_one_rtt;
    Alcotest.test_case "halfback: large flow fallback" `Quick
      test_halfback_large_flow_falls_back;
    Alcotest.test_case "expresspass: first RTT idle" `Quick
      test_expresspass_first_rtt_idle;
    Alcotest.test_case "expresspass: many flows" `Quick
      test_expresspass_completes_many;
    Alcotest.test_case "ppt-hpcc: completes and fills" `Quick
      test_ppt_hpcc_completes_and_fills;
    Alcotest.test_case "ppt-swift: completes" `Quick test_ppt_swift_completes;
    Alcotest.test_case "ppt-swift: lcp carries bytes" `Quick
      test_ppt_swift_uses_lcp ]
