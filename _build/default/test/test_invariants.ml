(* Property and failure-injection tests on cross-module invariants:
   reliability under random loss, dual-loop bookkeeping, and the EWD
   receiver clocking. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport

let check = Alcotest.check

(* Random flows over a deliberately lossy fabric (tiny buffer, no ECN
   assistance): every byte must still arrive, whatever the transport. *)
let lossy_qcfg () =
  Prio_queue.default_config ~buffer_bytes:(Units.kb 10)

let prop_reliable_under_loss factory_name factory =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "%s: every flow completes despite heavy drop-tail loss"
         factory_name)
    ~count:25
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 8)
                              (int_range 1 300_000)))
    (fun (seed, sizes) ->
       let sim = Sim.create () in
       let topo =
         Topology.star ~sim ~n_hosts:4 ~rate:(Units.gbps 10)
           ~delay:(Units.us 2) ~qcfg:(lossy_qcfg ()) ()
       in
       let ctx =
         Context.of_topology ~rto_min:(Units.ms 1)
           ~rng:(Rng.create seed) topo
       in
       let t = factory ctx in
       List.iteri
         (fun i size ->
            let flow =
              Flow.create ~id:i ~src:(i mod 3) ~dst:3 ~size
                ~start:(i * 1000)
            in
            ignore (Sim.schedule_at sim flow.Flow.start (fun () ->
                t.Endpoint.t_start flow)))
         sizes;
       Sim.run ~until:(Units.sec 30) sim;
       ctx.Context.completed = List.length sizes)

(* The dual-loop scoreboard: after completion, delivered payload per
   flow must equal the flow size exactly (no byte delivered twice into
   the record, none missing). *)
let prop_delivered_equals_size =
  QCheck.Test.make
    ~name:"ppt: delivered payload = flow size under loss" ~count:25
    QCheck.(pair small_int (int_range 1 400_000))
    (fun (seed, size) ->
       let sim = Sim.create () in
       let topo =
         Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 10)
           ~delay:(Units.us 10) ~qcfg:(lossy_qcfg ()) ()
       in
       let ctx =
         Context.of_topology ~rto_min:(Units.ms 1)
           ~rng:(Rng.create seed) topo
       in
       let t = Ppt_core.Ppt.make () ctx in
       let flow = Flow.create ~id:0 ~src:0 ~dst:2 ~size ~start:0 in
       ignore (Sim.schedule_at sim 0 (fun () -> t.Endpoint.t_start flow));
       Sim.run ~until:(Units.sec 30) sim;
       match Ppt_stats.Fct.records ctx.Context.fct with
       | [ r ] ->
         r.Ppt_stats.Fct.hcp_delivered + r.Ppt_stats.Fct.lcp_delivered
         = size
       | _ -> false)

(* EWD receiver clocking: exactly one low-priority ACK per two
   opportunistic data packets (§3.2). *)
let test_ewd_ack_ratio () =
  let sim = Sim.create () in
  let qcfg = Prio_queue.default_config ~buffer_bytes:(Units.mb 1) in
  let topo =
    Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 10)
      ~delay:(Units.us 2) ~qcfg ()
  in
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create 1) topo
  in
  let flow = Flow.create ~id:0 ~src:0 ~dst:2 ~size:150_000 ~start:0 in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  let lcp_acks = ref 0 in
  Net.register ctx.Context.net ~host:0 ~flow:0 (fun p ->
      if p.Packet.kind = Packet.Ack && p.Packet.loop = Packet.L then
        incr lcp_acks);
  Net.register ctx.Context.net ~host:2 ~flow:0 (fun p ->
      Receiver.on_data rcv p);
  (* hand-deliver 10 opportunistic packets *)
  for seq = 0 to 9 do
    let pay = Flow.seg_payload flow seq in
    let pkt =
      Packet.make ~seq ~payload:pay ~prio:4 ~loop:Packet.L
        ~flow:0 ~src:0 ~dst:2 Packet.Data
    in
    Net.send ctx.Context.net pkt
  done;
  Sim.run sim;
  check Alcotest.int "10 LCP data -> 5 LCP acks" 5 !lcp_acks

(* The ECE echo: a marked opportunistic packet must surface as an
   ECE-flagged low-priority ACK. *)
let test_lcp_ece_echo () =
  let sim = Sim.create () in
  let qcfg =
    { (Prio_queue.default_config ~buffer_bytes:(Units.mb 1)) with
      Prio_queue.mark_thresholds =
        Prio_queue.mark_bands ~hp:None ~lp:(Some 0) }
  in
  let topo =
    Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 10)
      ~delay:(Units.us 2) ~qcfg ()
  in
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create 1) topo
  in
  let flow = Flow.create ~id:0 ~src:0 ~dst:2 ~size:10_000 ~start:0 in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  let saw_ece = ref false in
  Net.register ctx.Context.net ~host:0 ~flow:0 (fun p ->
      match p.Packet.meta with
      | Wire.Ack_meta { ece; _ } -> if ece then saw_ece := true
      | _ -> ());
  Net.register ctx.Context.net ~host:2 ~flow:0 (fun p ->
      Receiver.on_data rcv p);
  for seq = 0 to 3 do
    let pay = Flow.seg_payload flow seq in
    let pkt =
      Packet.make ~seq ~payload:pay ~prio:4 ~loop:Packet.L
        ~ecn_capable:true ~flow:0 ~src:0 ~dst:2 Packet.Data
    in
    Net.send ctx.Context.net pkt
  done;
  Sim.run sim;
  check Alcotest.bool "marked LCP data echoed as ECE ack" true !saw_ece

(* l_inflight accounting survives arbitrary interleavings of LCP
   sends, HCP takeover and SACK delivery. *)
let prop_l_inflight_never_negative =
  QCheck.Test.make ~name:"reliable: l_inflight counter stays sane"
    ~count:50
    QCheck.(pair small_int (int_range 10_000 500_000))
    (fun (seed, size) ->
       let sim = Sim.create () in
       let topo =
         Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 10)
           ~delay:(Units.us 10) ~qcfg:(lossy_qcfg ()) ()
       in
       let ctx =
         Context.of_topology ~rto_min:(Units.ms 1)
           ~rng:(Rng.create seed) topo
       in
       let t = Ppt_core.Ppt.make () ctx in
       let flow = Flow.create ~id:0 ~src:0 ~dst:2 ~size ~start:0 in
       ignore (Sim.schedule_at sim 0 (fun () -> t.Endpoint.t_start flow));
       Sim.run ~until:(Units.sec 30) sim;
       (* the run terminating cleanly is the observable: the internal
          max 0 clamps would otherwise wedge retransmission logic *)
       ctx.Context.completed = 1)

let suite =
  [ QCheck_alcotest.to_alcotest
      (prop_reliable_under_loss "dctcp" (Dctcp.make ()));
    QCheck_alcotest.to_alcotest
      (prop_reliable_under_loss "ppt" (Ppt_core.Ppt.make ()));
    QCheck_alcotest.to_alcotest
      (prop_reliable_under_loss "tcp" (Tcp.make ()));
    QCheck_alcotest.to_alcotest prop_delivered_equals_size;
    Alcotest.test_case "ewd: 2-to-1 ack clocking" `Quick
      test_ewd_ack_ratio;
    Alcotest.test_case "lcp: ECE echo" `Quick test_lcp_ece_echo;
    QCheck_alcotest.to_alcotest prop_l_inflight_never_negative ]
