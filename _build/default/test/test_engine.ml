(* Unit and property tests for the discrete-event engine. *)

open Ppt_engine

let check = Alcotest.check

let test_heap_order () =
  let h = Heap.create ~dummy:(-1) in
  List.iteri (fun i k -> Heap.push h ~key:k ~tie:i i)
    [ 5; 3; 8; 1; 9; 3; 0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) -> order := k :: !order; drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 3; 3; 5; 8; 9 ]
    (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:(-1) in
  Heap.push h ~key:7 ~tie:0 100;
  Heap.push h ~key:7 ~tie:1 200;
  Heap.push h ~key:7 ~tie:2 300;
  let vals = List.init 3 (fun _ ->
      match Heap.pop h with Some (_, v) -> v | None -> -1)
  in
  check (Alcotest.list Alcotest.int) "fifo" [ 100; 200; 300 ] vals

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order"
    ~count:200
    QCheck.(list small_int)
    (fun keys ->
       let h = Heap.create ~dummy:0 in
       List.iteri (fun i k -> Heap.push h ~key:k ~tie:i k) keys;
       let rec drain acc =
         match Heap.pop h with
         | Some (k, _) -> drain (k :: acc)
         | None -> List.rev acc
       in
       let popped = drain [] in
       popped = List.sort compare keys)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim 30 (fun () -> log := 3 :: !log));
  ignore (Sim.schedule_at sim 10 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule_at sim 20 (fun () -> log := 2 :: !log));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let t = Sim.schedule_at sim 10 (fun () -> fired := true) in
  Sim.cancel t;
  Sim.run sim;
  check Alcotest.bool "cancelled timer must not fire" false !fired

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let rec tick n () =
    incr hits;
    if n > 0 then ignore (Sim.schedule sim ~after:5 (tick (n - 1)))
  in
  ignore (Sim.schedule_at sim 0 (tick 9));
  Sim.run sim;
  check Alcotest.int "chain of events" 10 !hits;
  check Alcotest.int "final time" 45 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim (i * 10) (fun () -> incr fired))
  done;
  Sim.run ~until:50 sim;
  check Alcotest.int "only events before horizon" 5 !fired

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim 10 (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Sim.schedule_at: 5 is in the past (now=10)")
    (fun () -> ignore (Sim.schedule_at sim 5 ignore))

let test_units_tx_time () =
  (* 1500 bytes at 10 Gbps = 1200 ns *)
  check Alcotest.int "mtu at 10G" 1200
    (Units.tx_time ~rate:(Units.gbps 10) ~bytes:1500);
  (* rounding up *)
  check Alcotest.int "1 byte at 10G" 1
    (Units.tx_time ~rate:(Units.gbps 10) ~bytes:1)

let test_units_bdp () =
  (* 40 Gbps * 8 us = 40 KB *)
  check Alcotest.int "bdp 40G x 8us" 40_000
    (Units.bdp ~rate:(Units.gbps 40) ~rtt:(Units.us 8))

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.float a) in
  let ys = List.init 100 (fun _ -> Rng.float b) in
  check Alcotest.bool "same seed, same stream" true (xs = ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let sub = Rng.split a in
  let before = Rng.float a in
  let a2 = Rng.create 7 in
  let _sub2 = Rng.split a2 in
  let before2 = Rng.float a2 in
  ignore (Rng.float sub);
  check (Alcotest.float 0.) "parent unaffected by split usage"
    before before2

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng floats live in [0,1)" ~count:500
    QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 50 do
         let x = Rng.float rng in
         if x < 0. || x >= 1. then ok := false
       done;
       !ok)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng ints live in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 50 do
         let x = Rng.int rng bound in
         if x < 0 || x >= bound then ok := false
       done;
       !ok)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential variates are non-negative"
    ~count:200
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, mean) ->
       let rng = Rng.create seed in
       let ok = ref true in
       for _ = 1 to 20 do
         if Rng.exponential rng ~mean < 0. then ok := false
       done;
       !ok)

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do sum := !sum +. Rng.exponential rng ~mean:100. done;
  let m = !sum /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "sample mean %.2f within 2%% of 100" m)
    true (abs_float (m -. 100.) < 2.)

let suite =
  [ Alcotest.test_case "heap: pop order" `Quick test_heap_order;
    Alcotest.test_case "heap: fifo tie-break" `Quick test_heap_fifo_ties;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "sim: event ordering" `Quick test_sim_ordering;
    Alcotest.test_case "sim: cancel" `Quick test_sim_cancel;
    Alcotest.test_case "sim: nested scheduling" `Quick
      test_sim_nested_schedule;
    Alcotest.test_case "sim: run until horizon" `Quick test_sim_until;
    Alcotest.test_case "sim: past scheduling raises" `Quick
      test_sim_past_raises;
    Alcotest.test_case "units: tx time" `Quick test_units_tx_time;
    Alcotest.test_case "units: bdp" `Quick test_units_bdp;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick
      test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_float_range;
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_exponential_positive;
    Alcotest.test_case "rng: exponential mean" `Quick
      test_exponential_mean ]
