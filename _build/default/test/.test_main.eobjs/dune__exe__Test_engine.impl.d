test/test_engine.ml: Alcotest Heap List Ppt_engine Printf QCheck QCheck_alcotest Rng Sim Units
