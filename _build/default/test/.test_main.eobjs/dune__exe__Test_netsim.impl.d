test/test_netsim.ml: Alcotest Array Fun List Net Packet Ppt_engine Ppt_netsim Prio_queue QCheck QCheck_alcotest Sim Topology Units
