test/test_stats.ml: Alcotest Fct Float Gen List Ppt_engine Ppt_stats Printf QCheck QCheck_alcotest Series
