test/helpers.ml: Context Endpoint Flow List Ppt_engine Ppt_netsim Ppt_stats Ppt_transport Prio_queue Rng Sim Topology Units
