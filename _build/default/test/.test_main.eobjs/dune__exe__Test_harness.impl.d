test/test_harness.ml: Alcotest Buffer Config Figures Format List Ppt_engine Ppt_harness Ppt_stats Printf Runner Schemes String Units
