test/test_transport.ml: Alcotest Context Dctcp Endpoint Helpers List Option Ppt_engine Ppt_netsim Ppt_stats Ppt_transport Printf Receiver Reliable Units
