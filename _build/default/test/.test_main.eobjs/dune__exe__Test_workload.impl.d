test/test_workload.ml: Alcotest Array Cdf Dists Fun List Ppt_engine Ppt_workload Printf QCheck QCheck_alcotest Rng Trace Units
