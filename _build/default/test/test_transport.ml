(* End-to-end tests for the reliable sender core and DCTCP. *)

open Ppt_engine
open Ppt_transport

let check = Alcotest.check

(* One 100KB DCTCP flow on an idle network completes at roughly
   line rate. *)
let test_single_flow_completes () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 100_000, 0) ];
  match Helpers.fct_of ctx 0 with
  | None -> Alcotest.fail "flow did not complete"
  | Some fct ->
    (* 100KB at 10G is 80us of serialization; allow ramp-up slack. *)
    check Alcotest.bool
      (Printf.sprintf "fct=%dns plausible" fct)
      true
      (fct > 80_000 && fct < 2_000_000)

let test_tiny_flow_completes () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 1, 0) ];
  check Alcotest.bool "1-byte flow finishes" true
    (Helpers.fct_of ctx 0 <> None)

let test_many_flows_complete () =
  let _sim, _topo, ctx = Helpers.star ~n:6 () in
  let dctcp = Dctcp.make () ctx in
  let specs =
    List.init 30 (fun i ->
        let src = i mod 5 in
        (src, 5, 10_000 + (i * 997), i * 10_000))
  in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all flows complete" 30
    (Ppt_stats.Fct.count ctx.Context.fct)

(* Two long flows sharing a bottleneck should finish in about twice the
   solo time each: a fairness sanity check. *)
let test_two_flow_sharing () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp
    [ (0, 2, 2_000_000, 0); (1, 2, 2_000_000, 0) ];
  let f0 = Option.get (Helpers.fct_of ctx 0) in
  let f1 = Option.get (Helpers.fct_of ctx 1) in
  (* solo time ~1.6ms; shared both should take ~3.2ms, and neither
     should be starved (>4x the other). *)
  check Alcotest.bool
    (Printf.sprintf "f0=%d f1=%d both near fair share" f0 f1)
    true
    (f0 > 2_400_000 && f1 > 2_400_000
     && f0 < 8_000_000 && f1 < 8_000_000)

(* Losses are repaired: shrink the switch buffer so overflow happens
   and verify all data still arrives. *)
let test_loss_recovery () =
  let qcfg =
    Helpers.default_qcfg ~buffer:(Units.kb 15) ~hp_thresh:(Units.kb 200)
      ~lp_thresh:(Units.kb 200) ()
    (* marking thresholds above the buffer: pure drop-tail, no ECN *)
  in
  let _sim, _topo, ctx = Helpers.star ~n:5 ~qcfg () in
  let dctcp = Dctcp.make () ctx in
  let specs = List.init 4 (fun i -> (i, 4, 500_000, 0)) in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all complete despite drops" 4
    (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.bool "drops actually happened" true
    (Ppt_netsim.Net.total_drops ctx.Context.net > 0)

(* ECN marking keeps the queue short: with DCTCP the bottleneck should
   see zero drops where plain drop-tail would overflow. *)
let test_ecn_prevents_drops () =
  let _sim, _topo, ctx = Helpers.star ~n:5 () in
  let dctcp = Dctcp.make () ctx in
  let specs = List.init 4 (fun i -> (i, 4, 1_000_000, 0)) in
  Helpers.run_flows ctx dctcp specs;
  check Alcotest.int "all complete" 4 (Ppt_stats.Fct.count ctx.Context.fct);
  check Alcotest.int "no drops with ECN" 0
    (Ppt_netsim.Net.total_drops ctx.Context.net);
  check Alcotest.bool "marks happened" true
    (Ppt_netsim.Net.total_marks ctx.Context.net > 0)

(* The DCTCP view exposes alpha decaying towards zero on an
   uncongested path and wmax tracking the top window. *)
let test_dctcp_view () =
  let _sim, _topo, ctx = Helpers.star () in
  let seen_alpha = ref 2.0 in
  let transport =
    { Endpoint.t_name = "dctcp-probe";
      t_start = (fun flow ->
          let params = Reliable.default_params () in
          Endpoint.launch_window_flow ctx ~params
            ~rcv_cfg:Receiver.default_config
            ~setup:(fun snd _rcv ->
                let view = Dctcp.attach snd in
                fun () -> seen_alpha := view.Dctcp.alpha ())
            flow) }
  in
  Helpers.run_flows ctx transport [ (0, 1, 3_000_000, 0) ];
  (* alpha starts at 1.0; a long-running flow must have updated it to a
     genuine congestion estimate strictly inside (0, 1). *)
  check Alcotest.bool
    (Printf.sprintf "alpha=%f updated and bounded" !seen_alpha)
    true (!seen_alpha > 0. && !seen_alpha < 0.9)

let test_flow_counters () =
  let _sim, _topo, ctx = Helpers.star () in
  let dctcp = Dctcp.make () ctx in
  Helpers.run_flows ctx dctcp [ (0, 1, 123_456, 0) ];
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  check Alcotest.bool "hcp payload covers flow" true
    (r.Ppt_stats.Fct.hcp_payload >= 123_456);
  check Alcotest.int "no lcp bytes for plain dctcp" 0
    r.Ppt_stats.Fct.lcp_payload

let test_determinism () =
  let run () =
    let _sim, _topo, ctx = Helpers.star ~n:6 () in
    let dctcp = Dctcp.make () ctx in
    let specs =
      List.init 20 (fun i -> (i mod 5, 5, 40_000 + (i * 321), i * 5_000))
    in
    Helpers.run_flows ctx dctcp specs;
    List.map (fun r -> (r.Ppt_stats.Fct.flow, r.Ppt_stats.Fct.finish))
      (Ppt_stats.Fct.records ctx.Context.fct)
  in
  check Alcotest.bool "identical runs" true (run () = run ())

let suite =
  [ Alcotest.test_case "dctcp: single flow" `Quick
      test_single_flow_completes;
    Alcotest.test_case "dctcp: tiny flow" `Quick test_tiny_flow_completes;
    Alcotest.test_case "dctcp: many flows" `Quick test_many_flows_complete;
    Alcotest.test_case "dctcp: fair sharing" `Quick test_two_flow_sharing;
    Alcotest.test_case "dctcp: loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "dctcp: ecn prevents drops" `Quick
      test_ecn_prevents_drops;
    Alcotest.test_case "dctcp: view state" `Quick test_dctcp_view;
    Alcotest.test_case "dctcp: flow counters" `Quick test_flow_counters;
    Alcotest.test_case "dctcp: determinism" `Quick test_determinism ]
