examples/websearch_datacenter.mli:
