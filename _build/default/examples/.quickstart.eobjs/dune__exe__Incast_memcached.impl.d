examples/incast_memcached.ml: Config Dists Format List Ppt_harness Ppt_stats Ppt_workload Runner Schemes
