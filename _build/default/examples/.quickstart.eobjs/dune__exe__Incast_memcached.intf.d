examples/incast_memcached.mli:
