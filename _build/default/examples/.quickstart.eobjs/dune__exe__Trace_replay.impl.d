examples/trace_replay.ml: Config Fct Format List Ppt_harness Ppt_stats Ppt_workload Runner Schemes String Table Trace
