examples/spare_bandwidth.ml: Context Dctcp Float Flow Format Lcp List Net Packet Ppt_core Ppt_engine Ppt_netsim Ppt_stats Ppt_transport Prio_queue Receiver Reliable Rng Sim Topology Units
