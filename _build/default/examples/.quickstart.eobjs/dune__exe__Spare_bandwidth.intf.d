examples/spare_bandwidth.mli:
