examples/quickstart.mli:
