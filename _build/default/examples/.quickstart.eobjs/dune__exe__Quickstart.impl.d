examples/quickstart.ml: Context Endpoint Flow Format Ppt_core Ppt_engine Ppt_netsim Ppt_stats Ppt_transport Prio_queue Rng Sim Topology Units
