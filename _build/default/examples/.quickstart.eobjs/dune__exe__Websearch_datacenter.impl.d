examples/websearch_datacenter.ml: Config Fct Format List Ppt_harness Ppt_stats Runner Schemes Table
