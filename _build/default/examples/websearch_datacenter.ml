(* A small datacenter running the web-search workload: the paper's
   headline scenario (§6.2) on the oversubscribed leaf-spine fabric.
   Prints the four FCT metrics for PPT and the strongest baselines and
   shows where PPT's gain comes from (LCP bytes + scheduling).

     dune exec examples/websearch_datacenter.exe *)

open Ppt_harness
open Ppt_stats

let () =
  let cfg = Config.oversub ~scale:4 ~n_flows:600 ~load:0.5 () in
  Format.printf
    "web-search, all-to-all on a 32-host 40/100G oversubscribed \
     leaf-spine fabric, load %.1f@.@." cfg.Config.load;
  let ppf = Format.std_formatter in
  Table.header ppf
    [ "overall"; "small-avg"; "small-p99"; "large-avg"; "lcp-MB" ];
  List.iter
    (fun scheme ->
       let r = Runner.run cfg scheme in
       let s = r.Runner.summary in
       Table.row ppf r.Runner.r_scheme
         [ s.Fct.overall_avg; s.Fct.small_avg; s.Fct.small_p99;
           s.Fct.large_avg;
           float_of_int s.Fct.lcp_bytes /. 1e6 ])
    [ Schemes.ppt; Schemes.dctcp; Schemes.homa; Schemes.ndp ];
  Format.printf
    "@.All FCTs in milliseconds. The lcp-MB column counts opportunistic\
     @.payload carried by PPT's low-priority loop: bandwidth DCTCP \
     would@.have left on the table.@."
