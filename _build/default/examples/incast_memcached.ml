(* A Memcached-style incast: 8 clients fan small responses into one
   server — the workload class the paper's Fig. 21 studies. Compares
   PPT against DCTCP and Homa on average and tail latency.

     dune exec examples/incast_memcached.exe *)

open Ppt_workload
open Ppt_harness

let () =
  let cfg =
    { (Config.oversub ~scale:2 ~n_flows:2000 ~load:0.5 ()) with
      Config.pattern = Config.Incast { n_senders = 8 } }
    |> Config.with_workload ~name:"memcached" Dists.memcached
  in
  Format.printf
    "memcached incast: 8 senders -> 1 receiver, %d request flows, \
     load %.1f@.@."
    cfg.Config.n_flows cfg.Config.load;
  let ppf = Format.std_formatter in
  Ppt_stats.Table.header ppf [ "avg-ms"; "p99-ms"; "drops" ];
  List.iter
    (fun scheme ->
       let r = Runner.run cfg scheme in
       let s = r.Runner.summary in
       Ppt_stats.Table.row ppf r.Runner.r_scheme
         [ s.Ppt_stats.Fct.small_avg; s.Ppt_stats.Fct.small_p99;
           float_of_int r.Runner.drops ])
    [ Schemes.ppt; Schemes.dctcp; Schemes.homa ];
  Format.printf
    "@.Under heavy incast there is little spare bandwidth, so PPT \
     cannot@.win — the point (paper §6.3, Fig. 23) is that it degrades \
     gracefully:@.ECN and the switch's dynamic buffer sharing squelch \
     the LCP loop@.before it can do real damage, and PPT lands near \
     DCTCP instead of@.collapsing.@."
