(* Quickstart: build a tiny network, run one PPT flow, read the FCT.

     dune exec examples/quickstart.exe

   This walks through the whole public API surface in ~40 lines:
   simulator, topology, context, transport, flow, statistics. *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport

let () =
  (* 1. A simulator and a 4-host star at 10 Gbps, 20us per link (an
        80us-RTT datacenter path), with DCTCP-style ECN marking (60KB
        for the high-priority band, 40KB for PPT's low-priority band). *)
  let sim = Sim.create () in
  let qcfg =
    { (Prio_queue.default_config ~buffer_bytes:(Units.kb 200)) with
      Prio_queue.mark_thresholds =
        Prio_queue.mark_bands ~hp:(Some (Units.kb 60))
          ~lp:(Some (Units.kb 40)) }
  in
  let topo =
    Topology.star ~sim ~n_hosts:4 ~rate:(Units.gbps 10)
      ~delay:(Units.us 20) ~qcfg ()
  in

  (* 2. A run context: derived path constants + the FCT sink. *)
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create 42) topo
  in
  Format.printf "base RTT %a, BDP %d bytes@."
    Units.pp_time ctx.Context.base_rtt ctx.Context.bdp;

  (* 3. The PPT transport (HCP = DCTCP, LCP = opportunistic low-priority
        loop, buffer-aware scheduling). *)
  let ppt = Ppt_core.Ppt.make () ctx in

  (* 4. One 2MB flow from host 0 to host 1, started at t = 0. *)
  let flow = Flow.create ~id:0 ~src:0 ~dst:1 ~size:2_000_000 ~start:0 in
  ignore (Sim.schedule_at sim 0 (fun () -> ppt.Endpoint.t_start flow));

  (* 5. Run to quiescence and read the statistics. *)
  Sim.run sim;
  match Ppt_stats.Fct.records ctx.Context.fct with
  | [ r ] ->
    Format.printf
      "flow of %d bytes completed in %.3f ms@.\
       primary loop sent %d KB, opportunistic loop sent %d KB@.\
       (the LCP filled the slow-start gap from the tail of the flow)@."
      r.Ppt_stats.Fct.size (Ppt_stats.Fct.fct_ms r)
      (r.Ppt_stats.Fct.hcp_payload / 1000)
      (r.Ppt_stats.Fct.lcp_payload / 1000)
  | _ -> prerr_endline "unexpected: flow did not complete"
