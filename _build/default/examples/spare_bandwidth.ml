(* Watch the dual-loop rate control at work: one 4MB flow on a path
   with a large bandwidth-delay product. The trace shows, RTT by RTT,
   the HCP congestion window, whether an LCP loop is open, and the
   cumulative bytes each loop has sent — the picture of Fig. 5.

     dune exec examples/spare_bandwidth.exe *)

open Ppt_engine
open Ppt_netsim
open Ppt_transport
open Ppt_core

let () =
  let sim = Sim.create () in
  let qcfg =
    { (Prio_queue.default_config ~buffer_bytes:(Units.mb 4)) with
      Prio_queue.mark_thresholds =
        Prio_queue.mark_bands ~hp:(Some (Units.kb 120))
          ~lp:(Some (Units.kb 100)) }
  in
  let topo =
    Topology.star ~sim ~n_hosts:3 ~rate:(Units.gbps 40)
      ~delay:(Units.us 20) ~qcfg ()
  in
  let ctx =
    Context.of_topology ~rto_min:(Units.ms 1) ~rng:(Rng.create 7) topo
  in
  Format.printf "base RTT %a, BDP %dKB — DCTCP needs ~%d RTTs to fill \
                 the pipe from IW10@.@."
    Units.pp_time ctx.Context.base_rtt (ctx.Context.bdp / 1000)
    (int_of_float
       (Float.log2 (float_of_int ctx.Context.bdp /. 14_600.)) + 1);
  let flow = Flow.create ~id:0 ~src:0 ~dst:2 ~size:4_000_000 ~start:0 in
  let params = Reliable.default_params ~ecn_capable:true () in
  let snd = Reliable.create ctx flow params in
  let rcv =
    Receiver.create ctx flow
      { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
  in
  let view = Dctcp.attach snd in
  let lcp = Lcp.create ctx snd view ~identified_large:false () in
  Lcp.start lcp;
  let net = ctx.Context.net in
  Net.register net ~host:0 ~flow:0 (fun p ->
      if p.Packet.kind = Packet.Ack then Reliable.on_ack snd p);
  Net.register net ~host:2 ~flow:0 (fun p ->
      if p.Packet.kind = Packet.Data then Receiver.on_data rcv p);
  rcv.Receiver.on_done <- (fun () -> Lcp.shutdown lcp;
                            Reliable.shutdown snd);
  Format.printf "   t(us)   cwnd(KB)  alpha  lcp   hcp-KB   lcp-KB@.";
  let rec trace () =
    if not (Flow.is_finished flow) then begin
      Format.printf "%8.0f %10.1f %6.3f %5s %8d %8d@."
        (Units.to_us (Sim.now sim))
        (Reliable.cwnd snd /. 1e3)
        (view.Dctcp.alpha ())
        (if Lcp.is_open lcp then "OPEN" else "-")
        (flow.Flow.hcp_payload / 1000)
        (flow.Flow.lcp_payload / 1000);
      ignore (Sim.schedule sim ~after:ctx.Context.base_rtt trace)
    end
  in
  ignore (Sim.schedule_at sim 0 trace);
  ignore (Sim.schedule_at sim 0 (fun () -> Reliable.start snd));
  Sim.run sim;
  let r = List.hd (Ppt_stats.Fct.records ctx.Context.fct) in
  Format.printf
    "@.completed in %.3f ms; %d LCP loops opened; ideal line-rate time \
     would be %.3f ms@."
    (Ppt_stats.Fct.fct_ms r)
    (Lcp.loops_opened lcp)
    (Units.to_ms
       (Units.tx_time ~rate:(Units.gbps 40) ~bytes:4_000_000
        + ctx.Context.base_rtt))
