(* Trace replay and the slowdown view: generate a workload trace,
   export it to CSV, replay the *identical* trace under two transports
   and compare their normalized FCT (slowdown) distributions — the
   apples-to-apples methodology the paper's FCT comparisons rely on.

     dune exec examples/trace_replay.exe *)

open Ppt_workload
open Ppt_stats
open Ppt_harness

let () =
  let cfg = Config.oversub ~scale:2 ~n_flows:300 ~load:0.5 () in
  (* one trace, shared by every scheme *)
  let probe = Runner.run cfg Schemes.dctcp in
  let trace = probe.Runner.trace in
  let csv = Trace.to_csv trace in
  Format.printf
    "replaying one %d-flow web-search trace (%d MB total; first rows):@."
    (List.length trace)
    (Trace.total_bytes trace / 1_000_000);
  String.split_on_char '\n' csv
  |> List.filteri (fun i _ -> i < 4)
  |> List.iter (Format.printf "  %s@.");
  (* prove the CSV round-trips before using it *)
  assert (Trace.of_csv csv = trace);
  Format.printf "@.";
  let ppf = Format.std_formatter in
  Table.header ppf [ "mean-slwdn"; "p99-slwdn"; "jain" ];
  List.iter
    (fun scheme ->
       let r = Runner.run ~trace cfg scheme in
       let fct = Fct.create () in
       List.iter (Fct.add fct) r.Runner.records;
       let mean, p99 =
         Fct.slowdown_stats ~rate:r.Runner.edge_rate
           ~base_rtt:r.Runner.base_rtt fct
       in
       Table.row ppf r.Runner.r_scheme
         [ mean; p99; Fct.jain_fairness fct ])
    [ Schemes.ppt; Schemes.dctcp ];
  Format.printf
    "@.A slowdown of 1.0 means the flow moved at line rate; the gap\
     @.between the two rows is what the dual loop + scheduling buy on\
     @.the exact same packet arrivals.@."
