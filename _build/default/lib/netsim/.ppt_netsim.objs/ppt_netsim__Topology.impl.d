lib/netsim/topology.ml: Array Fun Hashtbl Net Packet Ppt_engine Printf Prio_queue Sim Units
