lib/netsim/packet.mli: Format Ppt_engine Units
