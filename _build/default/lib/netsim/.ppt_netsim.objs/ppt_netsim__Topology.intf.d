lib/netsim/topology.mli: Net Ppt_engine Prio_queue Sim Units
