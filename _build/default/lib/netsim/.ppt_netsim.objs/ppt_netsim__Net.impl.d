lib/netsim/net.ml: Array Hashtbl Packet Ppt_engine Prio_queue Sim Units
