lib/netsim/packet.ml: Fmt Ppt_engine Units
