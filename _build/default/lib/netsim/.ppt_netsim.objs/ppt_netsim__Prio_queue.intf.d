lib/netsim/prio_queue.mli: Packet
