lib/netsim/net.mli: Packet Ppt_engine Prio_queue Sim Units
