lib/netsim/prio_queue.ml: Array Packet Queue
