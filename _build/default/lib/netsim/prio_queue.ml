(* Egress queue discipline of a port: 8 FIFO queues dequeued in strict
   priority order, a shared drop-tail buffer, and instantaneous-queue
   ECN marking, as configured on commodity switches (§5 of the paper).

   Optional behaviours used by specific baselines:
   - [trim]: NDP-style payload trimming when the buffer is full —
     the header survives at the highest priority;
   - [sel_drop_threshold]: Aeolus-style selective dropping of packets
     flagged [sel_drop] once occupancy exceeds a small threshold;
   - [lp_buffer_cap]: cap on the bytes the low-priority band (P4-P7)
     may occupy (used for the RC3 limited-buffer variant, Fig. 24). *)

type mark_basis = Port_occupancy | Queue_occupancy

type config = {
  buffer_bytes : int;
  mark_thresholds : int option array;  (* per priority; None = no marking *)
  mark_basis : mark_basis;
  trim : bool;
  sel_drop_threshold : int option;
  lp_buffer_cap : int option;
  dt_alphas : float array option;
  (* Dynamic-threshold buffer sharing (Choudhury-Hahne), as configured
     on commodity switches: queue q admits a packet only while
     qlen(q) <= alpha(q) * (buffer - total occupancy). Lower alphas on
     the low-priority band squeeze opportunistic traffic out first when
     the buffer runs hot. *)
}

let n_prios = 8
let lp_band_start = 4
let trim_wire_bytes = 64

let no_marking = Array.make n_prios None

(* Mark every ECN-capable packet once occupancy exceeds [hp] (applied to
   priorities 0-3) or [lp] (4-7); both thresholds in bytes. *)
let mark_bands ~hp ~lp =
  Array.init n_prios (fun p -> if p < lp_band_start then hp else lp)

let default_config ~buffer_bytes = {
  buffer_bytes;
  mark_thresholds = no_marking;
  mark_basis = Port_occupancy;
  trim = false;
  sel_drop_threshold = None;
  lp_buffer_cap = None;
  dt_alphas = None;
}

(* The usual switch setup: a permissive share for the high-priority
   band and a tight one for the low band. *)
let dt_bands ~hp ~lp =
  Array.init n_prios (fun p -> if p < lp_band_start then hp else lp)

type t = {
  cfg : config;
  queues : Packet.t Queue.t array;
  qbytes : int array;
  mutable bytes : int;
  mutable lp_bytes : int;   (* occupancy of the P4-P7 band *)
  (* counters *)
  mutable enq_pkts : int;
  mutable drop_pkts : int;
  mutable drop_hp_pkts : int;
  mutable drop_lp_pkts : int;
  mutable drop_bytes : int;
  mutable trim_pkts : int;
  mutable mark_pkts : int;
}

type verdict = Enqueued | Dropped | Trimmed

let create cfg =
  assert (Array.length cfg.mark_thresholds = n_prios);
  { cfg;
    queues = Array.init n_prios (fun _ -> Queue.create ());
    qbytes = Array.make n_prios 0;
    bytes = 0; lp_bytes = 0;
    enq_pkts = 0; drop_pkts = 0; drop_hp_pkts = 0; drop_lp_pkts = 0;
    drop_bytes = 0; trim_pkts = 0; mark_pkts = 0 }

let bytes t = t.bytes
let lp_bytes t = t.lp_bytes
let hp_bytes t = t.bytes - t.lp_bytes
let queue_bytes t prio = t.qbytes.(prio)
let is_empty t = t.bytes = 0

let drops t = t.drop_pkts
let drops_hp t = t.drop_hp_pkts
let drops_lp t = t.drop_lp_pkts
let drop_bytes t = t.drop_bytes
let trims t = t.trim_pkts
let marks t = t.mark_pkts
let enqueues t = t.enq_pkts

let occupancy_for_marking t (p : Packet.t) =
  match t.cfg.mark_basis with
  | Port_occupancy -> t.bytes
  | Queue_occupancy -> t.qbytes.(p.prio)

let push t (p : Packet.t) =
  let prio = max 0 (min (n_prios - 1) p.prio) in
  Queue.push p t.queues.(prio);
  t.qbytes.(prio) <- t.qbytes.(prio) + p.wire;
  t.bytes <- t.bytes + p.wire;
  if prio >= lp_band_start then t.lp_bytes <- t.lp_bytes + p.wire;
  t.enq_pkts <- t.enq_pkts + 1;
  (* Instantaneous marking against the occupancy that the packet sees. *)
  if p.ecn_capable then begin
    match t.cfg.mark_thresholds.(prio) with
    | Some k when occupancy_for_marking t p > k ->
      if not p.ecn_ce then t.mark_pkts <- t.mark_pkts + 1;
      p.ecn_ce <- true
    | Some _ | None -> ()
  end

let drop t (p : Packet.t) =
  t.drop_pkts <- t.drop_pkts + 1;
  if p.prio >= lp_band_start then t.drop_lp_pkts <- t.drop_lp_pkts + 1
  else t.drop_hp_pkts <- t.drop_hp_pkts + 1;
  t.drop_bytes <- t.drop_bytes + p.wire

let enqueue t (p : Packet.t) =
  let fits extra = t.bytes + extra <= t.cfg.buffer_bytes in
  let dt_fits (p : Packet.t) =
    match t.cfg.dt_alphas with
    | None -> true
    | Some _ when p.sel_drop ->
      (* selectively-droppable (Aeolus) packets are admitted by their
         own threshold below, not by the dynamic shares *)
      true
    | Some alphas ->
      let prio = max 0 (min (n_prios - 1) p.prio) in
      let free = float_of_int (t.cfg.buffer_bytes - t.bytes) in
      float_of_int (t.qbytes.(prio) + p.wire) <= alphas.(prio) *. free
  in
  let lp_fits extra =
    p.prio < lp_band_start
    || (match t.cfg.lp_buffer_cap with
        | None -> true
        | Some cap -> t.lp_bytes + extra <= cap)
  in
  let sel_dropped =
    p.sel_drop
    && (match t.cfg.sel_drop_threshold with
        | Some k -> t.bytes + p.wire > k
        | None -> false)
  in
  if sel_dropped then begin drop t p; Dropped end
  else if fits p.wire && lp_fits p.wire && dt_fits p then begin
    push t p; Enqueued
  end
  else if t.cfg.trim && p.kind = Data && not p.trimmed then begin
    (* NDP: cut the payload, keep the header, jump to the top queue. *)
    p.trimmed <- true;
    p.wire <- trim_wire_bytes;
    p.prio <- 0;
    if fits p.wire then begin
      t.trim_pkts <- t.trim_pkts + 1;
      push t p;
      Trimmed
    end else begin drop t p; Dropped end
  end
  else begin drop t p; Dropped end

let dequeue t =
  let rec find prio =
    if prio >= n_prios then None
    else if Queue.is_empty t.queues.(prio) then find (prio + 1)
    else begin
      let p = Queue.pop t.queues.(prio) in
      t.qbytes.(prio) <- t.qbytes.(prio) - p.wire;
      t.bytes <- t.bytes - p.wire;
      if prio >= lp_band_start then t.lp_bytes <- t.lp_bytes - p.wire;
      Some p
    end
  in
  find 0
