(** Topology builders: the star (testbed / dumbbell) and two-tier
    leaf-spine fabrics of the paper's evaluation, with ECMP routing. *)

open Ppt_engine

type built = {
  net : Net.t;
  hosts : int array;
  base_rtt : Units.time;
  (** conservative estimate: propagation plus one MTU serialization per
      hop, both ways *)
  edge_rate : Units.rate;
  to_host_port : int -> int * int;
  (** last-hop egress port (node, port index) towards a host — the
      usual bottleneck to sample *)
  name : string;
}

val ecmp_hash : int -> int -> int
(** Deterministic per-flow spine selection: [ecmp_hash flow n]. *)

type routing =
  | Per_flow                          (** classic ECMP (default) *)
  | Per_packet                        (** NDP-style packet spraying *)
  | Flowlet of { gap : Units.time }   (** LetFlow-style re-hashing *)

val star :
  ?collect_int:bool -> sim:Sim.t -> n_hosts:int -> rate:Units.rate ->
  delay:Units.time -> qcfg:Prio_queue.config -> unit -> built

val leaf_spine :
  ?collect_int:bool -> ?routing:routing -> sim:Sim.t ->
  hosts_per_leaf:int -> n_leaf:int -> n_spine:int ->
  edge_rate:Units.rate -> core_rate:Units.rate ->
  edge_delay:Units.time -> core_delay:Units.time ->
  qcfg:Prio_queue.config -> unit -> built
