(** Empirical flow-size distributions as piecewise-linear CDFs. *)

type t

val create : (float * float) list -> t
(** [(size_bytes, cum_prob)] points; probability rises from 0 to 1.
    Raises [Invalid_argument] on malformed input. *)

val mean : t -> float
(** Mean flow size under uniform-within-segment interpolation. *)

val fraction_below : t -> int -> float
(** Probability that a sampled flow is at most the given size. *)

val sample : t -> Ppt_engine.Rng.t -> int
(** Inverse-CDF sample, at least 1 byte. *)

val max_size : t -> int

val pp : Format.formatter -> t -> unit
