(** The paper's three evaluation workloads as empirical CDFs. *)

val small_flow_cutoff : int
(** 100KB: the boundary between "small" and "large" flows (Table 2). *)

val web_search : Cdf.t
(** Web search [34]: heavy-tailed, ~62% small flows, ~1.6MB mean. *)

val data_mining : Cdf.t
(** Data mining (VL2) [13]: polarized, ~83% small flows, ~7.4MB mean. *)

val memcached : Cdf.t
(** Facebook memcached W1 [8]: >70% of flows under 1000B, all <100KB. *)

type named = { dist_name : string; cdf : Cdf.t }

val all : named list
val by_name : string -> Cdf.t
