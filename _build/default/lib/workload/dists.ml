(* The three realistic workloads of the paper's evaluation.

   - Web search: the DCTCP/web-search distribution [34]; Table 2 of the
     paper reports 62% of flows at 0-100KB and a 1.6MB average size.
   - Data mining: VL2 [13]; 83% at 0-100KB, 7.41MB average, with sizes
     polarized between sub-KB flows and ~100MB flows.
   - Memcached: Facebook's W1 workload [8], also used by Homa; >70% of
     flows below 1000B, everything below 100KB.

   Point sets are calibrated so the computed Table 2 statistics match
   the paper's; `bench tab2` prints the computed values. *)

let small_flow_cutoff = 100_000
(** The paper bins flows as small (0-100KB] vs large (>100KB). *)

let web_search =
  Cdf.create
    [ (0., 0.0);
      (1_000., 0.10);
      (5_000., 0.25);
      (10_000., 0.35);
      (30_000., 0.48);
      (60_000., 0.55);
      (100_000., 0.62);
      (300_000., 0.70);
      (1_000_000., 0.79);
      (3_000_000., 0.88);
      (10_000_000., 0.965);
      (30_000_000., 1.0) ]

let data_mining =
  Cdf.create
    [ (0., 0.0);
      (110., 0.12);
      (180., 0.22);
      (260., 0.32);
      (560., 0.42);
      (900., 0.51);
      (1_100., 0.60);
      (5_000., 0.70);
      (35_000., 0.80);
      (100_000., 0.83);
      (500_000., 0.88);
      (3_000_000., 0.92);
      (20_000_000., 0.96);
      (100_000_000., 0.9908);
      (1_000_000_000., 1.0) ]

let memcached =
  Cdf.create
    [ (0., 0.0);
      (64., 0.10);
      (128., 0.30);
      (256., 0.50);
      (512., 0.63);
      (1_000., 0.72);
      (2_000., 0.80);
      (4_000., 0.86);
      (10_000., 0.93);
      (30_000., 0.975);
      (100_000., 1.0) ]

type named = { dist_name : string; cdf : Cdf.t }

let all =
  [ { dist_name = "web-search"; cdf = web_search };
    { dist_name = "data-mining"; cdf = data_mining };
    { dist_name = "memcached"; cdf = memcached } ]

let by_name name =
  match List.find_opt (fun d -> d.dist_name = name) all with
  | Some d -> d.cdf
  | None -> invalid_arg ("Dists.by_name: unknown workload " ^ name)
