(** Flow-trace generation: traffic patterns with Poisson arrivals. *)

open Ppt_engine

type spec = {
  id : int;
  src : int;
  dst : int;
  size : int;
  start : Units.time;
}

type pattern =
  | All_to_all of int array
  | Incast of { senders : int array; receiver : int }
  | Pairs of (int * int) array

val mean_interarrival_ns :
  mean_size:float -> load:float -> agg_rate:int -> float
(** Mean inter-arrival of the global Poisson process for a target load
    on an aggregate capacity. *)

val generate :
  rng:Rng.t -> cdf:Cdf.t -> pattern:pattern -> edge_rate:Units.rate ->
  load:float -> n_flows:int -> unit -> spec list
(** Flows sorted by start time; deterministic in [rng]. *)

val total_bytes : spec list -> int

val csv_header : string

val to_csv : spec list -> string
(** "id,src,dst,size_bytes,start_ns" with a header line. *)

val of_csv : string -> spec list
(** Parse and sort by start time; raises [Invalid_argument] on
    malformed rows, non-positive sizes or self-flows. *)
