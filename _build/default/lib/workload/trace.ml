(* Flow-trace generation: traffic patterns + Poisson arrivals.

   The paper generates flows "by randomly starting flows following the
   Poisson process and controlling the inter-arrival time of flows to
   achieve the desired network load" (§6.1). Load is defined against
   the aggregate edge capacity of the sending hosts, so the mean
   inter-arrival of the global process is

     1/lambda = mean_flow_size * 8 / (load * n_senders * edge_rate).   *)

open Ppt_engine

type spec = {
  id : int;
  src : int;
  dst : int;
  size : int;                (* bytes *)
  start : Units.time;
}

type pattern =
  | All_to_all of int array
  (* every host both sends and receives; src and dst drawn uniformly *)
  | Incast of { senders : int array; receiver : int }
  (* N-to-1: load is defined against the receiver's single edge link *)
  | Pairs of (int * int) array
  (* fixed (src, dst) pairs drawn uniformly; used for permutations *)

let mean_interarrival_ns ~mean_size ~load ~agg_rate =
  if load <= 0. || load > 10. then invalid_arg "Trace: bad load";
  let bits = mean_size *. 8. in
  bits /. (load *. float_of_int agg_rate) *. 1e9

let pick_src_dst rng = function
  | All_to_all hosts ->
    let n = Array.length hosts in
    let s = Rng.int rng n in
    let d =
      let d = Rng.int rng (n - 1) in
      if d >= s then d + 1 else d
    in
    (hosts.(s), hosts.(d))
  | Incast { senders; receiver } ->
    (senders.(Rng.int rng (Array.length senders)), receiver)
  | Pairs pairs ->
    pairs.(Rng.int rng (Array.length pairs))

(* Aggregate sending capacity that the target load refers to. *)
let agg_rate ~edge_rate = function
  | All_to_all hosts -> Array.length hosts * edge_rate
  | Incast _ -> edge_rate       (* the receiver link is the bottleneck *)
  | Pairs pairs -> Array.length pairs * edge_rate

let generate ~rng ~cdf ~pattern ~edge_rate ~load ~n_flows () =
  let arr_rng = Rng.split rng in
  let size_rng = Rng.split rng in
  let pick_rng = Rng.split rng in
  let mean_ia =
    mean_interarrival_ns ~mean_size:(Cdf.mean cdf) ~load
      ~agg_rate:(agg_rate ~edge_rate pattern)
  in
  let now = ref 0. in
  List.init n_flows (fun id ->
      now := !now +. Rng.exponential arr_rng ~mean:mean_ia;
      let src, dst = pick_src_dst pick_rng pattern in
      let size = Cdf.sample cdf size_rng in
      { id; src; dst; size; start = int_of_float !now })

let total_bytes specs =
  List.fold_left (fun acc s -> acc + s.size) 0 specs

(* CSV round-trip so external traces (or recorded ones) can be
   replayed: "id,src,dst,size_bytes,start_ns", one flow per line,
   with a header. *)

let csv_header = "id,src,dst,size_bytes,start_ns"

let to_csv specs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
       Buffer.add_string buf
         (Printf.sprintf "%d,%d,%d,%d,%d\n" s.id s.src s.dst s.size
            s.start))
    specs;
  Buffer.contents buf

let of_csv text =
  let parse_line lineno line =
    match String.split_on_char ',' (String.trim line) with
    | [ id; src; dst; size; start ] ->
      (try
         let spec =
           { id = int_of_string id; src = int_of_string src;
             dst = int_of_string dst; size = int_of_string size;
             start = int_of_string start }
         in
         if spec.size <= 0 || spec.start < 0 || spec.src = spec.dst then
           invalid_arg
             (Printf.sprintf "Trace.of_csv: invalid flow at line %d"
                lineno);
         spec
       with Failure _ ->
         invalid_arg
           (Printf.sprintf "Trace.of_csv: bad number at line %d" lineno))
    | _ ->
      invalid_arg
        (Printf.sprintf "Trace.of_csv: expected 5 fields at line %d"
           lineno)
  in
  let lines = String.split_on_char '\n' text in
  let specs =
    List.filteri (fun i l -> not (i = 0 || String.trim l = "")) lines
    |> List.mapi (fun i l -> parse_line (i + 2) l)
  in
  List.sort (fun a b -> compare a.start b.start) specs
