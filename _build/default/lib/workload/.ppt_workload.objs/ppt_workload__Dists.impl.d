lib/workload/dists.ml: Cdf List
