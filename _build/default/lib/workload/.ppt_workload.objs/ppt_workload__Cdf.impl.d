lib/workload/cdf.ml: Array Fmt Ppt_engine
