lib/workload/trace.mli: Cdf Ppt_engine Rng Units
