lib/workload/dists.mli: Cdf
