lib/workload/trace.ml: Array Buffer Cdf List Ppt_engine Printf Rng String Units
