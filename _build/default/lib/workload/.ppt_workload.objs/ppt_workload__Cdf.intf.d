lib/workload/cdf.mli: Format Ppt_engine
