(* Discrete-event simulation core: a clock plus an event heap.

   Events are plain [unit -> unit] callbacks. Equal-time events fire in
   scheduling order (the heap tie-breaks on an insertion counter), which
   keeps runs deterministic. Timers can be cancelled; a cancelled timer
   stays in the heap but its callback is skipped when popped. *)

type timer = { mutable cancelled : bool; fire : unit -> unit }

type t = {
  mutable now : Units.time;
  heap : timer Heap.t;
  mutable tie : int;
  mutable running : bool;
  mutable processed : int;
}

let dummy_timer = { cancelled = true; fire = ignore }

let create () =
  { now = 0; heap = Heap.create ~dummy:dummy_timer; tie = 0;
    running = false; processed = 0 }

let now t = t.now
let events_processed t = t.processed
let pending t = Heap.length t.heap

let schedule_at t at fire =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %d is in the past (now=%d)" at t.now);
  let timer = { cancelled = false; fire } in
  t.tie <- t.tie + 1;
  Heap.push t.heap ~key:at ~tie:t.tie timer;
  timer

let schedule t ~after fire =
  assert (after >= 0);
  schedule_at t (t.now + after) fire

let cancel timer = timer.cancelled <- true

let stop t = t.running <- false

let run ?until ?(max_events = max_int) t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.running && t.processed < max_events then
      match Heap.pop t.heap with
      | None -> ()
      | Some (at, timer) ->
        if at > horizon then begin
          (* Leave the clock at the horizon; the event is consumed.
             Experiments always run to quiescence or a stop flag, so
             a consumed post-horizon event is never observed. *)
          t.now <- horizon
        end else begin
          t.now <- at;
          if not timer.cancelled then begin
            t.processed <- t.processed + 1;
            timer.fire ()
          end;
          loop ()
        end
  in
  loop ();
  t.running <- false
