(* Deterministic pseudo-random number generator (splitmix64).

   Every simulation run takes an explicit seed so experiments are
   reproducible bit-for-bit; [split] derives independent streams for
   sub-components (arrivals, sizes, ECMP hashing, ...). *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = next_int64 t }

(* Uniform float in [0, 1). Uses the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* Uniform int in [0, bound). Keeping 62 bits guarantees the value
   fits OCaml's native positive int range. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponential variate with the given mean; used for Poisson
   inter-arrival times. *)
let exponential t ~mean =
  assert (mean > 0.);
  let u = float t in
  -. mean *. log (1. -. u)
