(** Deterministic seeded PRNG (splitmix64) with independent substreams. *)

type t

val create : int -> t
val split : t -> t
(** Derive an independent stream; advancing one never perturbs the other. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponential variate with the given positive mean. *)
