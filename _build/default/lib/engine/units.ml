(* Physical units used throughout the simulator.

   Time is measured in integer nanoseconds, rates in bits per second.
   Integer time keeps the event order deterministic across platforms. *)

type time = int
(** Simulated time in nanoseconds. *)

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let pp_time ppf t =
  if t >= 1_000_000_000 then Fmt.pf ppf "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Fmt.pf ppf "%.3fms" (to_ms t)
  else if t >= 1_000 then Fmt.pf ppf "%.3fus" (to_us t)
  else Fmt.pf ppf "%dns" t

type rate = int
(** Link or sending rate in bits per second. *)

let gbps n = n * 1_000_000_000
let mbps n = n * 1_000_000

(* Serialization time of [bytes] at [rate] bits/s, rounded up so that a
   busy link is never released early.  Valid for [bytes] < ~5*10^8,
   far above any packet or burst this simulator transmits at once. *)
let tx_time ~rate ~bytes =
  assert (rate > 0 && bytes >= 0);
  let bits = bytes * 8 in
  (bits * 1_000_000_000 + rate - 1) / rate

(* Bytes that [rate] delivers during [t] nanoseconds (rounded down). *)
let bytes_in ~rate ~time:t =
  assert (rate >= 0 && t >= 0);
  (* rate * t can overflow for long intervals at high rates, so go
     through the per-microsecond rate instead. *)
  let bits_per_us = rate / 1_000_000 in
  bits_per_us * t / 8 / 1_000

(* Bandwidth-delay product in bytes for a base round-trip time. *)
let bdp ~rate ~rtt = bytes_in ~rate ~time:rtt

let kb n = n * 1_000
let mb n = n * 1_000_000
let kib n = n * 1_024
let mib n = n * 1_048_576
