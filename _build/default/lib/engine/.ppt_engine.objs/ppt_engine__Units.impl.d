lib/engine/units.ml: Fmt
