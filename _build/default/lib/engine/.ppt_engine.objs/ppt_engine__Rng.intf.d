lib/engine/rng.mli:
