lib/engine/sim.mli: Units
