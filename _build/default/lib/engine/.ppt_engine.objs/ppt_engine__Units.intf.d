lib/engine/units.mli: Format
