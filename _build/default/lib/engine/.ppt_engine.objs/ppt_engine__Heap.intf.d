lib/engine/heap.mli:
