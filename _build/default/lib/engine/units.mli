(** Physical units: integer-nanosecond time and bits-per-second rates. *)

type time = int
(** Simulated time in nanoseconds. *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val sec : int -> time

val to_us : time -> float
val to_ms : time -> float
val to_sec : time -> float

val pp_time : Format.formatter -> time -> unit

type rate = int
(** Rate in bits per second. *)

val gbps : int -> rate
val mbps : int -> rate

val tx_time : rate:rate -> bytes:int -> time
(** Serialization delay of [bytes] at [rate], rounded up. *)

val bytes_in : rate:rate -> time:time -> int
(** Bytes delivered by [rate] over an interval, rounded down. *)

val bdp : rate:rate -> rtt:time -> int
(** Bandwidth-delay product in bytes. *)

val kb : int -> int
val mb : int -> int
val kib : int -> int
val mib : int -> int
