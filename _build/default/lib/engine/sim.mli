(** Discrete-event simulator: clock, event heap, cancellable timers.

    Determinism: equal-time events fire in the order they were
    scheduled, and all randomness comes from explicitly seeded
    {!Rng} streams, so a run is a pure function of its seed. *)

type t
type timer

val create : unit -> t

val now : t -> Units.time
val events_processed : t -> int
val pending : t -> int

val schedule_at : t -> Units.time -> (unit -> unit) -> timer
(** Raises [Invalid_argument] if the time is in the past. *)

val schedule : t -> after:Units.time -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val stop : t -> unit
(** Stop the run loop after the current event. *)

val run : ?until:Units.time -> ?max_events:int -> t -> unit
(** Process events until the heap empties, [stop] is called, the clock
    would pass [until], or [max_events] have fired. *)
