lib/stats/fct.mli: Format Ppt_engine Units
