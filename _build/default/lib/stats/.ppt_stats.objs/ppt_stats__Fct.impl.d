lib/stats/fct.ml: Array Fmt List Ppt_engine Units
