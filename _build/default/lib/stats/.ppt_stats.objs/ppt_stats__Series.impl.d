lib/stats/series.ml: List Ppt_engine Sim Units
