lib/stats/series.mli: Ppt_engine Sim Units
