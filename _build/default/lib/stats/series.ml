(* Periodic time-series sampling driven by the simulator clock.

   Used for the link-utilization plots (Fig. 1, Fig. 20) and the buffer
   occupancy measurements (Fig. 28): a probe function is evaluated every
   [interval] and its values recorded with their timestamps. *)

open Ppt_engine

type sample = { at : Units.time; value : float }

type t = {
  mutable samples : sample list;    (* newest first *)
  mutable n : int;
}

let create () = { samples = []; n = 0 }

let record t ~at value =
  t.samples <- { at; value } :: t.samples;
  t.n <- t.n + 1

let samples t = List.rev t.samples
let count t = t.n

let values t = List.map (fun s -> s.value) (samples t)

let mean t =
  if t.n = 0 then nan
  else List.fold_left (fun acc s -> acc +. s.value) 0. t.samples
       /. float_of_int t.n

let min_value t =
  List.fold_left (fun acc s -> min acc s.value) infinity t.samples

let max_value t =
  List.fold_left (fun acc s -> max acc s.value) neg_infinity t.samples

(* Install a sampler on the simulator: evaluates [probe] every
   [interval] from [start] until [until], recording into a fresh
   series that is returned immediately. *)
let sample_every sim ~start ~interval ~until probe =
  assert (interval > 0);
  let t = create () in
  let rec tick at () =
    if at <= until then begin
      record t ~at (probe ());
      ignore (Sim.schedule_at sim (at + interval) (tick (at + interval)))
    end
  in
  ignore (Sim.schedule_at sim start (tick start));
  t

(* Utilization probe: converts a cumulative byte counter into per-
   interval utilization of a link of the given rate.  Returns a probe
   function suitable for [sample_every]. *)
let utilization_probe ~rate ~interval read_tx_bytes =
  let last = ref (read_tx_bytes ()) in
  fun () ->
    let now_bytes = read_tx_bytes () in
    let delta = now_bytes - !last in
    last := now_bytes;
    let capacity = Units.bytes_in ~rate ~time:interval in
    if capacity = 0 then 0.
    else float_of_int delta /. float_of_int capacity
