(** Periodic time-series sampling (link utilization, buffer occupancy). *)

open Ppt_engine

type sample = { at : Units.time; value : float }
type t

val create : unit -> t
val record : t -> at:Units.time -> float -> unit
val samples : t -> sample list
val count : t -> int
val values : t -> float list
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val sample_every :
  Sim.t -> start:Units.time -> interval:Units.time -> until:Units.time ->
  (unit -> float) -> t
(** Evaluate a probe every [interval]; samples land in the returned
    series as the simulation runs. *)

val utilization_probe :
  rate:Units.rate -> interval:Units.time -> (unit -> int) -> unit -> float
(** Turn a cumulative tx-bytes counter into per-interval utilization. *)
