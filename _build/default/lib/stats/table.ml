(* Small fixed-width table printer for benchmark output.

   Produces the row/series layout the paper's figures report, e.g.

     scheme        overall  small-avg  small-p99  large-avg
     ppt             0.412      0.051      0.180      1.871   *)

let cell_width = 11

let pp_cell ppf s =
  Format.fprintf ppf "%*s" cell_width s

let fmt_float v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let header ?(label_width = 22) ppf cols =
  Format.fprintf ppf "%-*s" label_width "";
  List.iter (pp_cell ppf) cols;
  Format.fprintf ppf "@\n"

let row ?(label_width = 22) ppf label vals =
  Format.fprintf ppf "%-*s" label_width label;
  List.iter (fun v -> pp_cell ppf (fmt_float v)) vals;
  Format.fprintf ppf "@\n"

let text_row ?(label_width = 22) ppf label cells =
  Format.fprintf ppf "%-*s" label_width label;
  List.iter (pp_cell ppf) cells;
  Format.fprintf ppf "@\n"

let rule ?(label_width = 22) ppf n_cols =
  Format.fprintf ppf "%s@\n"
    (String.make (label_width + (n_cols * cell_width)) '-')
