(** Fixed-width table printing for benchmark output. *)

val header :
  ?label_width:int -> Format.formatter -> string list -> unit

val row :
  ?label_width:int -> Format.formatter -> string -> float list -> unit
(** NaNs print as "-"; precision adapts to magnitude. *)

val text_row :
  ?label_width:int -> Format.formatter -> string -> string list -> unit

val rule : ?label_width:int -> Format.formatter -> int -> unit
