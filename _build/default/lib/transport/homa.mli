(** Homa [32] (receiver-driven grants, SRPT, overcommitment) and its
    Aeolus [17] variant (lowest-priority selectively-dropped
    unscheduled packets with fast recovery). *)

type params = {
  rtt_bytes : int option;  (** None: one BDP *)
  overcommit : int;
  aeolus : bool;
}

val default_params : params

val make : ?params:params -> unit -> Endpoint.factory
val make_aeolus : ?params:params -> unit -> Endpoint.factory
