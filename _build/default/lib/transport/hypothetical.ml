(* The *hypothetical* DCTCP of §2.3 (Figs. 2, 3, 20).

   Built in two passes: a plain DCTCP run records every flow's maximum
   window (MW); a second run over the identical trace sends, each RTT,
   just enough opportunistic tail packets to fill the congestion
   window's gap up to [fill_fraction] x MW. The paper uses it to argue
   that filling to exactly 1.0 x MW is the right amount — less wastes
   capacity, more causes bursts and losses (Fig. 3).

   Opportunistic packets travel in-band (same priority as normal data:
   the hypothetical transport has no scheduling component). *)

open Ppt_engine
open Ppt_netsim

type mw_table = (int, float) Hashtbl.t

let record_pass () : mw_table * (Context.t -> Endpoint.transport) =
  let table : mw_table = Hashtbl.create 1024 in
  let factory =
    Dctcp.make ~on_flow_wmax:(fun id mw -> Hashtbl.replace table id mw) ()
  in
  (table, factory)

let make ?(fill_fraction = 1.0) ~mw_table () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name =
      Printf.sprintf "hypo-dctcp-%.2fxMW" fill_fraction;
    t_start = (fun flow ->
        let rel_params =
          Reliable.default_params ~initial_cwnd:(10 * mss)
            ~ecn_capable:true ~lcp_ecn_capable:false ()
        in
        let mw =
          match Hashtbl.find_opt mw_table flow.Flow.id with
          | Some mw -> mw
          | None -> float_of_int ctx.Context.bdp
        in
        let target = fill_fraction *. mw in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              let view = Dctcp.attach snd in
              let tail_ptr = ref flow.Flow.nseg in
              let epoch = ref 0 in
              let shut = ref false in
              (* the gap is paced out over the round trip ("just enough
                 packets in each RTT"), not blasted as a burst *)
              let rec drip ~my_epoch ~window ~remaining () =
                if (not !shut) && my_epoch = !epoch && remaining >= mss
                then begin
                  match Reliable.lcp_pick_tail snd ~below:!tail_ptr with
                  | None -> ()
                  | Some seq ->
                    tail_ptr := seq;
                    Reliable.send_lcp_segment ~prio:0 snd seq;
                    let pay = Flow.seg_payload flow seq in
                    let interval =
                      float_of_int ctx.Context.base_rtt
                      *. float_of_int pay /. float_of_int window
                    in
                    ignore
                      (Sim.schedule ctx.Context.sim
                         ~after:(max 1 (int_of_float interval))
                         (drip ~my_epoch ~window
                            ~remaining:(remaining - pay)))
                end
              in
              let fill () =
                (* just enough: the window gap, minus opportunistic
                   data still in flight from earlier rounds *)
                let outstanding = Reliable.l_inflight_segs snd * mss in
                let gap =
                  int_of_float (target -. Reliable.cwnd snd)
                  - outstanding
                in
                if gap >= mss then begin
                  incr epoch;
                  drip ~my_epoch:!epoch ~window:gap ~remaining:gap ()
                end
              in
              ignore (Sim.schedule ctx.Context.sim ~after:0 fill);
              view.Dctcp.rtt_hook fill;
              fun () -> shut := true)
          flow) }
