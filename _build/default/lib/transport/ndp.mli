(** NDP [15]: first-window blast, switch payload trimming, NACK-based
    loss notification and receiver pull pacing. Run on a fabric whose
    queue discipline has [trim] enabled. *)

type params = {
  iw_bytes : int option;  (** None: one BDP *)
  data_prio : int;
}

val default_params : params

val make : ?params:params -> unit -> Endpoint.factory
