(** Loss-based TCP (NewReno-style growth/backoff, no ECN), and the
    TCP-10 [12] initial-window-of-10 variant from Table 1. *)

val attach : Reliable.t -> unit
val make : ?iw_segs:int -> ?name:string -> unit -> Endpoint.factory
val make_tcp10 : unit -> Endpoint.factory
