(** Halfback [23]: pace out small flows entirely in the first RTT and
    proactively replay the tail; larger flows fall back to TCP-10. *)

type params = {
  burst_threshold : int;  (** pace-out size limit (141KB) *)
  replay_segs : int;
  iw_segs : int;
}

val default_params : params

val make : ?params:params -> unit -> Endpoint.factory
