(** ExpressPass [11]: credit-scheduled transport — data moves only
    against receiver-paced credits, so the first RTT carries nothing
    but the credit request. *)

val make : unit -> Endpoint.factory
