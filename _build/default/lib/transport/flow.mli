(** A flow: one application message between two hosts, segmented into
    MTU-sized packets, with counters shared by its two endpoints. *)

open Ppt_engine

type t = {
  id : int;
  src : int;
  dst : int;
  size : int;
  nseg : int;
  start : Units.time;
  mutable retrans : int;
  mutable hcp_payload : int;
  mutable lcp_payload : int;
  mutable hcp_delivered : int;
  mutable lcp_delivered : int;
  mutable finished : Units.time option;
}

val create :
  id:int -> src:int -> dst:int -> size:int -> start:Units.time -> t
(** Raises [Invalid_argument] on a non-positive size or [src = dst]. *)

val of_spec : Ppt_workload.Trace.spec -> t
val seg_payload : t -> int -> int
val is_finished : t -> bool
val pp : Format.formatter -> t -> unit
