(** HPCC [25]: high-precision congestion control from inband
    telemetry. Requires the fabric to run with INT collection. *)

type params = {
  iw_segs : int;
  eta : float;          (** target utilization (0.95) *)
  wai_segs : float;     (** additive increase per update *)
  max_stages : int;
}

val default_params : params

val attach : ?params:params -> Context.t -> Reliable.t -> unit
val make : ?params:params -> unit -> Endpoint.factory
