(* Glue between flows and the fabric.

   A [transport] knows how to launch one flow: create sender/receiver
   endpoint state, register packet handlers at both hosts, and tear
   everything down when the receiver has the whole message. Experiment
   runners only ever see this record. *)

open Ppt_netsim

type transport = {
  t_name : string;
  t_start : Flow.t -> unit;   (* invoked at the flow's start time *)
}

type factory = Context.t -> transport

(* Standard wiring for window-based (sender-driven) transports.

   [setup] attaches congestion control (and, for PPT, the LCP loop) to
   the freshly created sender; it returns an extra teardown thunk for
   any timers it created. *)
let launch_window_flow ctx ~params ~rcv_cfg ~setup flow =
  let snd = Reliable.create ctx flow params in
  let rcv = Receiver.create ctx flow rcv_cfg in
  let teardown_extra = setup snd rcv in
  let net = ctx.Context.net in
  Net.register net ~host:flow.Flow.src ~flow:flow.Flow.id (fun p ->
      match p.Packet.kind with
      | Packet.Ack -> Reliable.on_ack snd p
      | Packet.Data | Packet.Grant | Packet.Pull | Packet.Nack
      | Packet.Ctrl -> ());
  Net.register net ~host:flow.Flow.dst ~flow:flow.Flow.id (fun p ->
      match p.Packet.kind with
      | Packet.Data -> Receiver.on_data rcv p
      | Packet.Ack | Packet.Grant | Packet.Pull | Packet.Nack
      | Packet.Ctrl -> ());
  rcv.Receiver.on_done <- (fun () ->
      Reliable.shutdown snd;
      teardown_extra ();
      Net.unregister net ~host:flow.Flow.src ~flow:flow.Flow.id;
      Net.unregister net ~host:flow.Flow.dst ~flow:flow.Flow.id);
  Reliable.start snd
