(* Homa [32], and its Aeolus [17] variant.

   Receiver-driven proactive transport:
   - the sender blindly transmits up to RTTbytes of *unscheduled* data
     the moment a message starts;
   - the receiver grants the remainder in RTTbytes-sized windows,
     running SRPT over its active inbound messages with a configurable
     degree of overcommitment (grants go to the K shortest-remaining
     messages);
   - in-network priorities: unscheduled data uses the top levels (split
     by message size), scheduled data is assigned per-grant by SRPT
     rank; grants and other control packets ride at P0;
   - loss recovery is timeout-based, as in the Aeolus-simulator setup
     the paper uses for Homa (§6.2), plus hole repair driven by
     stagnant grant progress.

   [aeolus = true] switches the first-RTT behaviour to Aeolus': the
   unscheduled packets are flagged for selective dropping and demoted
   to the lowest priority, so they die early under congestion instead
   of queueing in front of scheduled data. *)

open Ppt_engine
open Ppt_netsim

type params = {
  rtt_bytes : int option;   (* None: use the context BDP *)
  overcommit : int;
  aeolus : bool;
}

let default_params = { rtt_bytes = None; overcommit = 2; aeolus = false }

(* ---- sender -------------------------------------------------------- *)

type sender = {
  ctx : Context.t;
  flow : Flow.t;
  unsched_segs : int;
  unsched_prio : int;
  aeolus : bool;
  mutable snd_nxt : int;
  mutable granted : int;          (* segments we may transmit *)
  mutable sched_prio : int;
  mutable cum : int;              (* receiver's in-order progress *)
  mutable last_cum_change : Units.time;
  mutable fast_attempts : int;    (* Aeolus fast-recovery backoff *)
  mutable rto_timer : Sim.timer option;
  mutable shut : bool;
}

let send_data s ~first_rtt seq =
  let pay = Flow.seg_payload s.flow seq in
  let prio = if first_rtt then s.unsched_prio else s.sched_prio in
  let meta =
    Wire.Data_meta { tx = Sim.now s.ctx.Context.sim; first_rtt }
  in
  let pkt =
    Packet.make ~seq ~payload:pay ~prio ~sel_drop:(first_rtt && s.aeolus)
      ~meta ~flow:s.flow.Flow.id ~src:s.flow.Flow.src ~dst:s.flow.Flow.dst
      Packet.Data
  in
  Context.count_op s.ctx s.flow.Flow.src;
  s.flow.Flow.hcp_payload <- s.flow.Flow.hcp_payload + pay;
  Net.send s.ctx.Context.net pkt

let rec arm_sender_rto s =
  if not s.shut then
    s.rto_timer <-
      Some (Sim.schedule s.ctx.Context.sim ~after:s.ctx.Context.rto_min
              (fun () -> sender_rto s))

and sender_rto s =
  s.rto_timer <- None;
  if not s.shut then begin
    (* timeout: everything between the receiver's progress point and
       what we already sent is presumed lost *)
    let upto = min s.snd_nxt s.flow.Flow.nseg in
    if s.cum < upto then begin
      for seq = s.cum to upto - 1 do
        s.flow.Flow.retrans <- s.flow.Flow.retrans + 1;
        send_data s ~first_rtt:false seq
      done
    end;
    arm_sender_rto s
  end

let sender_pump s =
  let limit = min s.granted s.flow.Flow.nseg in
  while s.snd_nxt < limit do
    let first_rtt = s.snd_nxt < s.unsched_segs in
    send_data s ~first_rtt s.snd_nxt;
    s.snd_nxt <- s.snd_nxt + 1
  done

(* Homa's loss recovery is purely timeout-based (the Aeolus-simulator
   setup the paper uses for Homa, §6.2): grants only open the window.
   Aeolus adds fast recovery: its unscheduled packets are dropped
   selectively at the switch, and the sender promptly retransmits the
   hole as scheduled (non-droppable) packets once grant progress shows
   it, instead of waiting a full RTO. *)
let sender_on_grant s (p : Packet.t) =
  match p.meta with
  | Wire.Grant_meta { g_cum; g_upto; g_prio } ->
    Context.count_op s.ctx s.flow.Flow.src;
    let now = Sim.now s.ctx.Context.sim in
    if g_cum > s.cum then begin
      s.cum <- g_cum;
      s.last_cum_change <- now;
      s.fast_attempts <- 0
    end else if s.aeolus && s.cum < s.snd_nxt
             && now - s.last_cum_change
                > s.ctx.Context.base_rtt * (1 lsl min 6 s.fast_attempts)
    then begin
      (* exponential backoff: duplicates of a persistent hole must not
         amplify the congestion that caused it *)
      s.last_cum_change <- now;
      s.fast_attempts <- s.fast_attempts + 1;
      let upto = min s.snd_nxt (s.cum + 8) in
      for seq = s.cum to upto - 1 do
        s.flow.Flow.retrans <- s.flow.Flow.retrans + 1;
        send_data s ~first_rtt:false seq
      done
    end;
    s.granted <- max s.granted g_upto;
    s.sched_prio <- g_prio;
    sender_pump s
  | _ -> ()

let sender_shutdown s =
  s.shut <- true;
  match s.rto_timer with
  | Some tm -> Sim.cancel tm; s.rto_timer <- None
  | None -> ()

(* ---- receiver ------------------------------------------------------ *)

type msg = {
  m_flow : Flow.t;
  bitmap : Bytes.t;
  mutable received : int;
  mutable m_cum : int;
  mutable m_granted : int;
  mutable on_msg_done : unit -> unit;
}

type host_state = {
  hs_ctx : Context.t;
  rtt_segs : int;
  overcommit : int;
  mutable inbound : msg list;
}

let send_grant hs (m : msg) ~rank =
  let prio = min (Prio_queue.n_prios - 1) (2 + rank) in
  let meta =
    Wire.Grant_meta
      { g_cum = m.m_cum; g_upto = m.m_granted; g_prio = prio }
  in
  let pkt =
    Packet.make ~prio:0 ~meta ~flow:m.m_flow.Flow.id
      ~src:m.m_flow.Flow.dst ~dst:m.m_flow.Flow.src Packet.Grant
  in
  Net.send hs.hs_ctx.Context.net pkt

(* SRPT with overcommitment: grant the K messages with the fewest
   remaining segments a ceiling of received + RTTsegs. *)
let reschedule hs =
  let remaining m = m.m_flow.Flow.nseg - m.received in
  let active =
    List.filter (fun m -> remaining m > 0) hs.inbound
    |> List.sort (fun a b -> compare (remaining a) (remaining b))
  in
  List.iteri
    (fun rank m ->
       if rank < hs.overcommit then begin
         let ceiling =
           min m.m_flow.Flow.nseg (m.received + hs.rtt_segs)
         in
         let grew = ceiling > m.m_granted in
         m.m_granted <- max m.m_granted ceiling;
         (* send a grant when the window grows, and refresh it when
            progress is stuck so the sender learns m_cum *)
         if grew || m.m_cum < m.m_granted then send_grant hs m ~rank
       end)
    active

let receiver_on_data hs (m : msg) (p : Packet.t) =
  Context.count_op hs.hs_ctx m.m_flow.Flow.dst;
  if not p.trimmed then begin
    let seq = p.seq in
    if seq >= 0 && seq < m.m_flow.Flow.nseg
    && Bytes.get m.bitmap seq = '\000' then begin
      Bytes.set m.bitmap seq '\001';
      m.received <- m.received + 1;
      while m.m_cum < m.m_flow.Flow.nseg
            && Bytes.get m.bitmap m.m_cum = '\001' do
        m.m_cum <- m.m_cum + 1
      done
    end;
    if m.received = m.m_flow.Flow.nseg then begin
      hs.inbound <- List.filter (fun x -> x != m) hs.inbound;
      Context.flow_finished hs.hs_ctx m.m_flow;
      m.on_msg_done ();
      reschedule hs
    end else
      reschedule hs
  end

(* ---- wiring -------------------------------------------------------- *)

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  let rtt_bytes =
    match params.rtt_bytes with Some b -> b | None -> ctx.Context.bdp
  in
  let rtt_segs = max 1 (rtt_bytes / mss) in
  let hosts : (int, host_state) Hashtbl.t = Hashtbl.create 64 in
  let host_state host =
    match Hashtbl.find_opt hosts host with
    | Some hs -> hs
    | None ->
      let hs =
        { hs_ctx = ctx; rtt_segs; overcommit = params.overcommit;
          inbound = [] }
      in
      Hashtbl.add hosts host hs;
      hs
  in
  let name = if params.aeolus then "aeolus" else "homa" in
  { Endpoint.t_name = name;
    t_start = (fun flow ->
        let size = flow.Flow.size in
        let unsched_segs = min flow.Flow.nseg rtt_segs in
        let unsched_prio =
          if params.aeolus then Prio_queue.n_prios - 1
          else if size <= rtt_bytes then 0
          else 1
        in
        let s =
          { ctx; flow; unsched_segs; unsched_prio;
            aeolus = params.aeolus;
            snd_nxt = 0; granted = unsched_segs; sched_prio = 2;
            cum = 0; last_cum_change = Sim.now ctx.Context.sim;
            fast_attempts = 0; rto_timer = None; shut = false }
        in
        let hs = host_state flow.Flow.dst in
        let m =
          { m_flow = flow; bitmap = Bytes.make flow.Flow.nseg '\000';
            received = 0; m_cum = 0; m_granted = unsched_segs;
            on_msg_done = ignore }
        in
        hs.inbound <- m :: hs.inbound;
        let net = ctx.Context.net in
        m.on_msg_done <- (fun () ->
            sender_shutdown s;
            Net.unregister net ~host:flow.Flow.src ~flow:flow.Flow.id;
            Net.unregister net ~host:flow.Flow.dst ~flow:flow.Flow.id);
        Net.register net ~host:flow.Flow.src ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Grant -> sender_on_grant s p
            | _ -> ());
        Net.register net ~host:flow.Flow.dst ~flow:flow.Flow.id (fun p ->
            match p.Packet.kind with
            | Packet.Data -> receiver_on_data hs m p
            | _ -> ());
        (* blind first-RTT transmission at line rate *)
        sender_pump s;
        arm_sender_rto s) }

let make_aeolus ?(params = { default_params with aeolus = true }) () =
  make ~params:{ params with aeolus = true } ()
