(* PIAS: Information-Agnostic Flow Scheduling [9].

   DCTCP rate control plus multi-level-feedback priority demotion:
   every flow starts at the highest priority and is demoted one level
   each time its bytes-sent crosses a threshold. No low-priority loop,
   no a-priori identification — the baseline PPT's §4 improves on. *)

open Ppt_netsim

type params = {
  iw_segs : int;
  (* ascending bytes-sent boundaries between the 8 priorities *)
  demotion : int array;
}

(* Default thresholds in the spirit of the PIAS paper's web-search
   tuning: geometric steps through the small-flow range. *)
let default_params =
  { iw_segs = 10;
    demotion =
      [| 10_000; 30_000; 100_000; 300_000; 1_000_000; 3_000_000;
         10_000_000 |] }

let prio_of params ~bytes_sent =
  let rec count i =
    if i >= Array.length params.demotion then i
    else if bytes_sent >= params.demotion.(i) then count (i + 1)
    else i
  in
  min (Prio_queue.n_prios - 1) (count 0)

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = "pias";
    t_start = (fun flow ->
        let tagger ~bytes_sent ~loop:_ = prio_of params ~bytes_sent in
        let rel_params =
          Reliable.default_params ~initial_cwnd:(params.iw_segs * mss)
            ~ecn_capable:true ~tagger ()
        in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              ignore (Dctcp.attach snd);
              fun () -> ())
          flow) }
