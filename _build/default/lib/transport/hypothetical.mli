(** The hypothetical fill-to-MW DCTCP of §2.3 (Figs. 2, 3, 20). *)

type mw_table = (int, float) Hashtbl.t

val record_pass : unit -> mw_table * (Context.t -> Endpoint.transport)
(** A plain-DCTCP recording pass: run the returned transport over a
    trace first; the table fills with each flow's maximum window. *)

val make :
  ?fill_fraction:float -> mw_table:mw_table -> unit -> Endpoint.factory
(** DCTCP that, each RTT, sends just enough opportunistic tail packets
    to fill the window gap up to [fill_fraction] x MW (default 1.0). *)
