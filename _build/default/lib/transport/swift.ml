(* Delay-based congestion control, conceptually equivalent to
   Swift [21] (§6.2 "working with delay-based transport").

   The sender measures the fabric RTT from a timestamp echoed in every
   ACK. Below the target delay the window grows additively; above it,
   the window shrinks multiplicatively in proportion to the excess,
   at most once per RTT and bounded by [max_mdf]. As in the paper's
   ns-3 variant, only fabric delay is modelled (no host queues). *)

open Ppt_engine
open Ppt_netsim

type params = {
  iw_segs : int;
  target_factor : float;  (* target delay = factor * base RTT *)
  ai_segs : float;        (* additive increase per RTT, in segments *)
  beta : float;           (* multiplicative decrease gain *)
  max_mdf : float;        (* largest decrease in one RTT *)
}

let default_params =
  { iw_segs = 10; target_factor = 1.5; ai_segs = 1.0; beta = 0.8;
    max_mdf = 0.5 }

(* View exposed to the PPT-over-Swift variant. *)
type view = {
  delay_below_target : unit -> bool;
  target : Units.time;
  rtt_hook : (unit -> unit) -> unit;
}

let attach ?(params = default_params) ctx (s : Reliable.t) =
  let target =
    int_of_float (params.target_factor *. float_of_int
                    ctx.Context.base_rtt)
  in
  let mssf = float_of_int (Reliable.mss s) in
  let last_decrease = ref 0 in
  let last_delay = ref 0 in
  let on_rtt = ref (fun () -> ()) in
  s.Reliable.hook_on_ack <- (fun s ai ->
      if ai.Reliable.ai_newly_acked > 0 && ai.Reliable.ai_data_tx > 0 then begin
        let now = Sim.now ctx.Context.sim in
        let delay = now - ai.Reliable.ai_data_tx in
        last_delay := delay;
        let cwnd = Reliable.cwnd s in
        if delay < target then begin
          (* additive increase, spread over the acks of one window *)
          let newly = float_of_int ai.Reliable.ai_newly_acked in
          Reliable.set_cwnd s
            (cwnd +. (params.ai_segs *. mssf *. newly /. cwnd))
        end else if now - !last_decrease > ctx.Context.base_rtt then begin
          last_decrease := now;
          let excess =
            float_of_int (delay - target) /. float_of_int delay
          in
          let factor =
            Float.max (1. -. (params.beta *. excess))
              (1. -. params.max_mdf)
          in
          Reliable.set_cwnd s (cwnd *. factor)
        end
      end);
  s.Reliable.hook_on_loss <- (fun s ->
      Reliable.set_cwnd s (Reliable.cwnd s /. 2.));
  s.Reliable.hook_on_timeout <- (fun s -> Reliable.set_cwnd s mssf);
  s.Reliable.hook_on_window <- (fun _ ~f:_ -> !on_rtt ());
  { delay_below_target = (fun () -> !last_delay < target);
    target;
    rtt_hook = (fun f -> on_rtt := f) }

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = "swift";
    t_start = (fun flow ->
        let rel_params =
          Reliable.default_params ~initial_cwnd:(params.iw_segs * mss)
            ~ecn_capable:false ()
        in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              ignore (attach ~params ctx snd);
              fun () -> ())
          flow) }
