(* Classic loss-based TCP (NewReno-style), and TCP-10 [12].

   Table 1 of the paper lists TCP-10 — stock TCP with the initial
   window raised to 10 segments — among the reactive baselines that
   try to use spare bandwidth in the startup phase. This module
   provides the loss-based congestion control both build on: slow
   start / congestion avoidance, halving on fast retransmit, and a
   reset to one segment on timeout. No ECN. *)

open Ppt_netsim

let attach (s : Reliable.t) =
  let ssthresh = ref infinity in
  let mssf = float_of_int (Reliable.mss s) in
  s.Reliable.hook_on_ack <- (fun s ai ->
      let newly = float_of_int ai.Reliable.ai_newly_acked in
      if newly > 0. then begin
        let cwnd = Reliable.cwnd s in
        if cwnd < !ssthresh then Reliable.set_cwnd s (cwnd +. newly)
        else Reliable.set_cwnd s (cwnd +. (mssf *. newly /. cwnd))
      end);
  s.Reliable.hook_on_loss <- (fun s ->
      ssthresh := Float.max (2. *. mssf) (Reliable.cwnd s /. 2.);
      Reliable.set_cwnd s !ssthresh);
  s.Reliable.hook_on_timeout <- (fun s ->
      ssthresh := Float.max (2. *. mssf) (Reliable.cwnd s /. 2.);
      Reliable.set_cwnd s mssf)

let make ?(iw_segs = 3) ?(name = "tcp") () ctx =
  let mss = Packet.max_payload in
  let params =
    Reliable.default_params ~initial_cwnd:(iw_segs * mss)
      ~ecn_capable:false ()
  in
  { Endpoint.t_name = name;
    t_start = (fun flow ->
        Endpoint.launch_window_flow ctx ~params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv -> attach snd; fun () -> ())
          flow) }

(* TCP with an initial window of 10 segments [12]. *)
let make_tcp10 () = make ~iw_segs:10 ~name:"tcp-10" ()
