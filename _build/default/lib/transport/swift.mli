(** Delay-based congestion control, conceptually equivalent to
    Swift [21] (fabric delay only, as in the paper's Fig. 14 variant). *)

open Ppt_engine

type params = {
  iw_segs : int;
  target_factor : float;   (** target delay as a multiple of base RTT *)
  ai_segs : float;
  beta : float;
  max_mdf : float;
}

val default_params : params

type view = {
  delay_below_target : unit -> bool;
  target : Units.time;
  rtt_hook : (unit -> unit) -> unit;
}

val attach : ?params:params -> Context.t -> Reliable.t -> view
val make : ?params:params -> unit -> Endpoint.factory
