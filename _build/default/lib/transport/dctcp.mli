(** DCTCP congestion control [5]: alpha-weighted ECN reaction on the
    shared reliable sender. The paper's HCP and primary baseline. *)

type view = {
  alpha : unit -> float;
  (** the running ECN-fraction estimate (Eq. 1) *)
  wmax : unit -> float;
  (** largest congestion-avoidance window seen (W_max of Eq. 2) *)
  in_ca : unit -> bool;
  (** past the startup (slow-start) phase *)
  rtt_hook : (unit -> unit) -> unit;
  (** register a callback fired once per observation window *)
}

val default_g : float
(** The EWMA gain (1/16). *)

val attach : ?g:float -> Reliable.t -> view
(** Install DCTCP on a sender and expose its run-time state — the
    dctcp_get_info analogue PPT's LCP consumes (§5.1). *)

val make :
  ?iw_segs:int -> ?on_flow_wmax:(int -> float -> unit) -> unit ->
  Endpoint.factory
(** Plain DCTCP as a complete transport. [on_flow_wmax] receives each
    flow's W_max at teardown (used by the hypothetical DCTCP). *)
