(** PIAS [9]: DCTCP rate control with multi-level-feedback priority
    demotion by bytes sent (no a-priori size information). *)

type params = {
  iw_segs : int;
  demotion : int array;  (** ascending bytes-sent level boundaries *)
}

val default_params : params

val prio_of : params -> bytes_sent:int -> int

val make : ?params:params -> unit -> Endpoint.factory
