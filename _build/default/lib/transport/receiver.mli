(** Generic receiver endpoint for window-based transports.

    Tracks received segments, acknowledges every primary-loop data
    packet (cumulative + SACK + CE echo + timestamp + telemetry echo),
    batches low-priority-loop ACKs (PPT's 2:1 EWD clocking), and fires
    a completion callback once the whole flow has arrived. *)

open Ppt_netsim

type config = {
  ack_prio : int;
  lcp_batch : int;          (** LCP data packets per low-priority ACK *)
  lcp_ack_prio : [ `Echo | `Fixed of int ];
}

val default_config : config
(** Per-packet acks at P0; per-packet (batch 1) low-priority acks. *)

type t = {
  ctx : Context.t;
  flow : Flow.t;
  cfg : config;
  bitmap : Bytes.t;
  mutable received : int;
  mutable cum : int;
  mutable lcp_pending : int;
  mutable lcp_sacks : int list;
  mutable lcp_ece : bool;
  mutable lcp_last_prio : int;
  mutable done_fired : bool;
  mutable on_done : unit -> unit;
}

val create : Context.t -> Flow.t -> config -> t
val complete : t -> bool
val received : t -> int
val cum : t -> int
val on_data : t -> Packet.t -> unit
