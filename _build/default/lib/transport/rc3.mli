(** RC3 [30]: a DCTCP primary loop plus open-loop low-priority
    transmission of the whole remaining flow from the tail, in
    exponentially growing priority tiers. *)

type params = {
  iw_segs : int;
  sendbuf_bytes : int;       (** the recommended 2GB by default *)
  level_counts : int array;  (** packets per low-priority level *)
}

val default_params : params

val lp_prio : params -> int -> int
(** Priority of the [n]-th low-priority packet counted from the tail. *)

val make : ?params:params -> unit -> Endpoint.factory
