(* Halfback [23]: "running short flows quickly and safely".

   Two mechanisms on top of loss-based TCP:
   - *pacing out*: flows below a size threshold (141KB in the paper)
     transmit their entire message in the first RTT at line rate,
     skipping slow start entirely;
   - *replay*: immediately after the initial burst, the tail of the
     flow is proactively re-transmitted in reverse order, so that a
     tail drop — the case that otherwise needs an RTO — is repaired
     without any feedback.

   Larger flows fall back to plain TCP-10 behaviour. *)

open Ppt_engine
open Ppt_netsim

type params = {
  burst_threshold : int;   (* pace-out size limit (141KB) *)
  replay_segs : int;       (* how much tail to replay *)
  iw_segs : int;           (* initial window for large flows *)
}

let default_params =
  { burst_threshold = 141_000; replay_segs = 8; iw_segs = 10 }

let make ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = "halfback";
    t_start = (fun flow ->
        let small = flow.Flow.size <= params.burst_threshold in
        let initial_cwnd =
          if small then max flow.Flow.size (params.iw_segs * mss)
          else params.iw_segs * mss
        in
        let rel_params =
          Reliable.default_params ~initial_cwnd ~ecn_capable:false ()
        in
        Endpoint.launch_window_flow ctx ~params:rel_params
          ~rcv_cfg:Receiver.default_config
          ~setup:(fun snd _rcv ->
              Tcp.attach snd;
              if small then begin
                (* replay: duplicate the tail right after the burst;
                   the receiver discards duplicates, and a dropped
                   tail segment arrives without waiting for an RTO *)
                let replay () =
                  let nseg = flow.Flow.nseg in
                  let lo = max 0 (nseg - params.replay_segs) in
                  for seq = nseg - 1 downto lo do
                    if Reliable.seg_state snd seq
                       <> Reliable.st_sacked then
                      Reliable.send_lcp_segment ~prio:0 snd seq
                  done
                in
                ignore
                  (Sim.schedule ctx.Context.sim
                     ~after:(ctx.Context.base_rtt / 2) replay)
              end;
              fun () -> ())
          flow) }
