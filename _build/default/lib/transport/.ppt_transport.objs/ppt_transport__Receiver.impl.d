lib/transport/receiver.ml: Bytes Context Flow List Net Packet Ppt_netsim Wire
