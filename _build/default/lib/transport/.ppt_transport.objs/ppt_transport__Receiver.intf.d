lib/transport/receiver.mli: Bytes Context Flow Packet Ppt_netsim
