lib/transport/halfback.mli: Endpoint
