lib/transport/homa.ml: Bytes Context Endpoint Flow Hashtbl List Net Packet Ppt_engine Ppt_netsim Prio_queue Sim Units Wire
