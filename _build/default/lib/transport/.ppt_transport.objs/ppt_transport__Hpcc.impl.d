lib/transport/hpcc.ml: Context Endpoint Float Hashtbl List Packet Ppt_engine Ppt_netsim Receiver Reliable Sim Units
