lib/transport/tcp.ml: Endpoint Float Packet Ppt_netsim Receiver Reliable
