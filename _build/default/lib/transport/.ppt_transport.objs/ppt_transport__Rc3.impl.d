lib/transport/rc3.ml: Array Context Dctcp Endpoint Flow Packet Ppt_engine Ppt_netsim Prio_queue Receiver Reliable Sim Units
