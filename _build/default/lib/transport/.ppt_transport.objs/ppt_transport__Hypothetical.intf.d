lib/transport/hypothetical.mli: Context Endpoint Hashtbl
