lib/transport/rc3.mli: Endpoint
