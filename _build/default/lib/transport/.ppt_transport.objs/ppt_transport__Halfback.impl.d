lib/transport/halfback.ml: Context Endpoint Flow Packet Ppt_engine Ppt_netsim Receiver Reliable Sim Tcp
