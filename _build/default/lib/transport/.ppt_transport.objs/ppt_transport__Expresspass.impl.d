lib/transport/expresspass.ml: Bytes Context Endpoint Flow Hashtbl List Net Packet Ppt_engine Ppt_netsim Sim Units Wire
