lib/transport/endpoint.mli: Context Flow Receiver Reliable
