lib/transport/endpoint.ml: Context Flow Net Packet Ppt_netsim Receiver Reliable
