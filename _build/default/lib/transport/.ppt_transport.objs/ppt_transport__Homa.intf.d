lib/transport/homa.mli: Endpoint
