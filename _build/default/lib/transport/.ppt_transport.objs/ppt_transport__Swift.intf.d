lib/transport/swift.mli: Context Endpoint Ppt_engine Reliable Units
