lib/transport/wire.ml: Packet Ppt_engine Ppt_netsim Units
