lib/transport/dctcp.ml: Endpoint Float Flow Ppt_netsim Receiver Reliable
