lib/transport/ndp.ml: Bytes Context Endpoint Flow Hashtbl Net Packet Ppt_engine Ppt_netsim Queue Sim Units Wire
