lib/transport/pias.mli: Endpoint
