lib/transport/dctcp.mli: Endpoint Reliable
