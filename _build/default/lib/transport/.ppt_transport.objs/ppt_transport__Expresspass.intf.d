lib/transport/expresspass.mli: Endpoint
