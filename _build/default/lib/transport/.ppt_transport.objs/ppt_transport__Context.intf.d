lib/transport/context.mli: Fct Flow Net Ppt_engine Ppt_netsim Ppt_stats Rng Sim Topology Units
