lib/transport/hypothetical.ml: Context Dctcp Endpoint Flow Hashtbl Packet Ppt_engine Ppt_netsim Printf Receiver Reliable Sim
