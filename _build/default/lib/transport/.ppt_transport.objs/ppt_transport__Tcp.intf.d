lib/transport/tcp.mli: Endpoint Reliable
