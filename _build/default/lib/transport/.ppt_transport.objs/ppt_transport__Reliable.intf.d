lib/transport/reliable.mli: Bytes Context Flow Packet Ppt_engine Ppt_netsim Queue Sim Units
