lib/transport/flow.ml: Fmt Packet Ppt_engine Ppt_netsim Ppt_workload Units
