lib/transport/swift.ml: Context Endpoint Float Packet Ppt_engine Ppt_netsim Receiver Reliable Sim Units
