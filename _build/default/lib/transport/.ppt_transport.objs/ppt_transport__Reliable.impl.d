lib/transport/reliable.ml: Bytes Context Float Flow List Logs Net Packet Ppt_engine Ppt_netsim Queue Sim Units Wire
