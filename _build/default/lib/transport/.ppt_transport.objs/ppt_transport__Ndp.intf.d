lib/transport/ndp.mli: Endpoint
