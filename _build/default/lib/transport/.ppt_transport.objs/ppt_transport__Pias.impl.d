lib/transport/pias.ml: Array Dctcp Endpoint Packet Ppt_netsim Prio_queue Receiver Reliable
