lib/transport/hpcc.mli: Context Endpoint Reliable
