lib/transport/flow.mli: Format Ppt_engine Ppt_workload Units
