(** Glue between flows and the fabric: the interface every transport
    implements, plus the standard wiring for window-based senders. *)

type transport = {
  t_name : string;
  t_start : Flow.t -> unit;  (** invoked at the flow's start time *)
}

type factory = Context.t -> transport

val launch_window_flow :
  Context.t ->
  params:Reliable.params ->
  rcv_cfg:Receiver.config ->
  setup:(Reliable.t -> Receiver.t -> unit -> unit) ->
  Flow.t -> unit
(** Create sender and receiver state, register both packet handlers,
    run [setup] (which attaches congestion control and returns an extra
    teardown thunk), start transmitting, and tear everything down when
    the receiver holds the whole message. *)
