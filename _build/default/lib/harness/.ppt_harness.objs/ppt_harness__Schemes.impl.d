lib/harness/schemes.ml: Context Dctcp Endpoint Expresspass Halfback Homa Hpcc Ndp Pias Ppt Ppt_core Ppt_engine Ppt_hpcc Ppt_netsim Ppt_swift Ppt_transport Printf Rc3 Swift Tcp Units
