lib/harness/runner.ml: Array Config Context Endpoint Fct Flow List Net Ppt_engine Ppt_netsim Ppt_stats Ppt_transport Ppt_workload Prio_queue Rng Schemes Sim Topology Trace Units
