lib/harness/config.ml: Cdf Dists Ppt_engine Ppt_netsim Ppt_workload Topology Units
