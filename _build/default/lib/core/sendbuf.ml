(* TCP send-buffer and system-call model (§4.1).

   PPT identifies large flows by watching how much data the
   application's *first* system call copies into the send buffer. The
   paper measures that this identifies 86.7% of >1KB Memcached flows
   and 84.3% of >10KB web flows: most applications hand the transport a
   whole message in one write, but a minority stream it in small
   chunks (and a first chunk below the threshold defeats the check).

   Since the original traces are not available, the application
   behaviour is modelled directly: with probability [single_write_prob]
   the first syscall carries the whole message (clipped to the buffer
   capacity); otherwise the application streams in [chunk_bytes]
   writes. The default probability reproduces the paper's measured
   identification accuracy. *)

open Ppt_engine

type model = {
  capacity : int;             (* send-buffer capacity in bytes *)
  single_write_prob : float;  (* P(first syscall carries the message) *)
  chunk_bytes : int;          (* write size of streaming applications *)
}

let default =
  { capacity = Units.mb 2000;       (* §6.2 uses a 2GB send buffer *)
    single_write_prob = 0.867;
    chunk_bytes = 512 }

let make ?(capacity = default.capacity)
    ?(single_write_prob = default.single_write_prob)
    ?(chunk_bytes = default.chunk_bytes) () =
  if single_write_prob < 0. || single_write_prob > 1. then
    invalid_arg "Sendbuf.make: probability out of range";
  if capacity <= 0 || chunk_bytes <= 0 then
    invalid_arg "Sendbuf.make: sizes must be positive";
  { capacity; single_write_prob; chunk_bytes }

(* Bytes injected into the send buffer by the first system call. *)
let first_syscall_size t rng ~flow_size =
  assert (flow_size > 0);
  let whole = Rng.float rng < t.single_write_prob in
  let write = if whole then flow_size else min flow_size t.chunk_bytes in
  min write t.capacity
