(** Buffer-aware large-flow identification (§4.1 of the paper):
    a flow is large when its first system call injects more than the
    threshold into the send buffer. *)

type t

val make : ?threshold:int -> ?model:Sendbuf.model -> unit -> t
(** [threshold] defaults to 100KB (Table 3). *)

val identify : t -> Ppt_engine.Rng.t -> flow_size:int -> bool

val expected_accuracy : t -> float
(** The fraction of genuinely-large flows the check catches. *)
