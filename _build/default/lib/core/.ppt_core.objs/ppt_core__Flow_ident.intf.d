lib/core/flow_ident.mli: Ppt_engine Sendbuf
