lib/core/tagging.mli: Ppt_netsim
