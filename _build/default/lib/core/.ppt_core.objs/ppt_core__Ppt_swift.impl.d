lib/core/ppt_swift.ml: Context Dctcp Endpoint Float Flow Flow_ident Lcp Ppt Ppt_netsim Ppt_transport Receiver Reliable Swift Tagging
