lib/core/sendbuf.ml: Ppt_engine Rng Units
