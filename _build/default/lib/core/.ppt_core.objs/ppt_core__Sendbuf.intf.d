lib/core/sendbuf.mli: Ppt_engine
