lib/core/tagging.ml: Array Packet Ppt_netsim Prio_queue
