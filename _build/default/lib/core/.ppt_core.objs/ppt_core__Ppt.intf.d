lib/core/ppt.mli: Context Endpoint Flow_ident Ppt_transport Sendbuf
