lib/core/ppt_hpcc.ml: Context Dctcp Endpoint Float Flow Flow_ident Hpcc Lcp Ppt Ppt_netsim Ppt_transport Receiver Reliable Tagging
