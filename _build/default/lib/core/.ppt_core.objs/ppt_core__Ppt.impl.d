lib/core/ppt.ml: Context Dctcp Endpoint Flow Flow_ident Lcp Packet Ppt_netsim Ppt_transport Printf Receiver Reliable Sendbuf Tagging
