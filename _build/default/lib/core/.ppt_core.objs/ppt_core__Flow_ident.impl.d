lib/core/flow_ident.ml: Sendbuf
