lib/core/lcp.mli: Context Dctcp Ppt_transport Reliable
