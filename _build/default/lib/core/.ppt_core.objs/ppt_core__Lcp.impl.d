lib/core/lcp.ml: Context Dctcp Flow Logs Ppt_engine Ppt_transport Reliable Sim Units
