(** Mirror-symmetric packet tagging (§4.2 of the paper).

    The eight in-network priorities split into a high band P0-P3 for
    HCP traffic and a low band P4-P7 for LCP traffic. In each band,
    flows identified as large sit at the band's lowest priority; other
    flows start at the top and age downwards as they send bytes. *)

type t

val default_demotion : int array
(** PIAS-style byte thresholds between consecutive priority levels. *)

val make : ?demotion:int array -> identified_large:bool -> unit -> t
(** Raises [Invalid_argument] unless [demotion] holds 3 ascending
    positive thresholds. *)

val level : t -> bytes_sent:int -> int
(** Priority level within a band: 0 (highest) to 3. *)

val prio : t -> loop:Ppt_netsim.Packet.loop -> bytes_sent:int -> int
(** The wire priority: [level] for HCP, [level + 4] for LCP. *)

val unscheduled : loop:Ppt_netsim.Packet.loop -> bytes_sent:int -> int
(** The Fig. 17 ablation: one fixed priority per band. *)
