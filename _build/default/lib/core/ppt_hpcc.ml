(* PPT on top of HPCC (appendix B of the paper).

   The paper sketches this as an open design: "one may open a PPT LCP
   loop to send low-priority opportunistic packets whenever HPCC's
   estimated in-flight bytes are smaller than BDP and use PPT's
   buffer-aware scheduling to prioritize small flows over large ones".

   That is exactly what this variant does: the HCP runs HPCC (INT
   feedback, so the fabric must collect telemetry), and the LCP trigger
   fires while the flow's in-flight bytes sit below the BDP — the
   spare-capacity signal HPCC itself exposes. Scheduling is unchanged
   from PPT. *)

open Ppt_transport

let adapt_view ctx (snd : Reliable.t) =
  let wmax = ref 0. in
  let boundaries = ref 0 in
  let user_hook = ref (fun () -> ()) in
  (* HPCC installs its own hook_on_ack; ride the observation-window
     hook for per-RTT callbacks *)
  snd.Reliable.hook_on_window <- (fun s ~f:_ ->
      incr boundaries;
      wmax := Float.max !wmax (Reliable.cwnd s);
      !user_hook ());
  { Dctcp.alpha =
      (fun () ->
         if Reliable.inflight snd < ctx.Context.bdp then 0.0 else 1.0);
    wmax = (fun () -> !wmax);
    in_ca = (fun () -> !boundaries > 1);
    rtt_hook = (fun f -> user_hook := f) }

let make ?(name = "ppt-hpcc") ?(hpcc_params = Hpcc.default_params)
    ?(ppt_params = Ppt.default_params) () ctx =
  let mss = Ppt_netsim.Packet.max_payload in
  { Endpoint.t_name = name;
    t_start = (fun flow ->
        let identified =
          ppt_params.Ppt.identification
          && Flow_ident.identify ppt_params.Ppt.ident ctx.Context.rng
               ~flow_size:flow.Flow.size
        in
        let tag =
          Tagging.make ~demotion:ppt_params.Ppt.demotion
            ~identified_large:identified ()
        in
        let tagger ~bytes_sent ~loop = Tagging.prio tag ~loop ~bytes_sent in
        let rel_params =
          Reliable.default_params
            ~initial_cwnd:(ppt_params.Ppt.iw_segs * mss)
            ~ecn_capable:false ~lcp_ecn_capable:true ~tagger ()
        in
        let rcv_cfg =
          { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
        in
        Endpoint.launch_window_flow ctx ~params:rel_params ~rcv_cfg
          ~setup:(fun snd _rcv ->
              Hpcc.attach ~params:hpcc_params ctx snd;
              let view = adapt_view ctx snd in
              let lcp =
                Lcp.create ctx snd view ~identified_large:identified ()
              in
              Lcp.start lcp;
              fun () -> Lcp.shutdown lcp)
          flow) }
