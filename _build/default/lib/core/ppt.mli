(** PPT: the complete pragmatic transport (dual-loop rate control +
    buffer-aware flow scheduling), and its ablation variants. *)

open Ppt_transport

type params = {
  iw_segs : int;                  (** DCTCP initial window in segments *)
  sendbuf : Sendbuf.model;
  ident : Flow_ident.t;
  demotion : int array;           (** tagging age-down thresholds *)
  lcp : bool;                     (** run the low-priority loop *)
  lcp_ecn : bool;                 (** ECN on opportunistic packets *)
  ewd : bool;                     (** exponential window decreasing *)
  scheduling : bool;              (** mirror-symmetric tagging *)
  identification : bool;          (** buffer-aware identification *)
  delay_large_to_2nd_rtt : bool;
}

val default_params : params

val make :
  ?name:string -> ?params:params -> unit -> Context.t ->
  Endpoint.transport

val without_lcp_ecn : unit -> Context.t -> Endpoint.transport
(** Fig. 15 ablation. *)

val without_ewd : unit -> Context.t -> Endpoint.transport
(** Fig. 16 ablation. *)

val without_scheduling : unit -> Context.t -> Endpoint.transport
(** Fig. 17 ablation. *)

val without_identification : unit -> Context.t -> Endpoint.transport
(** Fig. 18 ablation. *)

val with_sendbuf : int -> Context.t -> Endpoint.transport
(** Fig. 27 sensitivity: PPT with the given send-buffer capacity. *)
