(* Buffer-aware flow identification (§4.1): a flow is declared large
   when its first system call injects more than [threshold] bytes into
   the send buffer. Flows that escape the check (streaming writers)
   fall back to PIAS-style ageing in {!Tagging}. *)

type t = {
  threshold : int;
  model : Sendbuf.model;
}

let make ?(threshold = 100_000) ?(model = Sendbuf.default) () =
  if threshold <= 0 then invalid_arg "Flow_ident.make: bad threshold";
  { threshold; model }

let identify t rng ~flow_size =
  Sendbuf.first_syscall_size t.model rng ~flow_size > t.threshold

(* Expected identification accuracy on flows above the threshold:
   used by tests to tie the model to the paper's measured 86.7%. *)
let expected_accuracy t = t.model.Sendbuf.single_write_prob
