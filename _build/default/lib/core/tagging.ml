(* Mirror-symmetric packet tagging (§4.2).

   The 8 in-network priorities split into a high band P0-P3 for HCP
   traffic and a low band P4-P7 for LCP traffic. Within each band:
   - flows identified as large start at the band's lowest priority
     (P3 / P7) for their whole lifetime;
   - unidentified flows start at the band's highest priority (P0 / P4)
     and are demoted one level per crossed bytes-sent threshold (the
     PIAS-style ageing fallback), HCP and LCP moving in lockstep. *)

open Ppt_netsim

type t = {
  identified_large : bool;
  demotion : int array;   (* 3 ascending bytes-sent thresholds *)
}

let default_demotion = [| 100_000; 1_000_000; 10_000_000 |]

let make ?(demotion = default_demotion) ~identified_large () =
  if Array.length demotion <> 3 then
    invalid_arg "Tagging.make: need exactly 3 demotion thresholds";
  Array.iteri (fun i th ->
      if th <= 0 || (i > 0 && th <= demotion.(i - 1)) then
        invalid_arg "Tagging.make: thresholds must ascend")
    demotion;
  { identified_large; demotion }

(* Priority level within a band (0..3). *)
let level t ~bytes_sent =
  if t.identified_large then 3
  else begin
    let rec count i =
      if i >= Array.length t.demotion then i
      else if bytes_sent >= t.demotion.(i) then count (i + 1)
      else i
    in
    min 3 (count 0)
  end

let prio t ~loop ~bytes_sent =
  let l = level t ~bytes_sent in
  match loop with
  | Packet.H -> l
  | Packet.L -> Prio_queue.lp_band_start + l

(* The Fig. 17 ablation: no flow scheduling at all — every flow's HCP
   shares one priority and every LCP another. *)
let unscheduled ~loop ~bytes_sent:_ =
  match loop with
  | Packet.H -> 0
  | Packet.L -> Prio_queue.lp_band_start
