(* PPT: the complete pragmatic transport (§2.3, Fig. 4).

   HCP is stock DCTCP ({!Ppt_transport.Dctcp} on the shared reliable
   sender); LCP is {!Lcp}; scheduling is buffer-aware identification
   ({!Flow_ident}) plus mirror-symmetric tagging ({!Tagging}).

   [make] builds the full transport; the [variant] knobs turn off one
   design component at a time for the §6.3 ablations:
   - [lcp_ecn = false]   — Fig. 15: opportunistic packets without ECN;
   - [ewd = false]       — Fig. 16: line-rate LCP, no rate halving;
   - [scheduling = false]— Fig. 17: single priority per band;
   - [identification = false] — Fig. 18: all flows start unidentified;
   - [lcp = false]       — degenerates to DCTCP + scheduling (PIAS-like). *)

open Ppt_netsim
open Ppt_transport

type params = {
  iw_segs : int;
  sendbuf : Sendbuf.model;
  ident : Flow_ident.t;
  demotion : int array;
  lcp : bool;
  lcp_ecn : bool;
  ewd : bool;
  scheduling : bool;
  identification : bool;
  delay_large_to_2nd_rtt : bool;
}

let default_params =
  { iw_segs = 10;
    sendbuf = Sendbuf.default;
    ident = Flow_ident.make ();
    demotion = Tagging.default_demotion;
    lcp = true; lcp_ecn = true; ewd = true;
    scheduling = true; identification = true;
    delay_large_to_2nd_rtt = true }

let make ?(name = "ppt") ?(params = default_params) () ctx =
  let mss = Packet.max_payload in
  { Endpoint.t_name = name;
    t_start = (fun flow ->
        let identified =
          params.identification
          && Flow_ident.identify params.ident ctx.Context.rng
               ~flow_size:flow.Flow.size
        in
        let tagger =
          if params.scheduling then begin
            let tag =
              Tagging.make ~demotion:params.demotion
                ~identified_large:identified ()
            in
            fun ~bytes_sent ~loop -> Tagging.prio tag ~loop ~bytes_sent
          end else
            fun ~bytes_sent ~loop -> Tagging.unscheduled ~loop ~bytes_sent
        in
        let rel_params =
          Reliable.default_params ~initial_cwnd:(params.iw_segs * mss)
            ~ecn_capable:true ~lcp_ecn_capable:params.lcp_ecn
            ~sendbuf_bytes:params.sendbuf.Sendbuf.capacity ~tagger ()
        in
        let rcv_cfg =
          { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
        in
        Endpoint.launch_window_flow ctx ~params:rel_params ~rcv_cfg
          ~setup:(fun snd _rcv ->
              let view = Dctcp.attach snd in
              if params.lcp then begin
                let lcp_params =
                  { Lcp.default_params with
                    ewd = params.ewd;
                    delay_large_to_2nd_rtt =
                      params.delay_large_to_2nd_rtt }
                in
                let lcp =
                  Lcp.create ctx snd view ~params:lcp_params
                    ~identified_large:identified ()
                in
                Lcp.start lcp;
                fun () -> Lcp.shutdown lcp
              end else
                fun () -> ())
          flow) }

(* Ablation constructors used by the Fig. 15-18 experiments. *)

let without_lcp_ecn () =
  make ~name:"ppt-no-lcp-ecn"
    ~params:{ default_params with lcp_ecn = false } ()

let without_ewd () =
  make ~name:"ppt-no-ewd" ~params:{ default_params with ewd = false } ()

let without_scheduling () =
  make ~name:"ppt-no-sched"
    ~params:{ default_params with scheduling = false } ()

let without_identification () =
  make ~name:"ppt-no-ident"
    ~params:{ default_params with identification = false } ()

let with_sendbuf capacity =
  let sendbuf = Sendbuf.make ~capacity () in
  let ident = Flow_ident.make ~model:sendbuf () in
  make ~name:(Printf.sprintf "ppt-sb-%dK" (capacity / 1000))
    ~params:{ default_params with sendbuf; ident } ()
