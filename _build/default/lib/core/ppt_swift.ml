(* PPT on top of a delay-based transport (Fig. 14, §6.2).

   The paper shows PPT's design generalizes beyond DCTCP by attaching
   the LCP loop to a Swift-like delay-based HCP: a loop opens whenever
   the flow's measured fabric delay falls below the target delay, and
   closes after two RTTs without low-priority ACKs. Flow scheduling is
   unchanged from PPT.

   Implementation: the Swift view is adapted to the {!Lcp} trigger
   interface — "delay below target" plays the role of a vanishing
   alpha, and W_max tracks the delay-based congestion window. *)

open Ppt_transport

let adapt_view ctx (sv : Swift.view) (snd : Reliable.t) =
  let wmax = ref 0. in
  let boundaries = ref 0 in
  let user_hook = ref (fun () -> ()) in
  sv.Swift.rtt_hook (fun () ->
      incr boundaries;
      wmax := Float.max !wmax (Reliable.cwnd snd);
      !user_hook ());
  ignore ctx;
  { Dctcp.alpha =
      (fun () -> if sv.Swift.delay_below_target () then 0.0 else 1.0);
    wmax = (fun () -> !wmax);
    in_ca = (fun () -> !boundaries > 1);
    rtt_hook = (fun f -> user_hook := f) }

let make ?(name = "ppt-swift") ?(swift_params = Swift.default_params)
    ?(ppt_params = Ppt.default_params) () ctx =
  let mss = Ppt_netsim.Packet.max_payload in
  { Endpoint.t_name = name;
    t_start = (fun flow ->
        let identified =
          ppt_params.Ppt.identification
          && Flow_ident.identify ppt_params.Ppt.ident ctx.Context.rng
               ~flow_size:flow.Flow.size
        in
        let tag =
          Tagging.make ~demotion:ppt_params.Ppt.demotion
            ~identified_large:identified ()
        in
        let tagger ~bytes_sent ~loop = Tagging.prio tag ~loop ~bytes_sent in
        let rel_params =
          Reliable.default_params
            ~initial_cwnd:(ppt_params.Ppt.iw_segs * mss)
            ~ecn_capable:false ~lcp_ecn_capable:true ~tagger ()
        in
        let rcv_cfg =
          { Receiver.ack_prio = 0; lcp_batch = 2; lcp_ack_prio = `Echo }
        in
        Endpoint.launch_window_flow ctx ~params:rel_params ~rcv_cfg
          ~setup:(fun snd _rcv ->
              let sv = Swift.attach ~params:swift_params ctx snd in
              let view = adapt_view ctx sv snd in
              let lcp =
                Lcp.create ctx snd view ~identified_large:identified ()
              in
              Lcp.start lcp;
              fun () -> Lcp.shutdown lcp)
          flow) }
