(** TCP send-buffer and system-call model (§4.1 of the paper).

    Models how applications copy message data into the kernel send
    buffer, calibrated to reproduce the paper's measured buffer-aware
    identification accuracy (86.7% on Memcached, 84.3% on web flows). *)

type model = {
  capacity : int;
  single_write_prob : float;
  chunk_bytes : int;
}

val default : model
(** 2GB capacity (the paper's §6.2 setting), 86.7% single-write
    applications, 512B streaming chunks. *)

val make :
  ?capacity:int -> ?single_write_prob:float -> ?chunk_bytes:int ->
  unit -> model

val first_syscall_size :
  model -> Ppt_engine.Rng.t -> flow_size:int -> int
(** Bytes the application's first system call copies into the buffer. *)
