bench/main.mli:
