bench/main.ml: Arg Figures Format List Micro Ppt_harness Printf String Unix
